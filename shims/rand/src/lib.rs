//! A self-contained, registry-free subset of the `rand 0.8` API.
//!
//! The build environment has no access to crates.io; this shim provides the
//! slice the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::{gen_range, gen, gen_bool}`. The generator is a deterministic
//! xorshift64* seeded through splitmix64 — statistically fine for test-input
//! generation, and emphatically not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over any `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges a value type can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn below_u128<R: RngCore>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    let zone = u128::MAX - (u128::MAX % bound);
    loop {
        let v = rng.next_u128();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! sample_uint_ranges {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + below_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let diff = (hi as u128) - (lo as u128);
                if diff == u128::MAX {
                    return rng.next_u128() as $t;
                }
                lo + below_u128(rng, diff + 1) as $t
            }
        }
    )+};
}

sample_uint_ranges!(u8, u16, u32, u64, usize, u128);

/// Types with a canonical full-domain distribution (`rng.gen()`).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_ints {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u128() as $t
            }
        }
    )+};
}

standard_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 of the seed so that 0/1/2... diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}
