//! A self-contained, registry-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io; this shim keeps the
//! workspace's `harness = false` benchmarks compiling and runnable. It
//! performs a short warm-up, then a fixed number of timed samples, and
//! prints median/mean ns-per-iteration — no statistics engine, no HTML
//! reports, no command-line filtering beyond a simple substring match.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // argv[1], when present and not a cargo-bench flag, is a substring
        // filter — mirroring `cargo bench -- <filter>`.
        let filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 30,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_size;
        let filter = self.filter.clone();
        run_one(&id, samples, filter.as_deref(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let filter = self.criterion.filter.clone();
        run_one(&full, samples, filter.as_deref(), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(id: &str, samples: usize, filter: Option<&str>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        target: samples,
    };
    f(&mut b);
    let mut per_iter: Vec<f64> = b.samples;
    if per_iter.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:<48} median {:>12} mean {:>12}",
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

pub struct Bencher {
    /// ns-per-iteration samples gathered so far.
    samples: Vec<f64>,
    target: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until ~20ms or 3 iterations, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(20) {
            std_black_box(f());
            warm_iters += 1;
            if warm_iters > 1_000_000 {
                break;
            }
        }
        let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Aim each sample at ~5ms of work, at least one iteration.
        let iters_per_sample = ((5e6 / est_ns.max(1.0)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.target {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
