//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive length band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(strategy, 1..12)`: vectors with lengths drawn
/// from the given band.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
