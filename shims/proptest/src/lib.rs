//! A self-contained, registry-free subset of the [proptest] API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides the slice of proptest the test suites actually use:
//! seeded random `Strategy` generation, the `prop_map` / `prop_recursive` /
//! `prop_oneof!` combinators, `prop::collection::vec`, `any::<T>()`, ranges
//! as strategies, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros. Failing cases report their seed and generated inputs; shrinking
//! is intentionally not implemented (inputs here are small by construction).
//!
//! [proptest]: https://docs.rs/proptest

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Mirror of proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the test suites import.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The error a failing property returns: a rendered message.
pub type TestCaseError = String;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}) failed at {}:{}: {:?} != {:?}",
                stringify!($lhs),
                stringify!($rhs),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}: {}",
                file!(),
                line!(),
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne!({}, {}) failed at {}:{}: both {:?}",
                stringify!($lhs),
                stringify!($rhs),
                file!(),
                line!(),
                l
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&{ $strat }, rng);)+
                let inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                (inputs, outcome)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
