//! Deterministic case runner: a splitmix64-seeded xoshiro-style RNG and the
//! loop that drives each property over `cases` generated inputs.

/// Runner configuration; only the knobs the workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the BDD-heavy suites quick
        // while still exploring well beyond the handful of unit cases.
        ProptestConfig { cases: 64 }
    }
}

/// Small, fast, deterministic RNG (xorshift* core seeded via splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        // Warm up so that similar seeds diverge immediately.
        let state = splitmix64(&mut s) | 1;
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `[0, bound)` for 128-bit bounds.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let zone = u128::MAX - (u128::MAX % bound);
        loop {
            let v = self.next_u128();
            if v < zone {
                return v % bound;
            }
        }
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate per-property seed streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive `case` over `config.cases` seeded inputs, panicking with the case
/// number, seed, and rendered inputs on the first `prop_assert*` failure.
/// Hard panics inside the property body propagate as-is.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), crate::TestCaseError>),
{
    let base = hash_name(name);
    for i in 0..config.cases {
        let seed = base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        let mut rng = TestRng::new(seed);
        let (inputs, outcome) = case(&mut rng);
        if let Err(msg) = outcome {
            panic!(
                "property `{name}` failed at case {i}/{} (seed {seed:#x})\n  inputs: {inputs}\n  {msg}",
                config.cases
            );
        }
    }
}
