//! The `Strategy` trait and the combinators the workspace's suites use:
//! ranges, tuples, `prop_map`, `prop_recursive`, `OneOf` (via
//! `prop_oneof!`), `Just`, and `any::<T>()`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filter generated values, retrying until one passes (bounded).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Recursive structures: `self` generates leaves, `recurse` wraps an
    /// inner strategy into the next layer. `depth` bounds nesting; the
    /// proptest `desired_size`/`expected_branch_size` hints are accepted
    /// for signature compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Bounded recursive generation (see `Strategy::prop_recursive`).
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T: Debug + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Choose a nesting depth uniformly in [0, depth], then stack the
        // recursion that many times around the leaf strategy.
        let d = rng.below(self.depth as u64 + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..d {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Uniform choice among type-erased branches; built by `prop_oneof!`.
pub struct OneOf<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        OneOf { branches }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below_u128(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let diff = (hi as u128) - (lo as u128);
                if diff == u128::MAX {
                    return rng.next_u128() as $t;
                }
                lo + rng.below_u128(diff + 1) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, u128);

macro_rules! signed_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )+};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

/// The full-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
