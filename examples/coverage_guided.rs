//! Coverage-guided testing: path & flow coverage, zoom-in filters, and
//! watching metrics react to injected faults.
//!
//! ```sh
//! cargo run --example coverage_guided --release
//! ```
//!
//! This example exercises the parts of the framework the other examples
//! don't: the expensive path-universe metric (§4.3.2/§5.2 step 3), flow
//! coverage for an application's traffic, the zoom-in filters of §6, and
//! what happens to coverage when the forwarding state changes under you.

use netbdd::Bdd;
use netmodel::{header, Location, MatchSets};
use topogen::{fattree, FatTreeParams};
use yardstick::flowcov::{flow_coverage, Flow};
use yardstick::pathcov::path_coverage;
use yardstick::{Aggregator, Analyzer, Tracker};

use dataplane::paths::{edge_starts, ExploreOpts};
use dataplane::Forwarder;
use testsuite::{tor_reachability, NetworkInfo, TestContext};

fn main() {
    let ft = fattree(FatTreeParams::paper(4));
    let info = NetworkInfo {
        tor_subnets: ft.tors.clone(),
        ..NetworkInfo::default()
    };
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);

    // Run the symbolic reachability suite to produce a trace.
    let mut ctx = TestContext::new(&ft.net, &ms, &info);
    assert!(tor_reachability(&mut bdd, &mut ctx).passed());
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);

    // ---- Path coverage ----------------------------------------------------
    let fwd = Forwarder::new(&ft.net, &ms);
    let starts = edge_starts(&mut bdd, &fwd);
    let pc = path_coverage(&mut bdd, &analyzer, &starts, &ExploreOpts::default());
    println!(
        "path universe: {} paths ({} delivered, {} exit the WAN)",
        pc.total_paths, pc.stats.delivered, pc.stats.exited
    );
    println!(
        "path coverage: fractional {:.1}%, mean {:.3}, weighted {:.3}",
        pc.fractional() * 100.0,
        pc.mean,
        pc.weighted
    );
    // ToR↔ToR paths are fully tested; WAN-bound default paths are not.
    assert!(pc.fractional() < 1.0 && pc.fractional() > 0.0);

    // ---- Flow coverage ------------------------------------------------------
    // "The database tier in rack 0 talking to rack 7" as a flow.
    let (src, _, _) = ft.tors[0];
    let (_, dst_prefix, _) = ft.tors[7];
    let headers = {
        let d = header::dst_in(&mut bdd, &dst_prefix);
        let tcp = header::proto_is(&mut bdd, 6);
        let port = header::dport_in(&mut bdd, 5432, 5432);
        bdd.and_all([d, tcp, port])
    };
    let flow = Flow {
        start: Location::device(src),
        headers,
    };
    let fc = flow_coverage(&mut bdd, &analyzer, flow, &ExploreOpts::default()).unwrap();
    println!(
        "\nflow tor0→tor7 (tcp/5432): {} ECMP paths, end-to-end coverage {:.0}%",
        fc.paths,
        fc.coverage * 100.0
    );
    assert_eq!(
        fc.coverage, 1.0,
        "reachability tested the whole prefix space"
    );

    // ---- Zoom-in filters (§6) ------------------------------------------------
    let pod0 = analyzer
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |id, _| {
            ft.net.topology().device(id.device).group == Some(0)
        })
        .unwrap();
    let default_routes = analyzer
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, r| {
            r.class == netmodel::RouteClass::StaticDefault
        })
        .unwrap();
    println!(
        "\nzoom-in: pod-0 rule coverage {:.0}%, default-route coverage {:.0}%",
        pod0 * 100.0,
        default_routes * 100.0
    );
    // ToRReachability never exercises default routes (ToR prefixes are
    // always more specific): a systematic blind spot the filter exposes.
    assert_eq!(default_routes, 0.0);

    // ---- Fault reaction --------------------------------------------------------
    // Null-route one ToR prefix at a core and recompute the same metrics
    // on the *new* state with the *old* trace — the daily-diff workflow.
    let mut broken = ft.net.clone();
    let (_, victim, _) = ft.tors[5];
    topogen::faults::null_route(&mut broken, ft.cores[0], victim);
    let ms2 = MatchSets::compute(&broken, &mut bdd);
    let analyzer2 = Analyzer::new(&broken, &ms2, &trace, &mut bdd);
    let fwd2 = Forwarder::new(&broken, &ms2);
    let starts2 = edge_starts(&mut bdd, &fwd2);
    let pc2 = path_coverage(&mut bdd, &analyzer2, &starts2, &ExploreOpts::default());
    println!(
        "\nafter null-routing {} at {}: delivered paths {} → {}, dropped {} → {}",
        victim,
        broken.topology().device(ft.cores[0]).name,
        pc.stats.delivered,
        pc2.stats.delivered,
        pc.stats.dropped,
        pc2.stats.dropped
    );
    println!(
        "→ the paper flags exactly this: the composition of the path universe shifts \
         when state bugs appear, so Yardstick warns when it changes sharply between \
         snapshots (§5.2)."
    );
    assert!(pc2.stats.delivered < pc.stats.delivered);
    assert!(pc2.stats.dropped > pc.stats.dropped);
}
