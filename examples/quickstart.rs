//! Quickstart: measure the coverage of a tiny test suite on a small
//! fat-tree, end to end.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```
//!
//! The flow is the paper's two-phase design:
//!  1. build a network (here: a generated k=4 fat-tree with BGP-style
//!     forwarding state),
//!  2. run tests that report what they exercise through the two-call
//!     tracking API (`mark_packet` / `mark_rule`),
//!  3. afterwards, compute whatever coverage metrics you like from the
//!     recorded trace.

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{fattree, FatTreeParams};
use yardstick::{Analyzer, CoverageReport};

use testsuite::{default_route_check, tor_pingmesh, NetworkInfo, TestContext};

fn main() {
    // 1. A k=4 fat-tree: 20 routers, one hosted /24 per ToR.
    let ft = fattree(FatTreeParams::paper(4));
    println!(
        "network: {} routers, {} forwarding rules",
        ft.net.topology().device_count(),
        ft.net.rule_count()
    );

    // The BDD manager and the disjoint rule match sets (analysis setup).
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);

    // 2. Run two very different tests — a state-inspection check and a
    //    Pingmesh-style concrete probe — into the same tracker.
    let info = NetworkInfo {
        tor_subnets: ft.tors.clone(),
        ..NetworkInfo::default()
    };
    let mut ctx = TestContext::new(&ft.net, &ms, &info);
    let r1 = default_route_check(&mut bdd, &mut ctx, |_| true);
    let r2 = tor_pingmesh(&mut bdd, &mut ctx, 7);
    println!(
        "DefaultRouteCheck: {} checks, passed = {}",
        r1.checks,
        r1.passed()
    );
    println!(
        "ToRPingmesh:       {} checks, passed = {}",
        r2.checks,
        r2.passed()
    );

    // 3. Phase 2: compute coverage from the trace.
    let trace = ctx.tracker.into_trace();
    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    let report = CoverageReport::by_role(&mut bdd, &analyzer);
    println!("\n{report}");

    // Drill in: how well is one specific ToR tested?
    let (tor0, prefix, _) = ft.tors[0];
    let dev_cov = analyzer.device_coverage(&mut bdd, tor0).unwrap();
    println!(
        "{} (hosts {prefix}): device coverage {:.4}%",
        ft.net.topology().device(tor0).name,
        dev_cov * 100.0
    );
    println!(
        "→ the default route dominates the device's packet space, so inspecting it \
         yields high weighted coverage, while Pingmesh's single packets barely move \
         the needle — the concrete-vs-symbolic gap the paper highlights."
    );
}
