//! The §2 / Figure 1 outage, replayed: why rule coverage catches what
//! device coverage cannot.
//!
//! ```sh
//! cargo run --example outage_case_study --release
//! ```
//!
//! The network: leafs → spines → borders B1/B2 → WAN. B2 carries a
//! null-routed static default and silently stops propagating the WAN
//! default to the spines. The engineers' three connectivity tests all
//! pass, every *device* is traversed by some test packet — yet B2's
//! default route is never exercised, and the day B1 fails the whole
//! datacenter loses the WAN.

use netbdd::Bdd;
use netmodel::header;
use netmodel::{Location, MatchSets};
use topogen::figure1;
use yardstick::{Aggregator, Analyzer};

use dataplane::{reach, Forwarder};

fn main() {
    let f = figure1(4, 2, /* b2_null_routed = */ true);
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&f.net, &mut bdd);
    let fwd = Forwarder::new(&f.net, &ms);

    // ---- The test suite of §2, instrumented for coverage ----------------
    let mut tracker = yardstick::Tracker::new();
    let mut all_pass = true;

    // Test 1: each leaf can reach each other leaf (symbolic, per pair).
    for &(src, _, _) in &f.leafs {
        for &(dst, dst_prefix, dst_host) in &f.leafs {
            if src == dst {
                continue;
            }
            let pkts = header::dst_in(&mut bdd, &dst_prefix);
            let res = reach(&mut bdd, &fwd, Location::device(src), pkts, 16);
            tracker.mark_packet_set(&mut bdd, &res.per_hop);
            let delivered = res.delivered_at(&mut bdd, dst_host);
            all_pass &= bdd.equal(delivered, pkts);
        }
    }
    // Test 2: each leaf can reach the WAN (destinations outside the DC).
    let outside = {
        let v4 = header::family_is(&mut bdd, netmodel::Family::V4);
        let mut inside = bdd.empty();
        for &(_, p, _) in &f.leafs {
            let s = header::dst_in(&mut bdd, &p);
            inside = bdd.or(inside, s);
        }
        bdd.diff(v4, inside)
    };
    for &(src, _, _) in &f.leafs {
        let res = reach(&mut bdd, &fwd, Location::device(src), outside, 16);
        tracker.mark_packet_set(&mut bdd, &res.per_hop);
        let exited = res.exited_union(&mut bdd);
        all_pass &= bdd.equal(exited, outside);
    }
    // Test 3: each border can reach each leaf.
    for border in [f.b1, f.b2] {
        for &(_, dst_prefix, dst_host) in &f.leafs {
            let pkts = header::dst_in(&mut bdd, &dst_prefix);
            let res = reach(&mut bdd, &fwd, Location::device(border), pkts, 16);
            tracker.mark_packet_set(&mut bdd, &res.per_hop);
            let delivered = res.delivered_at(&mut bdd, dst_host);
            all_pass &= bdd.equal(delivered, pkts);
        }
    }
    println!(
        "connectivity test suite: {}",
        if all_pass { "ALL PASS ✓" } else { "FAILURES" }
    );
    assert!(
        all_pass,
        "the buggy network passes these tests — that is the point"
    );

    // ---- Coverage analysis ----------------------------------------------
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&f.net, &ms, &trace, &mut bdd);

    let device_cov = analyzer
        .aggregate_devices(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    println!(
        "\nfractional device coverage: {:.0}% — every device looks tested",
        device_cov * 100.0
    );
    assert_eq!(device_cov, 1.0);

    println!("\nper-device rule coverage (fractional):");
    let mut b2_flagged = false;
    for (d, dev) in f.net.topology().devices() {
        let cov = analyzer
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |id, _| id.device == d)
            .unwrap();
        let marker = if d == f.b2 { "  ← B2" } else { "" };
        println!("  {:<4} {:>5.0}%{}", dev.name, cov * 100.0, marker);
        if d == f.b2 {
            b2_flagged = cov < 1.0;
        }
    }
    assert!(b2_flagged, "rule coverage must flag B2");

    // Zoom in on what exactly is untested at B2.
    println!("\nuntested rules on B2:");
    for id in f.net.device_rule_ids(f.b2) {
        if analyzer.rule_coverage(&mut bdd, id) == Some(0.0) {
            let rule = f.net.rule(id);
            println!(
                "  {:?}: dst {:?}, action {:?}, class {:?}",
                id,
                rule.matches.dst.map(|p| p.to_string()),
                rule.action,
                rule.class
            );
        }
    }
    println!(
        "\n→ B2's default route is null-routed and NO test packet ever uses it. \
         Device coverage said 100%; rule coverage found the landmine before B1's \
         failure could set it off."
    );
}
