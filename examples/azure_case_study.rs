//! The §7 case study, replayed on the synthesized regional network:
//! coverage reports reveal systematic testing gaps, classify the
//! untested rules, and quantify how the two new tests close the gaps.
//!
//! ```sh
//! cargo run --example azure_case_study --release
//! ```

use netbdd::Bdd;
use netmodel::rule::RouteClass;
use netmodel::MatchSets;
use topogen::{regional, RegionalParams};
use yardstick::{Aggregator, Analyzer, CoverageReport, Tracker};

use testsuite::{
    agg_can_reach_tor_loopback, connected_route_check, default_route_check, internal_route_check,
    TestContext,
};

fn main() {
    let r = regional(RegionalParams::default());
    println!(
        "regional network: {} routers across {} datacenters, {} rules\n",
        r.net.topology().device_count(),
        r.params.datacenters,
        r.net.rule_count()
    );
    let info = bench::regional_info(&r);
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&r.net, &mut bdd);

    // ---- §7.2: the original suite and its gaps ---------------------------
    println!("== step 1: original test suite (DefaultRouteCheck + AggCanReachTorLoopback) ==");
    let mut ctx = TestContext::new(&r.net, &ms, &info);
    assert!(default_route_check(&mut bdd, &mut ctx, |_| true).passed());
    assert!(agg_can_reach_tor_loopback(&mut bdd, &mut ctx).passed());
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&r.net, &ms, &trace, &mut bdd);
    println!("{}", CoverageReport::by_role(&mut bdd, &analyzer));

    // Classify the untested rules, as the engineers did: the three §7.2
    // route categories emerge directly from the coverage data.
    println!("untested rules by route class:");
    use std::collections::BTreeMap;
    let mut untested: BTreeMap<RouteClass, usize> = BTreeMap::new();
    let mut totals: BTreeMap<RouteClass, usize> = BTreeMap::new();
    for (id, rule) in r.net.rules() {
        if ms.is_shadowed(id) {
            continue;
        }
        *totals.entry(rule.class).or_default() += 1;
        if analyzer.rule_coverage(&mut bdd, id) == Some(0.0) {
            *untested.entry(rule.class).or_default() += 1;
        }
    }
    for (class, n) in &untested {
        println!("  {:?}: {}/{} untested", class, n, totals[class]);
    }
    assert!(untested[&RouteClass::HostSubnet] > 0, "internal routes gap");
    assert!(untested[&RouteClass::Connected] > 0, "connected routes gap");
    assert!(untested[&RouteClass::Wan] > 0, "wide-area routes gap");
    println!("→ the three gaps of §7.2: internal routes, connected routes, wide-area routes\n");

    // ---- §7.3: the two new tests ------------------------------------------
    println!("== step 2: final suite (+InternalRouteCheck, +ConnectedRouteCheck) ==");
    let mut ctx = TestContext::new(&r.net, &ms, &info);
    assert!(default_route_check(&mut bdd, &mut ctx, |_| true).passed());
    assert!(agg_can_reach_tor_loopback(&mut bdd, &mut ctx).passed());
    assert!(internal_route_check(&mut bdd, &mut ctx).passed());
    assert!(connected_route_check(&mut bdd, &mut ctx).passed());
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let final_trace = tracker.into_trace();
    let final_analyzer = Analyzer::new(&r.net, &ms, &final_trace, &mut bdd);
    println!("{}", CoverageReport::by_role(&mut bdd, &final_analyzer));

    let before = analyzer
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    let after = final_analyzer
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    println!(
        "rule coverage: {:.1}% → {:.1}% after the new tests",
        before * 100.0,
        after * 100.0
    );

    // ---- the remaining gaps, as the paper reports -------------------------
    // Wide-area routes: no specification exists yet, so spines/hubs stay
    // around 50%.
    let spine_rules = final_analyzer
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |id, _| {
            r.spines.contains(&id.device)
        })
        .unwrap();
    println!(
        "spine rule coverage in the final suite: {:.0}% (wide-area routes still \
         untested — no WAN route specification exists yet, §7.3)",
        spine_rules * 100.0
    );
    // Host-facing interfaces: still untested on ToRs.
    let tor_ifaces = final_analyzer
        .aggregate_out_ifaces(&mut bdd, Aggregator::Fractional, |_, f| {
            r.net.topology().device(f.device).role == netmodel::Role::Tor
        })
        .unwrap();
    println!(
        "ToR interface coverage in the final suite: {:.0}% (host-facing ports remain \
         a gap — the paper's engineers planned another test for exactly this)",
        tor_ifaces * 100.0
    );
    assert!(spine_rules < 0.7);
    assert!(tor_ifaces < 0.5);
}
