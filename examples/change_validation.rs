//! Change validation: "which packets does this change affect — and did
//! our tests exercise them?"
//!
//! ```sh
//! cargo run --example change_validation --release
//! ```
//!
//! The production deployment (§7.1) runs Yardstick inside a pipeline
//! that simulates the forwarding state a change produces and then tests
//! it. This example extends that workflow with the semantic diff: after
//! a simulated maintenance change, it computes exactly the packet space
//! whose behaviour changed, measures how much of *that space* the test
//! suite covered, and prints a gap report with ready-made witness
//! packets for the untested remainder.

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{regional, RegionalParams};
use yardstick::{Analyzer, Tracker};

use dataplane::semantic_diff;
use testsuite::{connected_route_check, default_route_check, internal_route_check, TestContext};

fn main() {
    // The running network and the proposed post-change state: a planned
    // maintenance drains one spine by null-routing two ToR prefixes on
    // it (a deliberately sloppy drain — the kind that causes trouble).
    let r = regional(RegionalParams::default());
    let mut proposed = r.net.clone();
    let (_, p0, _) = r.tors[0];
    let (_, p1, _) = r.tors[1];
    let spine = r.spines[0];
    topogen::faults::null_route(&mut proposed, spine, p0);
    topogen::faults::null_route(&mut proposed, spine, p1);
    println!(
        "proposed change: null-route {} and {} on {}",
        p0,
        p1,
        r.net.topology().device(spine).name
    );

    let mut bdd = Bdd::new();
    let old_ms = MatchSets::compute(&r.net, &mut bdd);
    let new_ms = MatchSets::compute(&proposed, &mut bdd);

    // 1. What does the change affect?
    let diffs = semantic_diff(&mut bdd, &r.net, &old_ms, &proposed, &new_ms);
    println!(
        "\nsemantic diff: {} device(s) change behaviour",
        diffs.len()
    );
    for d in &diffs {
        let (regions, complete) = netmodel::describe_set(&bdd, d.changed, 4);
        println!("  {}:", r.net.topology().device(d.device).name);
        for reg in &regions {
            println!("    affected: {reg}");
        }
        if !complete {
            println!("    …");
        }
    }
    assert_eq!(diffs.len(), 1);

    // 2. Run the (paper-final) test suite against the proposed state.
    let info = bench::regional_info(&r);
    let mut ctx = TestContext::new(&proposed, &new_ms, &info);
    let r1 = default_route_check(&mut bdd, &mut ctx, |_| true);
    let r2 = internal_route_check(&mut bdd, &mut ctx);
    let r3 = connected_route_check(&mut bdd, &mut ctx);
    println!(
        "\ntest suite on proposed state: DefaultRouteCheck {}, InternalRouteCheck {}, \
         ConnectedRouteCheck {}",
        verdict(&r1),
        verdict(&r2),
        verdict(&r3)
    );
    // The sloppy drain is caught by InternalRouteCheck...
    assert!(!r2.passed(), "the bad drain must fail the contract check");
    println!("→ InternalRouteCheck flags the drain: {}", r2.failures[0]);

    // 3. Coverage of the *changed* space specifically: even when a change
    //    passes all tests, this is the number that says whether passing
    //    meant anything.
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&proposed, &new_ms, &trace, &mut bdd);
    for d in &diffs {
        let covered = analyzer.trace().packets.at_device(&mut bdd, d.device);
        let tested = bdd.and(covered, d.changed);
        let frac = bdd.probability(tested) / bdd.probability(d.changed);
        println!(
            "\ncoverage of the changed space at {}: {:.0}%",
            r.net.topology().device(d.device).name,
            frac * 100.0
        );
        assert!(frac > 0.99, "the suite does analyse the changed prefixes");
    }

    // 4. And the overall gap report for the proposed state, ranked by
    //    untested weight — what to write tests for next.
    println!("\ntop testing gaps in the proposed state:");
    let gaps = analyzer.gap_report(&mut bdd, 3, 2, |_, _| true);
    print!("{gaps}");
}

fn verdict(r: &testsuite::TestReport) -> &'static str {
    if r.passed() {
        "PASS"
    } else {
        "FAIL"
    }
}
