//! # yardstick-repro — umbrella crate
//!
//! Re-exports every crate in the workspace so that examples and
//! integration tests can use one coherent namespace. See the individual
//! crates for the real APIs:
//!
//! * [`netbdd`] — BDD packet-set engine (Figure 5 operations).
//! * [`netmodel`] — the network model `N = (V, I, E, S)` of §4.1.
//! * [`routing`] — eBGP-style control plane that synthesizes FIBs (§7.1).
//! * [`topogen`] — fat-tree, regional-Clos, and Figure-1 generators.
//! * [`dataplane`] — symbolic forwarding and path-universe enumeration.
//! * [`yardstick`] — the coverage framework itself (§4–§5).
//! * [`testsuite`] — the paper's network tests, instrumented for coverage.

pub use dataplane;
pub use netbdd;
pub use netmodel;
pub use routing;
pub use testsuite;
pub use topogen;
pub use yardstick;
