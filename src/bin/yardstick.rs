//! `yardstick` — command-line front end for the coverage framework.
//!
//! ```text
//! yardstick report  [--topology fattree|regional] [--k N] [--suite original|final|beyond|s8]
//! yardstick gaps    [--topology ...] [--limit N]
//! yardstick paths   [--topology ...] [--path-budget N]
//! yardstick trace   --dst A.B.C.D [--topology ...]
//! yardstick diff    [--topology ...]        # demo change + semantic diff
//! ```
//!
//! Everything is generated and analysed in-process: pick a topology, a
//! test suite, and a view. Argument parsing is deliberately bare-bones
//! (no CLI dependency) — see `--help`.

use std::process::ExitCode;

use netbdd::Bdd;
use netmodel::header::Packet;
use netmodel::{Location, MatchSets, Network, Role};
use topogen::{fattree, regional, FatTreeParams, RegionalParams};
use yardstick::{Aggregator, Analyzer, CoverageReport, Tracker};

use dataplane::paths::{edge_starts, ExploreOpts};
use dataplane::{semantic_diff, traceroute, Forwarder};
use testsuite::{
    agg_can_reach_tor_loopback, connected_route_check, default_route_check, host_port_check,
    internal_route_check, tor_contract, tor_pingmesh, tor_reachability, wan_route_check,
    NetworkInfo, TestContext, WanSpec,
};

const HELP: &str = "\
yardstick — network test coverage metrics (SIGCOMM 2021 reproduction)

USAGE:
    yardstick <COMMAND> [OPTIONS]

COMMANDS:
    report     run a test suite and print the per-role coverage report
    gaps       run a test suite and print the ranked gap report
    paths      compute path coverage over the path universe
    trace      traceroute one destination address from the first ToR
    diff       apply a demo change and print the semantic state diff

OPTIONS:
    --topology <fattree|regional>   network to generate [default: regional]
    --k <N>                         fat-tree arity [default: 8]
    --suite <original|final|beyond|s8>
                                    which tests to run [default: final]
    --limit <N>                     gap-report length [default: 10]
    --path-budget <N>               max paths to enumerate [default: 2000000]
    --dst <A.B.C.D>                 destination for `trace`
    -h, --help                      print this help
";

struct Args {
    command: String,
    topology: String,
    k: u32,
    suite: String,
    limit: usize,
    path_budget: u64,
    dst: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "-h" || argv[0] == "--help" {
        return Err(String::new());
    }
    let mut args = Args {
        command: argv[0].clone(),
        topology: "regional".into(),
        k: 8,
        suite: "final".into(),
        limit: 10,
        path_budget: 2_000_000,
        dst: None,
    };
    let mut i = 1;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--topology" => args.topology = take(&mut i)?,
            "--k" => args.k = take(&mut i)?.parse().map_err(|e| format!("--k: {e}"))?,
            "--suite" => args.suite = take(&mut i)?,
            "--limit" => args.limit = take(&mut i)?.parse().map_err(|e| format!("--limit: {e}"))?,
            "--path-budget" => {
                args.path_budget = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--path-budget: {e}"))?
            }
            "--dst" => args.dst = Some(take(&mut i)?),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    Ok(args)
}

/// A generated network plus everything the suites need.
struct World {
    net: Network,
    info: NetworkInfo,
    wan_spec: Option<WanSpec>,
    host_slices: Vec<(netmodel::DeviceId, netmodel::IfaceId, netmodel::Prefix)>,
    first_tor: netmodel::DeviceId,
}

fn build_world(args: &Args) -> Result<World, String> {
    match args.topology.as_str() {
        "fattree" => {
            let ft = fattree(FatTreeParams::paper(args.k));
            let info = bench::fattree_info(&ft);
            let first_tor = ft.tors[0].0;
            Ok(World {
                net: ft.net,
                info,
                wan_spec: None,
                host_slices: Vec::new(),
                first_tor,
            })
        }
        "regional" => {
            let r = regional(RegionalParams::default());
            let info = bench::regional_info(&r);
            let wan_spec = Some(WanSpec {
                prefixes: r.wan_prefixes.clone(),
                wan_routers: r.wans.clone(),
            });
            let first_tor = r.tors[0].0;
            Ok(World {
                net: r.net,
                info,
                wan_spec,
                host_slices: r.host_port_slices,
                first_tor,
            })
        }
        other => Err(format!(
            "unknown topology {other} (try fattree or regional)"
        )),
    }
}

fn run_suite(
    bdd: &mut Bdd,
    w: &World,
    ms: &MatchSets,
    suite: &str,
) -> Result<yardstick::CoverageTrace, String> {
    let mut ctx = TestContext::new(&w.net, ms, &w.info);
    let run = |name: &str, rep: testsuite::TestReport| {
        let status = if rep.passed() { "pass" } else { "FAIL" };
        eprintln!("  [{status}] {name} ({} checks)", rep.checks);
    };
    match suite {
        "original" => {
            run(
                "DefaultRouteCheck",
                default_route_check(bdd, &mut ctx, |_| true),
            );
            run(
                "AggCanReachTorLoopback",
                agg_can_reach_tor_loopback(bdd, &mut ctx),
            );
        }
        "final" => {
            run(
                "DefaultRouteCheck",
                default_route_check(bdd, &mut ctx, |_| true),
            );
            run(
                "AggCanReachTorLoopback",
                agg_can_reach_tor_loopback(bdd, &mut ctx),
            );
            run("InternalRouteCheck", internal_route_check(bdd, &mut ctx));
            run("ConnectedRouteCheck", connected_route_check(bdd, &mut ctx));
        }
        "beyond" => {
            run(
                "DefaultRouteCheck",
                default_route_check(bdd, &mut ctx, |_| true),
            );
            run(
                "AggCanReachTorLoopback",
                agg_can_reach_tor_loopback(bdd, &mut ctx),
            );
            run("InternalRouteCheck", internal_route_check(bdd, &mut ctx));
            run("ConnectedRouteCheck", connected_route_check(bdd, &mut ctx));
            if let Some(spec) = &w.wan_spec {
                run(
                    "WanRouteCheck",
                    wan_route_check(bdd, &mut ctx, spec, |r| {
                        matches!(r, Role::Spine | Role::RegionalHub | Role::Wan)
                    }),
                );
            }
            if !w.host_slices.is_empty() {
                run(
                    "HostPortCheck",
                    host_port_check(bdd, &mut ctx, &w.host_slices),
                );
            }
        }
        "s8" => {
            run(
                "DefaultRouteCheck",
                default_route_check(bdd, &mut ctx, |_| true),
            );
            run("ToRContract", tor_contract(bdd, &mut ctx));
            run("ToRReachability", tor_reachability(bdd, &mut ctx));
            run("ToRPingmesh", tor_pingmesh(bdd, &mut ctx, 0xC0FFEE));
        }
        other => return Err(format!("unknown suite {other}")),
    }
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    Ok(tracker.into_trace())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{HELP}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let w = build_world(args)?;
    eprintln!(
        "network: {} ({} devices, {} rules)",
        args.topology,
        w.net.topology().device_count(),
        w.net.rule_count()
    );
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&w.net, &mut bdd);

    match args.command.as_str() {
        "report" => {
            let trace = run_suite(&mut bdd, &w, &ms, &args.suite)?;
            let analyzer = Analyzer::new(&w.net, &ms, &trace, &mut bdd);
            println!("{}", CoverageReport::by_role(&mut bdd, &analyzer));
            println!("{}", yardstick::ClassReport::by_class(&mut bdd, &analyzer));
        }
        "gaps" => {
            let trace = run_suite(&mut bdd, &w, &ms, &args.suite)?;
            let analyzer = Analyzer::new(&w.net, &ms, &trace, &mut bdd);
            let gaps = analyzer.gap_report(&mut bdd, args.limit, 3, |_, _| true);
            print!("{gaps}");
        }
        "paths" => {
            let trace = run_suite(&mut bdd, &w, &ms, &args.suite)?;
            let analyzer = Analyzer::new(&w.net, &ms, &trace, &mut bdd);
            let fwd = Forwarder::new(&w.net, &ms);
            let starts = edge_starts(&mut bdd, &fwd);
            let opts = ExploreOpts {
                max_paths: args.path_budget,
                ..ExploreOpts::default()
            };
            let pc = yardstick::pathcov::path_coverage(&mut bdd, &analyzer, &starts, &opts);
            println!(
                "paths: {} ({} delivered, {} exited, {} dropped)",
                pc.total_paths, pc.stats.delivered, pc.stats.exited, pc.stats.dropped
            );
            println!(
                "path coverage: fractional {:.1}%  mean {:.3}  weighted {:.3}",
                pc.fractional() * 100.0,
                pc.mean,
                pc.weighted
            );
        }
        "trace" => {
            let dst = args.dst.as_ref().ok_or("trace requires --dst A.B.C.D")?;
            let addr: std::net::Ipv4Addr = dst.parse().map_err(|e| format!("--dst: {e}"))?;
            let pkt = Packet::v4_to(u32::from(addr));
            let res = traceroute(
                &mut bdd,
                &w.net,
                &ms,
                Location::device(w.first_tor),
                pkt,
                64,
            );
            for (i, hop) in res.hops.iter().enumerate() {
                println!(
                    "{:>3}  {}  rule {:?} ({:?})",
                    i + 1,
                    w.net.topology().device(hop.location.device).name,
                    hop.rule,
                    w.net.rule(hop.rule).class
                );
            }
            println!("outcome: {:?}", res.outcome);
        }
        "diff" => {
            // Demo change: null-route the first ToR's prefix at the last
            // non-ToR device that carries it.
            let (tor, prefix, _) = w.info.tor_subnets.first().ok_or("no ToRs")?;
            let victim_dev = w
                .net
                .rules()
                .filter(|(id, r)| r.matches.dst == Some(*prefix) && id.device != *tor)
                .map(|(id, _)| id.device)
                .last()
                .ok_or("prefix not propagated")?;
            let mut changed = w.net.clone();
            topogen::faults::null_route(&mut changed, victim_dev, *prefix);
            let new_ms = MatchSets::compute(&changed, &mut bdd);
            println!(
                "demo change: null-route {} on {}",
                prefix,
                w.net.topology().device(victim_dev).name
            );
            let diffs = semantic_diff(&mut bdd, &w.net, &ms, &changed, &new_ms);
            for d in &diffs {
                let (regions, complete) = netmodel::describe_set(&bdd, d.changed, 5);
                println!("{}:", w.net.topology().device(d.device).name);
                for r in regions {
                    println!("  affected: {r}");
                }
                if !complete {
                    println!("  …");
                }
            }
        }
        other => return Err(format!("unknown command {other}\n\n{HELP}")),
    }
    // Keep the unused-aggregator lint honest: the CLI exposes the same
    // aggregations through `report`.
    let _ = Aggregator::Fractional;
    Ok(())
}
