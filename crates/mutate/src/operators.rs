//! The fixed mutation-operator set and its per-rule preconditions.
//!
//! Each operator models one class of real dataplane fault, applied to a
//! single rule of a concrete forwarding table (§2's motivating outage was
//! exactly such a fault: a handful of wrong rules in an otherwise healthy
//! snapshot). Operators are pure functions of `(rule table, target index,
//! seed)` — no hidden state — so a mutant is reproducible from its
//! description alone.

use netmodel::addr::Family;
use netmodel::rule::{Action, Rule};
use netmodel::topology::DeviceId;
use netmodel::{IfaceId, Network, Prefix, RuleId};

/// One mutation operator: a class of seeded single-rule faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operator {
    /// Remove the rule — a lost route or a dropped ACL entry.
    DeleteRule,
    /// Replace one ECMP leg with a different interface of the device — a
    /// miswired next hop.
    SwapNextHop,
    /// Shorten the destination prefix by one bit, so the rule captures
    /// twice the address space.
    WidenPrefix,
    /// Lengthen the destination prefix by one bit (the seed picks the
    /// surviving half), so half the intended space falls through.
    NarrowPrefix,
    /// Swap the rule with its successor in first-match order — a priority
    /// inversion.
    ReorderPriority,
    /// Invert an ACL verdict: deny becomes permit (forwarding out a
    /// seeded interface) and permit becomes deny.
    FlipPermitDeny,
    /// Turn a FIB forward into a null route — the classic blackhole.
    RedirectToDrop,
}

impl Operator {
    /// Every operator, in the fixed generation order. Mutant ids are
    /// assigned by walking this list, so the order is part of the
    /// deterministic contract.
    pub const ALL: [Operator; 7] = [
        Operator::DeleteRule,
        Operator::SwapNextHop,
        Operator::WidenPrefix,
        Operator::NarrowPrefix,
        Operator::ReorderPriority,
        Operator::FlipPermitDeny,
        Operator::RedirectToDrop,
    ];

    /// Stable snake_case name, used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Operator::DeleteRule => "delete_rule",
            Operator::SwapNextHop => "swap_next_hop",
            Operator::WidenPrefix => "widen_prefix",
            Operator::NarrowPrefix => "narrow_prefix",
            Operator::ReorderPriority => "reorder_priority",
            Operator::FlipPermitDeny => "flip_permit_deny",
            Operator::RedirectToDrop => "redirect_to_drop",
        }
    }

    /// Whether the operator can target this rule.
    ///
    /// Preconditions keep operators well-defined and non-overlapping:
    /// prefix operators need a dst prefix with room to move (narrow skips
    /// /32s and /128s, widen skips defaults), reorder needs a successor
    /// rule, flip-permit/deny targets ACL-shaped rules (some non-dst
    /// match field), and redirect-to-drop targets FIB-shaped rules
    /// (dst-only match) so the two verdict operators never both apply.
    pub fn applicable(self, net: &Network, id: RuleId) -> bool {
        let rule = net.rule(id);
        match self {
            Operator::DeleteRule => true,
            Operator::SwapNextHop => {
                !rule.action.out_ifaces().is_empty()
                    && !swap_candidates(net, id.device, rule.action.out_ifaces()).is_empty()
            }
            Operator::WidenPrefix => rule.matches.dst.is_some_and(|p| p.len() > 0),
            Operator::NarrowPrefix => rule
                .matches
                .dst
                .is_some_and(|p| p.len() < p.family().width()),
            Operator::ReorderPriority => {
                (id.index as usize) + 1 < net.device_rules(id.device).len()
            }
            Operator::FlipPermitDeny => {
                is_acl_shaped(rule)
                    && (!rule.action.is_drop()
                        || net.topology().device_ifaces(id.device).next().is_some())
            }
            Operator::RedirectToDrop => !is_acl_shaped(rule) && !rule.action.is_drop(),
        }
    }

    /// Apply the operator to `rules` (the target device's table in
    /// first-match order) at `index`. The caller guarantees
    /// [`Operator::applicable`]; `seed` resolves every free choice.
    pub fn apply(
        self,
        rules: &mut Vec<Rule>,
        index: usize,
        net: &Network,
        device: DeviceId,
        seed: u64,
    ) {
        match self {
            Operator::DeleteRule => {
                rules.remove(index);
            }
            Operator::SwapNextHop => {
                let cands = swap_candidates(net, device, rules[index].action.out_ifaces());
                let new_leg = cands[(seed % cands.len() as u64) as usize];
                match &mut rules[index].action {
                    Action::Forward(outs) | Action::Rewrite(_, outs) => {
                        let leg = ((seed >> 32) % outs.len() as u64) as usize;
                        outs[leg] = new_leg;
                    }
                    Action::Drop => unreachable!("SwapNextHop precondition"),
                }
            }
            Operator::WidenPrefix => {
                let p = rules[index].matches.dst.expect("WidenPrefix precondition");
                rules[index].matches.dst = Some(resize(p, p.len() - 1, 0));
            }
            Operator::NarrowPrefix => {
                let p = rules[index].matches.dst.expect("NarrowPrefix precondition");
                rules[index].matches.dst = Some(resize(p, p.len() + 1, seed & 1));
            }
            Operator::ReorderPriority => {
                rules.swap(index, index + 1);
            }
            Operator::FlipPermitDeny => {
                rules[index].action = if rules[index].action.is_drop() {
                    let ifaces: Vec<IfaceId> = net
                        .topology()
                        .device_ifaces(device)
                        .map(|(i, _)| i)
                        .collect();
                    Action::Forward(vec![ifaces[(seed % ifaces.len() as u64) as usize]])
                } else {
                    Action::Drop
                };
            }
            Operator::RedirectToDrop => {
                rules[index].action = Action::Drop;
            }
        }
    }

    /// The rules of the *unmutated* network this mutant perturbs —
    /// what the coverage cross-reference looks up in `CoveredSets`.
    pub fn touched(self, id: RuleId) -> Vec<RuleId> {
        match self {
            Operator::ReorderPriority => vec![
                id,
                RuleId {
                    device: id.device,
                    index: id.index + 1,
                },
            ],
            _ => vec![id],
        }
    }
}

/// ACL-shaped: the rule matches on something beyond the destination
/// prefix (source, protocol, ports, or ingress interface).
fn is_acl_shaped(rule: &Rule) -> bool {
    let m = &rule.matches;
    m.src.is_some()
        || m.proto.is_some()
        || m.dport.is_some()
        || m.sport.is_some()
        || m.in_iface.is_some()
}

/// Interfaces of `device` that a swapped next hop may move to: every
/// interface not already an out-leg, in `IfaceId` order (deterministic).
fn swap_candidates(net: &Network, device: DeviceId, out: &[IfaceId]) -> Vec<IfaceId> {
    net.topology()
        .device_ifaces(device)
        .map(|(i, _)| i)
        .filter(|i| !out.contains(i))
        .collect()
}

/// Rebuild a prefix at `new_len`, filling a grown bit from `fill` (the
/// constructors re-mask, so a shrunk prefix canonicalizes itself).
fn resize(p: Prefix, new_len: u8, fill: u64) -> Prefix {
    match p.family() {
        Family::V4 => {
            let mut addr = p.bits() as u32;
            if new_len > p.len() && fill & 1 == 1 {
                addr |= 1 << (32 - new_len);
            }
            Prefix::v4(addr, new_len)
        }
        Family::V6 => {
            let mut addr = p.bits();
            if new_len > p.len() && fill & 1 == 1 {
                addr |= 1 << (128 - new_len as u32);
            }
            Prefix::v6(addr, new_len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::rule::{RouteClass, Table, TableMode};
    use netmodel::topology::{IfaceKind, Role, Topology};

    /// One device with two interfaces and three rules: a host /24, an
    /// ACL-shaped deny, and a default route.
    fn fixture() -> (Network, DeviceId) {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "h", IfaceKind::Host);
        t.add_iface(d, "up", IfaceKind::External);
        let mut n = Network::new(t);
        let mut table = Table::new(TableMode::Priority);
        table.push(Rule {
            matches: netmodel::rule::MatchFields {
                proto: Some(6),
                dport: Some((23, 23)),
                ..Default::default()
            },
            action: Action::Drop,
            class: RouteClass::Other,
        });
        table.push(Rule::forward(
            "10.0.0.0/24".parse().unwrap(),
            vec![IfaceId(0)],
            RouteClass::HostSubnet,
        ));
        table.push(Rule::forward(
            Prefix::v4_default(),
            vec![IfaceId(1)],
            RouteClass::StaticDefault,
        ));
        table.finalize();
        n.set_table(d, table);
        (n, d)
    }

    fn id(d: DeviceId, index: u32) -> RuleId {
        RuleId { device: d, index }
    }

    #[test]
    fn narrow_prefix_skips_host_routes() {
        let (mut n, d) = fixture();
        n.add_rule(
            d,
            Rule::forward(
                Prefix::host_v4(netmodel::addr::ipv4(10, 0, 0, 1)),
                vec![IfaceId(1)],
                RouteClass::Loopback,
            ),
        );
        n.finalize();
        let host = id(d, 3);
        assert_eq!(n.rule(host).matches.dst.unwrap().len(), 32);
        assert!(!Operator::NarrowPrefix.applicable(&n, host));
        // The /24 is still narrowable.
        assert!(Operator::NarrowPrefix.applicable(&n, id(d, 1)));
    }

    #[test]
    fn widen_prefix_skips_defaults_and_acl_entries_without_dst() {
        let (n, d) = fixture();
        assert!(!Operator::WidenPrefix.applicable(&n, id(d, 0))); // no dst
        assert!(Operator::WidenPrefix.applicable(&n, id(d, 1)));
        assert!(!Operator::WidenPrefix.applicable(&n, id(d, 2))); // /0
    }

    #[test]
    fn verdict_operators_do_not_overlap() {
        let (n, d) = fixture();
        // ACL-shaped deny: flip applies, redirect does not.
        assert!(Operator::FlipPermitDeny.applicable(&n, id(d, 0)));
        assert!(!Operator::RedirectToDrop.applicable(&n, id(d, 0)));
        // FIB-shaped forward: redirect applies, flip does not.
        assert!(!Operator::FlipPermitDeny.applicable(&n, id(d, 1)));
        assert!(Operator::RedirectToDrop.applicable(&n, id(d, 1)));
    }

    #[test]
    fn reorder_needs_a_successor() {
        let (n, d) = fixture();
        assert!(Operator::ReorderPriority.applicable(&n, id(d, 0)));
        assert!(Operator::ReorderPriority.applicable(&n, id(d, 1)));
        assert!(!Operator::ReorderPriority.applicable(&n, id(d, 2)));
    }

    #[test]
    fn swap_next_hop_needs_an_alternative_interface() {
        let (n, d) = fixture();
        assert!(!Operator::SwapNextHop.applicable(&n, id(d, 0))); // drop
        assert!(Operator::SwapNextHop.applicable(&n, id(d, 1)));
        // ECMP over every interface of the device: nowhere to swap to.
        let mut t = Topology::new();
        let e = t.add_device("e", Role::Tor);
        t.add_iface(e, "a", IfaceKind::External);
        let mut n2 = Network::new(t);
        n2.add_rule(
            e,
            Rule::forward(Prefix::v4_default(), vec![IfaceId(0)], RouteClass::Other),
        );
        n2.finalize();
        assert!(!Operator::SwapNextHop.applicable(&n2, id(e, 0)));
    }

    #[test]
    fn widen_and_narrow_produce_canonical_prefixes() {
        let p: Prefix = "10.0.1.0/24".parse().unwrap();
        let widened = resize(p, 23, 0);
        assert_eq!(widened, "10.0.0.0/23".parse().unwrap());
        let narrowed_lo = resize(p, 25, 0);
        assert_eq!(narrowed_lo, "10.0.1.0/25".parse().unwrap());
        let narrowed_hi = resize(p, 25, 1);
        assert_eq!(narrowed_hi, "10.0.1.128/25".parse().unwrap());
    }

    #[test]
    fn apply_respects_the_seed_for_swap_choices() {
        let (n, d) = fixture();
        let base = n.device_rules(d).to_vec();
        // Only IfaceId(1) is a candidate (0 is the current leg), so every
        // seed picks it — and the mutation really changes the rule.
        for seed in [0u64, 7, 1 << 40] {
            let mut rules = base.clone();
            Operator::SwapNextHop.apply(&mut rules, 1, &n, d, seed);
            assert_eq!(rules[1].action.out_ifaces(), &[IfaceId(1)]);
        }
    }

    #[test]
    fn flip_permit_deny_round_trips_verdicts() {
        let (n, d) = fixture();
        let mut rules = n.device_rules(d).to_vec();
        Operator::FlipPermitDeny.apply(&mut rules, 0, &n, d, 3);
        assert!(!rules[0].action.is_drop());
        assert_eq!(rules[0].action.out_ifaces().len(), 1);
    }
}
