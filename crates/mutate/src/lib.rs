//! # mutate — seeded dataplane mutation testing for Yardstick
//!
//! The paper argues that coverage predicts bug-detection ability: a test
//! suite can only catch faults hiding in rules it actually exercises
//! (§2's Azure incident is the canonical miss). This crate closes the
//! loop empirically. It injects deterministic, seeded faults directly
//! into the **concrete dataplane model** — post-routing, the way a
//! firmware bug or a corrupted FIB entry would appear — re-runs the test
//! suite against every mutant, and cross-references the kill matrix with
//! the Algorithm-1 covered sets of the unmutated network. The headline
//! number: kill rate for mutants in covered territory versus mutants the
//! suite never looked at.
//!
//! The pipeline is three stages, one module each:
//!
//! 1. [`engine::generate`] — enumerate [`Mutant`]s: each operator from
//!    the fixed set ([`Operator::ALL`]) applied to every applicable rule,
//!    deterministically thinned to a per-operator cap.
//! 2. [`kill::evaluate`] — for each mutant (sharded across threads with
//!    private BDD managers, one netobs span per mutant): check
//!    behavioural equivalence against the original, then run the full
//!    [`testsuite`] job list and record which tests failed.
//! 3. [`report::cross_reference`] — fold mutants, outcomes, and
//!    [`yardstick::CoveredSets`] into a [`MutationReport`] with
//!    per-operator tallies, the covered/uncovered kill split, and the
//!    surviving-mutant list (bit-identical across thread counts).
//!
//! ```
//! use mutate::{cross_reference, evaluate, generate, MutationConfig};
//! use netbdd::Bdd;
//! use netmodel::MatchSets;
//! use testsuite::{fattree_suite_jobs, NetworkInfo};
//! use topogen::fattree::{fattree, FatTreeParams};
//! use yardstick::{CoveredSets, Tracker};
//!
//! let ft = fattree(FatTreeParams::paper(4));
//! let info = NetworkInfo { tor_subnets: ft.tors.clone(), ..NetworkInfo::default() };
//! let jobs = fattree_suite_jobs(&ft.net, &info, 7);
//!
//! // Coverage of the unmutated network (normally from a tracked suite
//! // run; empty here to keep the example fast).
//! let mut bdd = Bdd::new();
//! let ms = MatchSets::compute(&ft.net, &mut bdd);
//! let tracker = Tracker::new();
//! let covered = CoveredSets::compute(&ft.net, &ms, tracker.trace(), &mut bdd);
//!
//! let cfg = MutationConfig { seed: 7, per_op_cap: 1 };
//! let mutants = generate(&ft.net, &cfg);
//! let outcomes = evaluate(&ft.net, &info, &jobs, &mutants, 2);
//! let report = cross_reference(cfg.seed, &covered, &mutants, &outcomes);
//! assert_eq!(report.generated(), mutants.len());
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod kill;
pub mod operators;
pub mod report;

pub use engine::{apply, generate, Mutant, MutationConfig};
pub use kill::{evaluate, MutantOutcome};
pub use operators::Operator;
pub use report::{cross_reference, CoverageSplit, MutationReport, OperatorStats};
