//! Parallel mutant evaluation — the kill matrix.
//!
//! Each mutant is judged in two steps. First an **equivalence check**:
//! the mutated network's per-device behaviour is compared against the
//! original with [`dataplane::diff::equivalent`]; mutants that don't
//! change forwarding behaviour at all (e.g. reordering two disjoint
//! rules) are flagged equivalent and excluded from kill-rate math, as is
//! standard in mutation testing. Second, the full test suite — the same
//! [`SuiteJob`] list the coverage run uses — executes against the mutated
//! snapshot; any failing test **kills** the mutant.
//!
//! Parallelism follows the workspace's sharding-not-sharing idiom: the
//! mutant list is split into contiguous ranges, each worker owns a
//! private [`Bdd`] and evaluates its range independently, and results are
//! concatenated in worker order. Verdicts are semantic booleans (suite
//! pass/fail), so the outcome vector — and therefore the surviving-mutant
//! list — is bit-identical for every thread count.

use netbdd::Bdd;
use netmodel::{MatchSets, Network};
use testsuite::{run_job, NetworkInfo, SuiteJob, SuiteVerdict};
use yardstick::{ParallelRunner, Tracker};

use crate::engine::{apply, Mutant};

/// The verdict for one mutant.
#[derive(Clone, Debug)]
pub struct MutantOutcome {
    /// The mutant's id (same as its index in the generated list).
    pub id: u32,
    /// True if the mutation did not change forwarding behaviour anywhere;
    /// equivalent mutants never run the suite and are excluded from
    /// kill-rate denominators.
    pub equivalent: bool,
    /// True if at least one suite test failed against the mutant.
    pub killed: bool,
    /// Names of the tests that failed (deduplicated, suite order).
    pub failed_tests: Vec<&'static str>,
}

/// Evaluate every mutant across `threads` workers and return outcomes in
/// mutant order. `jobs` is the suite to run per mutant; it must pass on
/// the unmutated network for kill verdicts to mean anything (the caller
/// checks that — see the `mutation_report` bin).
pub fn evaluate(
    net: &Network,
    info: &NetworkInfo,
    jobs: &[SuiteJob],
    mutants: &[Mutant],
    threads: usize,
) -> Vec<MutantOutcome> {
    let ranges = ParallelRunner::chunk_ranges(mutants.len(), threads);
    let mut results: Vec<Vec<MutantOutcome>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, range) in ranges.iter().cloned().enumerate() {
            let shard = &mutants[range];
            handles.push(scope.spawn(move || {
                let mut bdd = Bdd::new();
                let base_ms = MatchSets::compute(net, &mut bdd);
                let out: Vec<MutantOutcome> = shard
                    .iter()
                    .map(|m| evaluate_one(&mut bdd, net, &base_ms, info, jobs, m))
                    .collect();
                if netobs::enabled() {
                    netobs::flush(&format!("mutate-worker-{w}"));
                }
                out
            }));
        }
        for h in handles {
            results.push(h.join().expect("mutation worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Judge a single mutant with a caller-provided manager. The match sets
/// of the *unmutated* network are passed in so workers compute them once
/// per shard, not once per mutant.
fn evaluate_one(
    bdd: &mut Bdd,
    net: &Network,
    base_ms: &MatchSets,
    info: &NetworkInfo,
    jobs: &[SuiteJob],
    mutant: &Mutant,
) -> MutantOutcome {
    let _span = netobs::span_owned(format!("mutant-{}", mutant.id));
    let mutated = apply(net, mutant);
    let mutated_ms = MatchSets::compute(&mutated, bdd);
    if dataplane::diff::equivalent(bdd, net, base_ms, &mutated, &mutated_ms) {
        return MutantOutcome {
            id: mutant.id,
            equivalent: true,
            killed: false,
            failed_tests: Vec::new(),
        };
    }
    let mut verdict = SuiteVerdict::new();
    let mut tracker = Tracker::disabled();
    for job in jobs {
        let report = run_job(bdd, &mutated, &mutated_ms, info, &mut tracker, job);
        verdict.record(&report);
    }
    MutantOutcome {
        id: mutant.id,
        equivalent: false,
        killed: !verdict.passed(),
        failed_tests: verdict.failed_tests(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{generate, MutationConfig};
    use testsuite::fattree_suite_jobs;
    use topogen::fattree::{fattree, FatTreeParams};

    fn setup() -> (Network, NetworkInfo, Vec<SuiteJob>) {
        let ft = fattree(FatTreeParams::paper(4));
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let jobs = fattree_suite_jobs(&ft.net, &info, 0xC0FFEE);
        (ft.net, info, jobs)
    }

    #[test]
    fn outcomes_are_bit_identical_across_thread_counts() {
        let (net, info, jobs) = setup();
        let mutants = generate(
            &net,
            &MutationConfig {
                seed: 7,
                per_op_cap: 3,
            },
        );
        assert!(!mutants.is_empty());
        let base = evaluate(&net, &info, &jobs, &mutants, 1);
        for threads in [2, 4] {
            let other = evaluate(&net, &info, &jobs, &mutants, threads);
            assert_eq!(base.len(), other.len());
            for (a, b) in base.iter().zip(&other) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.equivalent, b.equivalent, "mutant {}", a.id);
                assert_eq!(a.killed, b.killed, "mutant {}", a.id);
                assert_eq!(a.failed_tests, b.failed_tests, "mutant {}", a.id);
            }
        }
    }

    #[test]
    fn deleting_a_tor_subnet_route_is_killed() {
        let (net, info, jobs) = setup();
        // Find the first ToR host-subnet rule and delete it by hand.
        let target = net
            .rules()
            .find(|(_, r)| r.class == netmodel::rule::RouteClass::HostSubnet)
            .map(|(id, _)| id)
            .expect("fat-tree has host-subnet routes");
        let mutant = Mutant {
            id: 0,
            op: crate::operators::Operator::DeleteRule,
            target,
            seed: 0,
        };
        let out = evaluate(&net, &info, &jobs, &[mutant], 1);
        assert!(!out[0].equivalent);
        assert!(out[0].killed, "losing a subnet route must fail the suite");
        assert!(!out[0].failed_tests.is_empty());
    }

    #[test]
    fn evaluate_handles_empty_mutant_list() {
        let (net, info, jobs) = setup();
        assert!(evaluate(&net, &info, &jobs, &[], 4).is_empty());
    }
}
