//! Cross-referencing the kill matrix with Algorithm-1 coverage.
//!
//! This is the headline number of the subsystem: partition the
//! non-equivalent mutants by whether the rules they perturb were
//! **covered** by the suite on the *unmutated* network (per
//! [`CoveredSets::is_exercised`]), then compare kill rates. If coverage
//! means what the paper says it means, mutants hiding behind uncovered
//! rules should survive far more often — that is precisely the §2 Azure
//! story, where the one corrupted rule sat in the suite's blind spot.

use yardstick::CoveredSets;

use crate::engine::Mutant;
use crate::kill::MutantOutcome;
use crate::operators::Operator;

/// Per-operator tallies. Every operator gets a row (possibly all-zero)
/// so report JSON has a stable shape.
#[derive(Clone, Copy, Debug)]
pub struct OperatorStats {
    /// The operator.
    pub op: Operator,
    /// Mutants generated with this operator.
    pub generated: usize,
    /// Of those, how many were behaviourally equivalent to the original.
    pub equivalent: usize,
    /// Non-equivalent mutants the suite killed.
    pub killed: usize,
    /// Non-equivalent mutants the suite missed.
    pub survived: usize,
}

/// Kill tally for one side of the covered/uncovered split
/// (equivalent mutants are excluded from both sides).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoverageSplit {
    /// Non-equivalent mutants on this side.
    pub total: usize,
    /// How many the suite killed.
    pub killed: usize,
}

impl CoverageSplit {
    /// killed / total, or `None` when the side is empty.
    pub fn kill_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.killed as f64 / self.total as f64)
    }
}

/// The full mutation-run summary emitted as `BENCH_mutation.json`.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// The run seed mutants were derived from.
    pub seed: u64,
    /// One row per operator, in [`Operator::ALL`] order.
    pub per_op: Vec<OperatorStats>,
    /// Mutants whose touched rules were exercised by the suite.
    pub covered: CoverageSplit,
    /// Mutants whose touched rules the suite never exercised.
    pub uncovered: CoverageSplit,
    /// Ids of surviving (non-equivalent, unkilled) mutants, ascending.
    pub surviving: Vec<u32>,
    /// (test name, mutants it helped kill), in first-seen order.
    pub test_kills: Vec<(&'static str, usize)>,
}

impl MutationReport {
    /// Total mutants across all operators.
    pub fn generated(&self) -> usize {
        self.per_op.iter().map(|s| s.generated).sum()
    }

    /// Total equivalent mutants.
    pub fn equivalent(&self) -> usize {
        self.per_op.iter().map(|s| s.equivalent).sum()
    }
}

/// Combine mutants, their outcomes, and the unmutated network's covered
/// sets into the report. `outcomes[i]` must be the verdict for
/// `mutants[i]` (as [`crate::kill::evaluate`] guarantees).
pub fn cross_reference(
    seed: u64,
    covered_sets: &CoveredSets,
    mutants: &[Mutant],
    outcomes: &[MutantOutcome],
) -> MutationReport {
    assert_eq!(mutants.len(), outcomes.len(), "one outcome per mutant");
    let mut per_op: Vec<OperatorStats> = Operator::ALL
        .iter()
        .map(|&op| OperatorStats {
            op,
            generated: 0,
            equivalent: 0,
            killed: 0,
            survived: 0,
        })
        .collect();
    let mut covered = CoverageSplit::default();
    let mut uncovered = CoverageSplit::default();
    let mut surviving = Vec::new();
    let mut test_kills: Vec<(&'static str, usize)> = Vec::new();

    for (m, o) in mutants.iter().zip(outcomes) {
        assert_eq!(m.id, o.id, "outcome order must match mutant order");
        let row = per_op
            .iter_mut()
            .find(|s| s.op == m.op)
            .expect("ALL covers every operator");
        row.generated += 1;
        if o.equivalent {
            row.equivalent += 1;
            continue;
        }
        let side = if is_covered(covered_sets, m) {
            &mut covered
        } else {
            &mut uncovered
        };
        side.total += 1;
        if o.killed {
            row.killed += 1;
            side.killed += 1;
            for &name in &o.failed_tests {
                match test_kills.iter_mut().find(|(n, _)| *n == name) {
                    Some(entry) => entry.1 += 1,
                    None => test_kills.push((name, 1)),
                }
            }
        } else {
            row.survived += 1;
            surviving.push(m.id);
        }
    }
    MutationReport {
        seed,
        per_op,
        covered,
        uncovered,
        surviving,
        test_kills,
    }
}

/// A mutant counts as covered when *any* rule it perturbs was exercised
/// by the suite on the unmutated network.
fn is_covered(covered_sets: &CoveredSets, m: &Mutant) -> bool {
    covered_sets.any_exercised(m.touched())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbdd::Bdd;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{DeviceId, IfaceKind, Role, Topology};
    use netmodel::{IfaceId, MatchSets, Network, RuleId};
    use yardstick::trace::CoverageTrace;

    /// A one-device network with 8 distinct /24 routes; the rules at
    /// `exercised` indices are marked as inspected in the trace.
    fn covered_for(exercised: &[u32]) -> CoveredSets {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "h", IfaceKind::Host);
        let mut n = Network::new(t);
        for i in 0..8u8 {
            n.add_rule(
                DeviceId(0),
                Rule::forward(
                    format!("10.{i}.0.0/24").parse().unwrap(),
                    vec![IfaceId(0)],
                    RouteClass::HostSubnet,
                ),
            );
        }
        n.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        for &index in exercised {
            trace.add_rule(RuleId {
                device: DeviceId(0),
                index,
            });
        }
        CoveredSets::compute(&n, &ms, &trace, &mut bdd)
    }

    fn mutant(id: u32, op: Operator, index: u32) -> Mutant {
        Mutant {
            id,
            op,
            target: RuleId {
                device: DeviceId(0),
                index,
            },
            seed: 0,
        }
    }

    fn outcome(id: u32, equivalent: bool, killed: bool) -> MutantOutcome {
        MutantOutcome {
            id,
            equivalent,
            killed,
            failed_tests: if killed {
                vec!["ToRReachability"]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn splits_and_tallies_line_up() {
        // Only rule index 0 is exercised.
        let covered_sets = covered_for(&[0]);
        let mutants = vec![
            mutant(0, Operator::DeleteRule, 0),  // covered, killed
            mutant(1, Operator::DeleteRule, 5),  // uncovered, survives
            mutant(2, Operator::SwapNextHop, 0), // covered, equivalent
        ];
        let outcomes = vec![
            outcome(0, false, true),
            outcome(1, false, false),
            outcome(2, true, false),
        ];
        let report = cross_reference(9, &covered_sets, &mutants, &outcomes);
        assert_eq!(report.generated(), 3);
        assert_eq!(report.equivalent(), 1);
        assert_eq!((report.covered.total, report.covered.killed), (1, 1));
        assert_eq!((report.uncovered.total, report.uncovered.killed), (1, 0));
        assert_eq!(report.surviving, vec![1]);
        assert_eq!(report.test_kills, vec![("ToRReachability", 1)]);
        assert_eq!(report.per_op.len(), Operator::ALL.len());
        let del = &report.per_op[0];
        assert_eq!(
            (del.generated, del.killed, del.survived, del.equivalent),
            (2, 1, 1, 0)
        );
    }

    #[test]
    fn reorder_counts_as_covered_if_either_neighbour_is() {
        // Only rule index 3 is exercised; a reorder targeting index 2
        // touches {2, 3} and must land on the covered side.
        let covered_sets = covered_for(&[3]);
        let mutants = vec![mutant(0, Operator::ReorderPriority, 2)];
        let outcomes = vec![outcome(0, false, true)];
        let report = cross_reference(0, &covered_sets, &mutants, &outcomes);
        assert_eq!(report.covered.total, 1);
        assert_eq!(report.uncovered.total, 0);
    }

    #[test]
    fn kill_rate_handles_empty_sides() {
        let report = cross_reference(0, &covered_for(&[]), &[], &[]);
        assert!(report.covered.kill_rate().is_none());
        assert_eq!(report.surviving, Vec::<u32>::new());
    }
}
