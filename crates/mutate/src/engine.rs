//! Deterministic mutant generation and post-routing application.
//!
//! [`generate`] walks the operator set in fixed order over the network's
//! rules in global `RuleId` order, so the mutant list — ids, targets,
//! seeds — is a pure function of `(network, seed, cap)`. [`apply`]
//! produces the mutated snapshot by rebuilding the target device's table
//! in **priority mode**, freezing the current first-match order with the
//! mutated rule in place: the mutation happens *after* routing, directly
//! in the concrete dataplane model, exactly like the §2 incident where
//! the control plane was healthy and the installed state was not. (An
//! LPM rebuild would re-sort the table and silently undo reorder and
//! prefix-length mutations.)

use netmodel::rule::{Table, TableMode};
use netmodel::{Network, RuleId};
use yardstick::rng::seed_mix;

use crate::operators::Operator;

/// One seeded fault: operator, target rule, and the seed resolving the
/// operator's free choices.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// Position in the generated list; also the report/JSON identifier.
    pub id: u32,
    /// The operator applied.
    pub op: Operator,
    /// The rule mutated, identified in the *unmutated* network.
    pub target: RuleId,
    /// Per-mutant seed — a pure function of the run seed and the mutant's
    /// identity (operator + target), independent of generation order.
    pub seed: u64,
}

impl Mutant {
    /// The unmutated-network rules this mutant perturbs (see
    /// [`Operator::touched`]).
    pub fn touched(&self) -> Vec<RuleId> {
        self.op.touched(self.target)
    }
}

/// Generation limits and seeding for one mutation run.
#[derive(Clone, Copy, Debug)]
pub struct MutationConfig {
    /// Base seed; every mutant derives its own seed from it.
    pub seed: u64,
    /// Upper bound on mutants per operator. Candidates beyond the cap are
    /// thinned by deterministic strided sampling (seeded offset), keeping
    /// the selection spread across the whole network.
    pub per_op_cap: usize,
}

impl Default for MutationConfig {
    fn default() -> MutationConfig {
        MutationConfig {
            seed: 0xD15E_A5E5,
            per_op_cap: 24,
        }
    }
}

/// Enumerate the mutants of a network: for each operator (in
/// [`Operator::ALL`] order) every applicable rule in global order,
/// thinned to the per-operator cap. Ids are assigned in list order.
pub fn generate(net: &Network, cfg: &MutationConfig) -> Vec<Mutant> {
    let mut mutants = Vec::new();
    for (op_index, &op) in Operator::ALL.iter().enumerate() {
        let candidates: Vec<RuleId> = net
            .rules()
            .map(|(id, _)| id)
            .filter(|&id| op.applicable(net, id))
            .collect();
        let picked = thin(
            &candidates,
            cfg.per_op_cap,
            seed_mix(cfg.seed, op_index as u64),
        );
        for target in picked {
            let key =
                ((op_index as u64) << 56) ^ ((target.device.0 as u64) << 28) ^ target.index as u64;
            mutants.push(Mutant {
                id: mutants.len() as u32,
                op,
                target,
                seed: seed_mix(cfg.seed, key),
            });
        }
    }
    mutants
}

/// Deterministic down-sample: at most `cap` elements, evenly strided with
/// a seeded starting offset so different run seeds see different rules
/// while one seed always picks the same set.
fn thin(candidates: &[RuleId], cap: usize, seed: u64) -> Vec<RuleId> {
    if candidates.len() <= cap {
        return candidates.to_vec();
    }
    let stride = candidates.len() / cap;
    let offset = (seed % stride as u64) as usize;
    candidates
        .iter()
        .skip(offset)
        .step_by(stride)
        .take(cap)
        .copied()
        .collect()
}

/// Build the mutated snapshot: clone the network and rebuild the target
/// device's table as a priority table with the mutation applied in place
/// (see the module docs for why priority mode).
pub fn apply(net: &Network, mutant: &Mutant) -> Network {
    let device = mutant.target.device;
    let mut rules = net.device_rules(device).to_vec();
    mutant.op.apply(
        &mut rules,
        mutant.target.index as usize,
        net,
        device,
        mutant.seed,
    );
    let mut table = Table::new(TableMode::Priority);
    for r in rules {
        table.push(r);
    }
    table.finalize();
    let mut mutated = net.clone();
    mutated.set_table(device, table);
    mutated
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::Prefix;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{IfaceKind, Role, Topology};
    use netmodel::IfaceId;

    fn net() -> Network {
        let mut t = Topology::new();
        for d in 0..3 {
            let dev = t.add_device(format!("d{d}"), Role::Tor);
            t.add_iface(dev, "h", IfaceKind::Host);
            t.add_iface(dev, "up", IfaceKind::External);
        }
        let mut n = Network::new(t);
        for d in 0..3u32 {
            let dev = netmodel::topology::DeviceId(d);
            n.add_rule(
                dev,
                Rule::forward(
                    format!("10.{d}.0.0/16").parse().unwrap(),
                    vec![IfaceId(2 * d)],
                    RouteClass::HostSubnet,
                ),
            );
            n.add_rule(
                dev,
                Rule::forward(
                    Prefix::v4_default(),
                    vec![IfaceId(2 * d + 1)],
                    RouteClass::StaticDefault,
                ),
            );
        }
        n.finalize();
        n
    }

    #[test]
    fn generation_is_deterministic_and_id_ordered() {
        let n = net();
        let cfg = MutationConfig::default();
        let a = generate(&n, &cfg);
        let b = generate(&n, &cfg);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.id, i as u32);
            assert_eq!((x.op, x.target, x.seed), (y.op, y.target, y.seed));
        }
    }

    #[test]
    fn per_op_cap_thins_but_keeps_spread() {
        let n = net();
        let cfg = MutationConfig {
            seed: 1,
            per_op_cap: 2,
        };
        let mutants = generate(&n, &cfg);
        for op in Operator::ALL {
            let of_op: Vec<_> = mutants.iter().filter(|m| m.op == op).collect();
            assert!(of_op.len() <= 2, "{op:?} over cap: {}", of_op.len());
        }
        // delete_rule has 6 candidates; the 2 picked span > 1 device.
        let deleted: std::collections::BTreeSet<_> = mutants
            .iter()
            .filter(|m| m.op == Operator::DeleteRule)
            .map(|m| m.target.device)
            .collect();
        assert_eq!(deleted.len(), 2);
    }

    #[test]
    fn mutant_seeds_are_independent_of_generation_order() {
        let n = net();
        let a = generate(&n, &MutationConfig::default());
        let b = generate(
            &n,
            &MutationConfig {
                per_op_cap: 1,
                ..MutationConfig::default()
            },
        );
        // The same (op, target) yields the same seed under both caps.
        for m in &b {
            let twin = a
                .iter()
                .find(|x| x.op == m.op && x.target == m.target)
                .expect("cap-1 pick is a subset");
            assert_eq!(twin.seed, m.seed);
        }
    }

    #[test]
    fn apply_rebuilds_the_table_in_priority_mode() {
        let n = net();
        let mutants = generate(&n, &MutationConfig::default());
        let reorder = mutants
            .iter()
            .find(|m| m.op == Operator::ReorderPriority)
            .unwrap();
        let mutated = apply(&n, reorder);
        // Priority mode freezes the swapped order: the default route now
        // sits above the /16 on the mutated device.
        assert_eq!(
            mutated.table(reorder.target.device).mode(),
            TableMode::Priority
        );
        let rules = mutated.device_rules(reorder.target.device);
        assert!(rules[reorder.target.index as usize]
            .matches
            .dst
            .unwrap()
            .is_default());
        // Other devices are untouched.
        for (d, _) in n.topology().devices() {
            if d != reorder.target.device {
                assert_eq!(n.device_rules(d).len(), mutated.device_rules(d).len());
            }
        }
    }

    #[test]
    fn delete_rule_shrinks_exactly_one_table() {
        let n = net();
        let mutants = generate(&n, &MutationConfig::default());
        let del = mutants
            .iter()
            .find(|m| m.op == Operator::DeleteRule)
            .unwrap();
        let mutated = apply(&n, del);
        assert_eq!(
            mutated.device_rules(del.target.device).len(),
            n.device_rules(del.target.device).len() - 1
        );
        assert_eq!(mutated.rule_count(), n.rule_count() - 1);
    }
}
