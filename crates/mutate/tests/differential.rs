//! Differential tests of the mutation engine against the counting oracle.
//!
//! The same fault is injected twice: once with [`mutate::apply`] on the
//! embedded real network, and once by hand on the toy network followed by
//! [`embed_net`]. The two mutated real networks must agree rule-for-rule
//! on the target device, and the *kill verdict* must transfer: the
//! symbolic equivalence check that `mutate::kill` uses to classify
//! equivalent mutants must say "behaviour changed" exactly when the
//! oracle's exhaustive per-packet winner scan finds some device whose
//! first-match action changed.
//!
//! Only order- and action-level operators are mirrored (delete, reorder,
//! redirect-to-drop): they leave match fields untouched, so toy and real
//! behaviour change in lockstep. Prefix widen/narrow operate below the
//! toy space's resolution — a real /29 carved out of an embedded /28
//! flips header bits no toy packet carries — and are covered by the
//! per-operator unit tests instead.

use mutate::{apply, Mutant, Operator};
use netbdd::Bdd;
use netmodel::topology::DeviceId;
use netmodel::{MatchSets, Network, RuleId};
use oracle::embed::{assert_rule_order_preserved, embed_net};
use oracle::{
    ToyAction, ToyIfaceKind, ToyNet, ToyPrefix, ToyRule, ToySpace, ToyTable, ToyTableMode,
};
use proptest::prelude::*;

fn space() -> ToySpace {
    ToySpace::new(4, 2, 1)
}

/// One device's spec: parent selector plus `(dst_len, raw_dst, iface_sel,
/// drop)` per rule — the same shape the dataplane differential suite uses.
type DeviceSpec = (u32, Vec<(u32, u32, u32, bool)>);

fn arb_device(max_rules: usize) -> impl Strategy<Value = DeviceSpec> {
    (
        any::<u32>(),
        prop::collection::vec(
            (0u32..=4, any::<u32>(), any::<u32>(), any::<bool>()),
            1..max_rules,
        ),
    )
}

fn prefix(raw: u32, len: u32) -> ToyPrefix {
    ToyPrefix::new(if len == 0 { 0 } else { raw & ((1 << len) - 1) }, len)
}

/// Random tree-shaped toy network, ECMP-free, dst-only rules.
fn build_net(specs: &[DeviceSpec]) -> ToyNet {
    let mut net = ToyNet::new();
    let mut dev_ifaces: Vec<Vec<u32>> = Vec::new();
    for (d, (parent_raw, _)) in specs.iter().enumerate() {
        let dev = net.add_device();
        let host = net.add_iface(dev, ToyIfaceKind::Host);
        dev_ifaces.push(vec![host]);
        if d > 0 {
            let parent = (*parent_raw as usize) % d;
            let (pi, ci) = net.add_link(parent, dev);
            dev_ifaces[parent].push(pi);
            dev_ifaces[d].push(ci);
        }
    }
    for (d, (_, rules)) in specs.iter().enumerate() {
        for &(dst_len, raw_dst, iface_sel, drop) in rules {
            let action = if drop {
                ToyAction::Drop
            } else {
                let pick = dev_ifaces[d][(iface_sel as usize) % dev_ifaces[d].len()];
                ToyAction::Forward(vec![pick])
            };
            net.add_rule(
                d,
                ToyRule {
                    dst: Some(prefix(raw_dst, dst_len)),
                    src: None,
                    proto: None,
                    action,
                },
            );
        }
    }
    net.finalize();
    net
}

/// Mirror one mutation on the toy side: rebuild the target device's table
/// in priority mode with the edit applied — exactly what
/// [`mutate::apply`] does to the real table.
fn mutate_toy(net: &ToyNet, op: Operator, device: usize, index: usize) -> ToyNet {
    let mut rules = net.table(device).rules_unchecked().to_vec();
    match op {
        Operator::DeleteRule => {
            rules.remove(index);
        }
        Operator::ReorderPriority => rules.swap(index, index + 1),
        Operator::RedirectToDrop => rules[index].action = ToyAction::Drop,
        other => panic!("operator {other:?} is not mirrored on the toy side"),
    }
    let mut table = ToyTable::new(ToyTableMode::Priority);
    for r in rules {
        table.push(r);
    }
    table.finalize();
    let mut mutated = net.clone();
    *mutated.table_mut(device) = table;
    mutated
}

/// The oracle's kill verdict: does any device's first-match *action*
/// change for any toy packet? (`None` — unmatched — is its own
/// behaviour.) This is the exhaustive counterpart of the per-device
/// signature comparison inside `dataplane::diff::semantic_diff`.
fn toy_behaviour_changed(s: &ToySpace, a: &ToyNet, b: &ToyNet) -> bool {
    (0..a.device_count()).any(|d| {
        s.packets().any(|p| {
            let wa = a
                .table(d)
                .winner(s, p)
                .map(|i| &a.table(d).rules_unchecked()[i].action);
            let wb = b
                .table(d)
                .winner(s, p)
                .map(|i| &b.table(d).rules_unchecked()[i].action);
            wa != wb
        })
    })
}

/// Every mirrorable mutation site in the toy network.
fn mutation_sites(net: &ToyNet) -> Vec<(Operator, usize, usize)> {
    let mut sites = Vec::new();
    for d in 0..net.device_count() {
        let rules = net.table(d).rules_unchecked();
        for i in 0..rules.len() {
            sites.push((Operator::DeleteRule, d, i));
            if i + 1 < rules.len() {
                sites.push((Operator::ReorderPriority, d, i));
            }
            if !rules[i].action.is_drop() {
                sites.push((Operator::RedirectToDrop, d, i));
            }
        }
    }
    sites
}

fn equivalent(bdd: &mut Bdd, a: &Network, b: &Network) -> bool {
    let a_ms = MatchSets::compute(a, bdd);
    let b_ms = MatchSets::compute(b, bdd);
    dataplane::diff::equivalent(bdd, a, &a_ms, b, &b_ms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every mirrorable mutation of a random toy network: the
    /// real-side operator and the toy-side mirror produce the same
    /// mutated network, and the symbolic equivalence verdict matches the
    /// oracle's exhaustive one.
    #[test]
    fn kill_verdicts_agree_with_oracle(
        specs in prop::collection::vec(arb_device(4), 1..4)
    ) {
        let s = space();
        let toy = build_net(&specs);
        let real = embed_net(&s, &toy);
        let mut bdd = Bdd::new();
        for (mutant_id, (op, d, i)) in mutation_sites(&toy).into_iter().enumerate() {
            // Toy-side mirror, embedded.
            let toy_mut = mutate_toy(&toy, op, d, i);
            let real_via_toy = embed_net(&s, &toy_mut);
            assert_rule_order_preserved(&s, &toy_mut, &real_via_toy);

            // Real-side operator. These three operators ignore the seed.
            let mutant = Mutant {
                id: mutant_id as u32,
                op,
                target: RuleId { device: DeviceId(d as u32), index: i as u32 },
                seed: 0,
            };
            prop_assert!(op.applicable(&real, mutant.target),
                "{op:?} must be applicable at {:?}", mutant.target);
            let real_via_op = apply(&real, &mutant);

            // The two injection routes agree rule-for-rule.
            for dev in 0..toy.device_count() {
                let dev = DeviceId(dev as u32);
                let a = real_via_toy.device_rules(dev);
                let b = real_via_op.device_rules(dev);
                prop_assert_eq!(a.len(), b.len(), "{:?} at {:?}", op, dev);
                for (ra, rb) in a.iter().zip(b) {
                    prop_assert_eq!(&ra.matches, &rb.matches);
                    prop_assert_eq!(&ra.action, &rb.action);
                }
            }

            // And the kill verdict transfers.
            let oracle_changed = toy_behaviour_changed(&s, &toy, &toy_mut);
            let real_changed = !equivalent(&mut bdd, &real, &real_via_op);
            prop_assert_eq!(
                real_changed, oracle_changed,
                "verdict mismatch for {:?} on device {} rule {}", op, d, i
            );
        }
    }
}
