//! # dataplane — symbolic forwarding over the network model
//!
//! This crate is the behavioural substrate of the Yardstick reproduction:
//! everything that *computes what the forwarding state does* lives here.
//!
//! * [`forward`] — one symbolic forwarding step: split an incoming packet
//!   set across a device's disjoint rule match sets and apply actions.
//! * [`mod@reach`] — end-to-end symbolic reachability by fixpoint set
//!   propagation, recording the per-hop located packet sets that
//!   behavioural tests report to the coverage tracker (§5.1).
//! * [`paths`] — depth-first enumeration of the path universe, emitting
//!   paths incrementally and never materialising them all in memory,
//!   exactly as §5.2 describes (*"We do not store all paths in memory …
//!   but process them on the fly"*).
//! * [`mod@traceroute`] — concrete single-packet walks with deterministic
//!   ECMP hashing, the substrate for Pingmesh-style tests.
//! * [`diff`] — semantic diffs between forwarding-state snapshots: the
//!   exact packet sets a change affects, for change-validation
//!   workflows.

#![deny(missing_docs)]

pub mod diff;
pub mod forward;
pub mod paths;
pub mod reach;
pub mod traceroute;

pub use diff::{semantic_diff, DeviceDiff};
pub use forward::{Forwarder, Outcome, StepResult, Transition};
pub use paths::{explore, ExploreOpts, PathEvent, PathStats, Terminal};
pub use reach::{reach, ReachResult};
pub use traceroute::{traceroute, Hop, TraceOutcome, TraceResult};
