//! Concrete single-packet walks: the substrate for traceroute/ping-style
//! tests (Figure 2's "concrete" column, and the ToRPingmesh test of §8).
//!
//! ECMP legs are chosen by a deterministic hash of the packet five-tuple,
//! mimicking per-flow hashing in real routers: the same packet always
//! takes the same path, different packets spread across legs.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use netbdd::Bdd;
use netmodel::header::Packet;
use netmodel::rule::Action;
use netmodel::topology::DeviceId;
use netmodel::{IfaceId, IfaceKind, Location, MatchSets, Network, RuleId};

/// One hop of a concrete trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Where the packet was when the rule was applied.
    pub location: Location,
    /// The rule that matched.
    pub rule: RuleId,
    /// The packet *as it was at this hop* (rewrites may change it).
    pub packet: Packet,
}

/// How a concrete trace ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Delivered out a host-facing interface of this device.
    Delivered {
        /// The delivering device.
        device: DeviceId,
        /// The host-facing egress interface.
        iface: IfaceId,
    },
    /// Left the network through an external interface.
    Exited {
        /// The border device.
        device: DeviceId,
        /// The external egress interface.
        iface: IfaceId,
    },
    /// Hit an explicit drop rule.
    Dropped {
        /// The dropping device.
        device: DeviceId,
        /// The drop rule that matched.
        rule: RuleId,
    },
    /// Matched no rule at this device.
    Unmatched {
        /// The device with no matching rule.
        device: DeviceId,
    },
    /// Exceeded the hop budget (loop).
    HopLimit,
}

/// A completed concrete trace.
#[derive(Clone, Debug)]
pub struct TraceResult {
    /// The hops traversed, in order.
    pub hops: Vec<Hop>,
    /// How the trace ended.
    pub outcome: TraceOutcome,
}

impl TraceResult {
    /// Devices traversed, in order.
    pub fn devices(&self) -> Vec<DeviceId> {
        self.hops.iter().map(|h| h.location.device).collect()
    }

    /// Whether the trace ended in a delivery.
    pub fn delivered(&self) -> bool {
        matches!(self.outcome, TraceOutcome::Delivered { .. })
    }
}

/// Walk one concrete packet from `start` until it terminates.
///
/// Rule matching evaluates the packet against the device's disjoint match
/// sets, so the trace agrees exactly with the symbolic engine's
/// first-match semantics.
pub fn traceroute(
    bdd: &mut Bdd,
    net: &Network,
    ms: &MatchSets,
    start: Location,
    packet: Packet,
    max_hops: usize,
) -> TraceResult {
    let mut hops = Vec::new();
    let mut loc = start;
    let mut pkt = packet;
    for _ in 0..max_hops {
        let Some((rule_id, rule)) = lookup(net, ms, bdd, loc, &pkt) else {
            return TraceResult {
                hops,
                outcome: TraceOutcome::Unmatched { device: loc.device },
            };
        };
        hops.push(Hop {
            location: loc,
            rule: rule_id,
            packet: pkt,
        });
        let (out_ifaces, rewritten) = match &rule.action {
            Action::Drop => {
                return TraceResult {
                    hops,
                    outcome: TraceOutcome::Dropped {
                        device: loc.device,
                        rule: rule_id,
                    },
                };
            }
            Action::Forward(outs) => (outs, pkt),
            Action::Rewrite(rw, outs) => {
                // Apply the rewrite to the concrete packet through the
                // symbolic engine to guarantee agreement with it.
                let as_set = pkt.to_bdd(bdd);
                let image = rw.apply(bdd, as_set);
                let new_pkt = netmodel::header::sample_packet(bdd, image)
                    .expect("rewrite image of a packet cannot be empty");
                (outs, new_pkt)
            }
        };
        pkt = rewritten;
        let iface = choose_ecmp_leg(out_ifaces, &pkt, loc.device);
        let ifc = net.topology().iface(iface);
        match ifc.kind {
            IfaceKind::Host | IfaceKind::Loopback => {
                return TraceResult {
                    hops,
                    outcome: TraceOutcome::Delivered {
                        device: loc.device,
                        iface,
                    },
                };
            }
            IfaceKind::External => {
                return TraceResult {
                    hops,
                    outcome: TraceOutcome::Exited {
                        device: loc.device,
                        iface,
                    },
                };
            }
            IfaceKind::P2p => match ifc.peer {
                Some(peer) => {
                    loc = Location::at(net.topology().iface(peer).device, peer);
                }
                None => {
                    return TraceResult {
                        hops,
                        outcome: TraceOutcome::Exited {
                            device: loc.device,
                            iface,
                        },
                    };
                }
            },
        }
    }
    TraceResult {
        hops,
        outcome: TraceOutcome::HopLimit,
    }
}

/// First-match lookup of a concrete packet in a device table.
fn lookup<'n>(
    net: &'n Network,
    ms: &MatchSets,
    bdd: &Bdd,
    loc: Location,
    pkt: &Packet,
) -> Option<(RuleId, &'n netmodel::Rule)> {
    for id in net.device_rule_ids(loc.device) {
        let rule = net.rule(id);
        if let Some(required) = rule.matches.in_iface {
            if loc.iface != Some(required) {
                continue;
            }
        }
        if pkt.matches(bdd, ms.get(id)) {
            return Some((id, rule));
        }
    }
    None
}

/// Deterministic per-flow ECMP leg choice.
fn choose_ecmp_leg(outs: &[IfaceId], pkt: &Packet, device: DeviceId) -> IfaceId {
    debug_assert!(!outs.is_empty());
    if outs.len() == 1 {
        return outs[0];
    }
    let mut h = DefaultHasher::new();
    // Five-tuple plus device id: per-flow stable, varies across devices.
    pkt.dst.hash(&mut h);
    pkt.src.hash(&mut h);
    pkt.proto.hash(&mut h);
    pkt.sport.hash(&mut h);
    pkt.dport.hash(&mut h);
    device.0.hash(&mut h);
    outs[(h.finish() % outs.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::{ipv4, Prefix};
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{Role, Topology};

    /// Same diamond as the path tests: a → {b,c} → d, ECMP at a.
    fn diamond() -> (Network, DeviceId, DeviceId, DeviceId, DeviceId) {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let c = t.add_device("c", Role::Spine);
        let d = t.add_device("d", Role::Tor);
        let _in = t.add_iface(a, "in", IfaceKind::Host);
        let egress = t.add_iface(d, "out", IfaceKind::Host);
        let (ab, _) = t.add_link(a, b);
        let (ac, _) = t.add_link(a, c);
        let (bd, _) = t.add_link(b, d);
        let (cd, _) = t.add_link(c, d);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut net = Network::new(t);
        net.add_rule(a, Rule::forward(p, vec![ab, ac], RouteClass::HostSubnet));
        net.add_rule(b, Rule::forward(p, vec![bd], RouteClass::HostSubnet));
        net.add_rule(c, Rule::forward(p, vec![cd], RouteClass::HostSubnet));
        net.add_rule(d, Rule::forward(p, vec![egress], RouteClass::HostSubnet));
        net.finalize();
        (net, a, b, c, d)
    }

    #[test]
    fn trace_reaches_destination() {
        let (net, a, _, _, d) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let pkt = Packet::v4_to(ipv4(10, 0, 0, 9));
        let res = traceroute(&mut bdd, &net, &ms, Location::device(a), pkt, 16);
        assert!(res.delivered());
        assert_eq!(res.hops.len(), 3);
        assert_eq!(res.devices()[0], a);
        assert_eq!(*res.devices().last().unwrap(), d);
    }

    #[test]
    fn trace_is_deterministic() {
        let (net, a, _, _, _) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let pkt = Packet::v4_to(ipv4(10, 0, 0, 9));
        let r1 = traceroute(&mut bdd, &net, &ms, Location::device(a), pkt, 16);
        let r2 = traceroute(&mut bdd, &net, &ms, Location::device(a), pkt, 16);
        assert_eq!(r1.devices(), r2.devices());
    }

    #[test]
    fn different_flows_spread_over_ecmp_legs() {
        let (net, a, b, c, _) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let mut via = std::collections::HashSet::new();
        for i in 0..64 {
            let pkt = Packet {
                sport: 1000 + i,
                ..Packet::v4_to(ipv4(10, 0, 0, 9))
            };
            let res = traceroute(&mut bdd, &net, &ms, Location::device(a), pkt, 16);
            via.insert(res.devices()[1]);
        }
        assert!(
            via.contains(&b) && via.contains(&c),
            "hashing never used one leg"
        );
    }

    #[test]
    fn unrouted_packet_is_unmatched() {
        let (net, a, _, _, _) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let pkt = Packet::v4_to(ipv4(99, 0, 0, 1));
        let res = traceroute(&mut bdd, &net, &ms, Location::device(a), pkt, 16);
        assert_eq!(res.outcome, TraceOutcome::Unmatched { device: a });
        assert!(res.hops.is_empty());
    }

    #[test]
    fn loop_hits_hop_limit() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Spine);
        let b = t.add_device("b", Role::Spine);
        let (ab, ba) = t.add_link(a, b);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule::forward(Prefix::v4_default(), vec![ab], RouteClass::StaticDefault),
        );
        net.add_rule(
            b,
            Rule::forward(Prefix::v4_default(), vec![ba], RouteClass::StaticDefault),
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let res = traceroute(
            &mut bdd,
            &net,
            &ms,
            Location::device(a),
            Packet::v4_to(1),
            8,
        );
        assert_eq!(res.outcome, TraceOutcome::HopLimit);
        assert_eq!(res.hops.len(), 8);
    }

    #[test]
    fn rewrite_changes_the_traced_packet() {
        use netmodel::{HeaderField, MatchFields, Rewrite};
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Tor);
        let out = t.add_iface(b, "out", IfaceKind::Host);
        let (ab, _) = t.add_link(a, b);
        let target = ipv4(192, 168, 1, 1);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule {
                matches: MatchFields::dst_prefix(Prefix::v4_default()),
                action: netmodel::Action::Rewrite(
                    Rewrite {
                        set: vec![(HeaderField::Dst4, target as u128)],
                    },
                    vec![ab],
                ),
                class: RouteClass::Other,
            },
        );
        net.add_rule(
            b,
            Rule::forward(Prefix::host_v4(target), vec![out], RouteClass::HostSubnet),
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let res = traceroute(
            &mut bdd,
            &net,
            &ms,
            Location::device(a),
            Packet::v4_to(1),
            8,
        );
        assert!(res.delivered());
        assert_eq!(res.hops[1].packet.dst, target as u128);
        // Hop 0 records the pre-rewrite packet.
        assert_eq!(res.hops[0].packet.dst, 1);
    }

    #[test]
    fn dropped_packet_reports_the_rule() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Border);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule::null_route(Prefix::v4_default(), RouteClass::StaticDefault),
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let res = traceroute(
            &mut bdd,
            &net,
            &ms,
            Location::device(a),
            Packet::v4_to(5),
            8,
        );
        match res.outcome {
            TraceOutcome::Dropped { device, rule } => {
                assert_eq!(device, a);
                assert_eq!(rule.device, a);
            }
            o => panic!("expected drop, got {o:?}"),
        }
    }
}
