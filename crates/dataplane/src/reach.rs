//! End-to-end symbolic reachability by fixpoint propagation.
//!
//! [`reach`] injects a packet set at a start location and propagates it
//! until no new packets arrive anywhere. Packet sets arriving at the same
//! device over different hops are merged, so the propagation cost is
//! bounded by network size times the number of set-changing rounds rather
//! than by the (potentially astronomical) number of paths.
//!
//! The result records, per hop, the located packet sets that an end-to-end
//! behavioural test reports via `markPacket` (§5.1: *"a separate call is
//! made for each hop in the network with the packet set at that hop"*).

use std::collections::HashMap;

use netbdd::{Bdd, Ref};
use netmodel::{IfaceId, LocatedPacketSet, Location, RuleId};

use crate::forward::{Forwarder, Outcome};

/// Result of a symbolic reachability query.
#[derive(Clone, Debug, Default)]
pub struct ReachResult {
    /// Every located packet set observed during propagation, keyed by
    /// (device, ingress interface): the per-hop trace for coverage.
    pub per_hop: LocatedPacketSet,
    /// Packets delivered out host-facing interfaces.
    pub delivered: Vec<(IfaceId, Ref)>,
    /// Packets that left through external interfaces.
    pub exited: Vec<(IfaceId, Ref)>,
    /// Packets dropped by explicit drop rules, with the dropping rule.
    pub dropped: Vec<(RuleId, Ref)>,
    /// Packets that matched no rule somewhere, keyed by the device.
    pub unmatched: Vec<(Location, Ref)>,
    /// Rules exercised, with the packet subsets that exercised them.
    pub exercised: Vec<(RuleId, Ref)>,
}

impl ReachResult {
    /// Union of all packets delivered anywhere.
    pub fn delivered_union(&self, bdd: &mut Bdd) -> Ref {
        bdd.or_all(self.delivered.iter().map(|&(_, p)| p))
    }

    /// Union of all packets delivered out a specific interface.
    pub fn delivered_at(&self, bdd: &mut Bdd, iface: IfaceId) -> Ref {
        bdd.or_all(
            self.delivered
                .iter()
                .filter(|&&(i, _)| i == iface)
                .map(|&(_, p)| p),
        )
    }

    /// Union of everything that exited the network.
    pub fn exited_union(&self, bdd: &mut Bdd) -> Ref {
        bdd.or_all(self.exited.iter().map(|&(_, p)| p))
    }
}

/// Propagate `packets` from `start` to fixpoint.
///
/// `max_rounds` bounds propagation in the presence of forwarding loops;
/// each round processes one frontier of newly arrived packets. A correct
/// hierarchical network converges in diameter-many rounds.
pub fn reach(
    bdd: &mut Bdd,
    fwd: &Forwarder<'_>,
    start: Location,
    packets: Ref,
    max_rounds: usize,
) -> ReachResult {
    let _span = netobs::span!("dataplane_reach");
    let mut result = ReachResult::default();
    // Accumulated set ever seen at each location; the frontier carries
    // only the delta, which guarantees termination even with loops (sets
    // grow monotonically and the lattice is finite).
    let mut seen: HashMap<Location, Ref> = HashMap::new();
    let mut frontier: Vec<(Location, Ref)> = vec![(start, packets)];

    for _round in 0..max_rounds {
        if frontier.is_empty() {
            break;
        }
        // BTreeMap keeps frontier order deterministic run-to-run.
        let mut next: std::collections::BTreeMap<Location, Ref> = std::collections::BTreeMap::new();
        for (loc, set) in frontier.drain(..) {
            let already = seen.entry(loc).or_insert(Ref::FALSE);
            let fresh = bdd.diff(set, *already);
            if fresh.is_false() {
                continue;
            }
            *already = bdd.or(*already, fresh);
            result.per_hop.add(bdd, loc, fresh);

            let step = fwd.step(bdd, loc.device, loc.iface, fresh);
            if !step.unmatched.is_false() {
                result.unmatched.push((loc, step.unmatched));
            }
            for t in step.transitions {
                result.exercised.push((t.rule, t.matched));
                for o in t.outcomes {
                    match o {
                        Outcome::Hop {
                            next: nloc,
                            packets,
                        } => {
                            let e = next.entry(nloc).or_insert(Ref::FALSE);
                            *e = bdd.or(*e, packets);
                        }
                        Outcome::Delivered { iface, packets } => {
                            result.delivered.push((iface, packets));
                        }
                        Outcome::Exited { iface, packets } => {
                            result.exited.push((iface, packets));
                        }
                        Outcome::Dropped { packets } => {
                            result.dropped.push((t.rule, packets));
                        }
                    }
                }
            }
        }
        frontier.extend(next);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::{ipv4, Prefix};
    use netmodel::header::{self, Packet};
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{IfaceKind, Role, Topology};
    use netmodel::{MatchSets, Network};

    /// tor1 -- spine -- tor2, each ToR with a host port and a /24.
    fn chain() -> (Network, Vec<netmodel::DeviceId>, Vec<IfaceId>) {
        let mut t = Topology::new();
        let tor1 = t.add_device("tor1", Role::Tor);
        let spine = t.add_device("spine", Role::Spine);
        let tor2 = t.add_device("tor2", Role::Tor);
        let h1 = t.add_iface(tor1, "hosts", IfaceKind::Host);
        let h2 = t.add_iface(tor2, "hosts", IfaceKind::Host);
        let (t1s, st1) = t.add_link(tor1, spine);
        let (t2s, st2) = t.add_link(tor2, spine);
        let p1: Prefix = "10.0.1.0/24".parse().unwrap();
        let p2: Prefix = "10.0.2.0/24".parse().unwrap();
        let mut net = Network::new(t);
        // tor1: own prefix to hosts, everything else up.
        net.add_rule(tor1, Rule::forward(p1, vec![h1], RouteClass::HostSubnet));
        net.add_rule(
            tor1,
            Rule::forward(Prefix::v4_default(), vec![t1s], RouteClass::StaticDefault),
        );
        // spine: both prefixes down.
        net.add_rule(spine, Rule::forward(p1, vec![st1], RouteClass::HostSubnet));
        net.add_rule(spine, Rule::forward(p2, vec![st2], RouteClass::HostSubnet));
        // tor2: own prefix to hosts, everything else up.
        net.add_rule(tor2, Rule::forward(p2, vec![h2], RouteClass::HostSubnet));
        net.add_rule(
            tor2,
            Rule::forward(Prefix::v4_default(), vec![t2s], RouteClass::StaticDefault),
        );
        net.finalize();
        (
            net,
            vec![tor1, spine, tor2],
            vec![h1, h2, t1s, st1, t2s, st2],
        )
    }

    #[test]
    fn cross_rack_traffic_is_delivered() {
        let (net, devs, ifaces) = chain();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let p2set = header::dst_in(&mut bdd, &"10.0.2.0/24".parse().unwrap());
        let res = reach(&mut bdd, &fwd, Location::device(devs[0]), p2set, 16);
        // Delivered at tor2's host port, the full /24.
        assert_eq!(res.delivered.len(), 1);
        assert_eq!(res.delivered[0].0, ifaces[1]);
        assert!(bdd.equal(res.delivered[0].1, p2set));
        assert!(res.dropped.is_empty());
        assert!(res.unmatched.is_empty());
        // Hops: tor1 (injection), spine, tor2.
        assert_eq!(res.per_hop.devices().len(), 3);
    }

    #[test]
    fn per_hop_sets_shrink_monotonically_here() {
        let (net, devs, _) = chain();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let v4 = header::family_is(&mut bdd, netmodel::Family::V4);
        let res = reach(&mut bdd, &fwd, Location::device(devs[0]), v4, 16);
        let at_tor1 = res.per_hop.at_device(&mut bdd, devs[0]);
        let at_spine = res.per_hop.at_device(&mut bdd, devs[1]);
        let at_tor2 = res.per_hop.at_device(&mut bdd, devs[2]);
        assert!(bdd.subset(at_spine, at_tor1));
        assert!(bdd.subset(at_tor2, at_spine));
        // Only 10.0.2.0/24 makes it to tor2.
        let p2set = header::dst_in(&mut bdd, &"10.0.2.0/24".parse().unwrap());
        assert!(bdd.equal(at_tor2, p2set));
    }

    #[test]
    fn exercised_rules_record_subsets_of_match_sets() {
        let (net, devs, _) = chain();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let v4 = header::family_is(&mut bdd, netmodel::Family::V4);
        let res = reach(&mut bdd, &fwd, Location::device(devs[0]), v4, 16);
        assert!(!res.exercised.is_empty());
        for (rule, subset) in &res.exercised {
            assert!(
                bdd.subset(*subset, ms.get(*rule)),
                "exercised beyond match set"
            );
        }
    }

    #[test]
    fn forwarding_loop_terminates_and_reports_no_delivery() {
        // a and b default-route at each other: a loop.
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Spine);
        let b = t.add_device("b", Role::Spine);
        let (ab, ba) = t.add_link(a, b);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule::forward(Prefix::v4_default(), vec![ab], RouteClass::StaticDefault),
        );
        net.add_rule(
            b,
            Rule::forward(Prefix::v4_default(), vec![ba], RouteClass::StaticDefault),
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let v4 = header::family_is(&mut bdd, netmodel::Family::V4);
        let res = reach(&mut bdd, &fwd, Location::device(a), v4, 64);
        // The fixpoint converges (sets stop changing), nothing delivered.
        assert!(res.delivered.is_empty());
        assert!(res.exited.is_empty());
        assert_eq!(res.per_hop.devices().len(), 2);
    }

    #[test]
    fn dropped_packets_are_attributed_to_the_null_route() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Border);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule::null_route(Prefix::v4_default(), RouteClass::StaticDefault),
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let pkt = Packet::v4_to(ipv4(8, 8, 8, 8)).to_bdd(&mut bdd);
        let res = reach(&mut bdd, &fwd, Location::device(a), pkt, 4);
        assert_eq!(res.dropped.len(), 1);
        assert!(bdd.equal(res.dropped[0].1, pkt));
    }
}
