//! Semantic diffs between forwarding-state snapshots.
//!
//! The production deployment (§7.1) evaluates *changes*: a simulator
//! computes the forwarding state a change would produce, tests run
//! against it, and coverage says how much of the state the tests
//! exercised. The natural companion question is *"which packets does
//! the change affect, and are **those** tested?"* — this module answers
//! the first half by computing, per device, the exact packet set whose
//! forwarding behaviour differs between two snapshots.
//!
//! The computation is semantics-based like everything else: two tables
//! that order their rules differently but forward identically produce an
//! empty diff.

use std::collections::BTreeMap;

use netbdd::{Bdd, Ref};
use netmodel::rule::Action;
use netmodel::topology::DeviceId;
use netmodel::{HeaderField, IfaceId, MatchSets, Network};

/// Canonical behaviour key of a rule action: what happens to a matched
/// packet, ignoring rule order/identity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum ActionKey {
    Drop,
    Forward(Vec<IfaceId>),
    Rewrite(Vec<(HeaderFieldKey, u128)>, Vec<IfaceId>),
}

/// `HeaderField` lacks `Ord`; mirror it with a sortable key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum HeaderFieldKey {
    Family,
    Dst,
    Dst4,
    Src,
    Proto,
    Sport,
    Dport,
}

fn field_key(f: HeaderField) -> HeaderFieldKey {
    match f {
        HeaderField::Family => HeaderFieldKey::Family,
        HeaderField::Dst => HeaderFieldKey::Dst,
        HeaderField::Dst4 => HeaderFieldKey::Dst4,
        HeaderField::Src => HeaderFieldKey::Src,
        HeaderField::Proto => HeaderFieldKey::Proto,
        HeaderField::Sport => HeaderFieldKey::Sport,
        HeaderField::Dport => HeaderFieldKey::Dport,
    }
}

fn action_key(a: &Action) -> ActionKey {
    match a {
        Action::Drop => ActionKey::Drop,
        Action::Forward(outs) => {
            let mut o = outs.clone();
            o.sort();
            ActionKey::Forward(o)
        }
        Action::Rewrite(rw, outs) => {
            let mut o = outs.clone();
            o.sort();
            let mut set: Vec<(HeaderFieldKey, u128)> =
                rw.set.iter().map(|&(f, v)| (field_key(f), v)).collect();
            set.sort();
            ActionKey::Rewrite(set, o)
        }
    }
}

/// The change at one device.
#[derive(Clone, Debug)]
pub struct DeviceDiff {
    /// The device whose behaviour changed.
    pub device: DeviceId,
    /// Packets whose behaviour at this device differs (including packets
    /// only one snapshot has any rule for).
    pub changed: Ref,
    /// `P(changed)` — the share of header space affected.
    pub weight: f64,
}

/// Compute the per-device semantic diff between two snapshots over the
/// same topology. Devices with no behavioural change are omitted.
///
/// # Panics
///
/// Panics if the snapshots have different device counts (diffs are
/// defined over a fixed topology, per the paper's static-snapshot model).
pub fn semantic_diff(
    bdd: &mut Bdd,
    old: &Network,
    old_ms: &MatchSets,
    new: &Network,
    new_ms: &MatchSets,
) -> Vec<DeviceDiff> {
    assert_eq!(
        old.topology().device_count(),
        new.topology().device_count(),
        "semantic diffs require a shared topology"
    );
    let mut out = Vec::new();
    for (device, _) in old.topology().devices() {
        // Behaviour signatures: action key → packet set, per snapshot.
        let sig = |net: &Network, ms: &MatchSets, bdd: &mut Bdd| {
            let mut m: BTreeMap<ActionKey, Ref> = BTreeMap::new();
            for id in net.device_rule_ids(device) {
                let k = action_key(&net.rule(id).action);
                let e = m.entry(k).or_insert(Ref::FALSE);
                *e = bdd.or(*e, ms.get(id));
            }
            m
        };
        let old_sig = sig(old, old_ms, bdd);
        let new_sig = sig(new, new_ms, bdd);
        // Agreement: packets with the same behaviour in both.
        let mut agreement = bdd.empty();
        for (k, &o) in &old_sig {
            if let Some(&n) = new_sig.get(k) {
                let both = bdd.and(o, n);
                agreement = bdd.or(agreement, both);
            }
        }
        let old_total = bdd.or_all(old_sig.values().copied());
        let new_total = bdd.or_all(new_sig.values().copied());
        let either = bdd.or(old_total, new_total);
        let changed = bdd.diff(either, agreement);
        if !changed.is_false() {
            let weight = bdd.probability(changed);
            out.push(DeviceDiff {
                device,
                changed,
                weight,
            });
        }
    }
    out
}

/// Whether two snapshots forward identically for every packet at every
/// device — the equivalent-mutant detector: a mutation with no semantic
/// diff cannot be killed by any behavioural or state-semantics test.
pub fn equivalent(
    bdd: &mut Bdd,
    old: &Network,
    old_ms: &MatchSets,
    new: &Network,
    new_ms: &MatchSets,
) -> bool {
    semantic_diff(bdd, old, old_ms, new, new_ms).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::Prefix;
    use netmodel::header::Packet;
    use netmodel::rule::{RouteClass, Rule, Table, TableMode};
    use netmodel::topology::{IfaceKind, Role, Topology};

    fn base() -> Network {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "h", IfaceKind::Host);
        t.add_iface(d, "up", IfaceKind::External);
        let mut n = Network::new(t);
        n.add_rule(
            d,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![IfaceId(0)],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            d,
            Rule::forward(
                Prefix::v4_default(),
                vec![IfaceId(1)],
                RouteClass::StaticDefault,
            ),
        );
        n.finalize();
        n
    }

    #[test]
    fn identical_snapshots_have_empty_diff() {
        let a = base();
        let b = a.clone();
        let mut bdd = Bdd::new();
        let ams = MatchSets::compute(&a, &mut bdd);
        let bms = MatchSets::compute(&b, &mut bdd);
        assert!(semantic_diff(&mut bdd, &a, &ams, &b, &bms).is_empty());
    }

    #[test]
    fn reordered_but_equivalent_tables_have_empty_diff() {
        // Same semantics written in opposite insertion order: LPM
        // normalizes, the diff must be empty (semantics-based, §3.2).
        let a = base();
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "h", IfaceKind::Host);
        t.add_iface(d, "up", IfaceKind::External);
        let mut b = Network::new(t);
        b.add_rule(
            d,
            Rule::forward(
                Prefix::v4_default(),
                vec![IfaceId(1)],
                RouteClass::StaticDefault,
            ),
        );
        b.add_rule(
            d,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![IfaceId(0)],
                RouteClass::HostSubnet,
            ),
        );
        b.finalize();
        let mut bdd = Bdd::new();
        let ams = MatchSets::compute(&a, &mut bdd);
        let bms = MatchSets::compute(&b, &mut bdd);
        assert!(semantic_diff(&mut bdd, &a, &ams, &b, &bms).is_empty());
    }

    #[test]
    fn null_routing_a_prefix_changes_exactly_that_prefix() {
        let a = base();
        let mut b = a.clone();
        let d = a.topology().device_by_name("r").unwrap();
        // Null-route the /24 in the new snapshot.
        let mut table = Table::new(TableMode::Lpm);
        b.device_rules(d).iter().for_each(|r| {
            let mut r = r.clone();
            if r.matches.dst == Some("10.0.0.0/24".parse().unwrap()) {
                r.action = Action::Drop;
            }
            table.push(r);
        });
        table.finalize();
        b.set_table(d, table);

        let mut bdd = Bdd::new();
        let ams = MatchSets::compute(&a, &mut bdd);
        let bms = MatchSets::compute(&b, &mut bdd);
        let diffs = semantic_diff(&mut bdd, &a, &ams, &b, &bms);
        assert_eq!(diffs.len(), 1);
        let expect = netmodel::header::dst_in(&mut bdd, &"10.0.0.0/24".parse().unwrap());
        assert!(bdd.equal(diffs[0].changed, expect));
        // Witnesses behave as expected.
        let inside = Packet::v4_to(netmodel::addr::ipv4(10, 0, 0, 7));
        assert!(inside.matches(&bdd, diffs[0].changed));
        let outside = Packet::v4_to(netmodel::addr::ipv4(11, 0, 0, 7));
        assert!(!outside.matches(&bdd, diffs[0].changed));
    }

    #[test]
    fn removing_a_rule_diffs_its_residual_space() {
        let a = base();
        let mut b = a.clone();
        let d = a.topology().device_by_name("r").unwrap();
        topogen_remove(&mut b, d, "10.0.0.0/24".parse().unwrap());
        let mut bdd = Bdd::new();
        let ams = MatchSets::compute(&a, &mut bdd);
        let bms = MatchSets::compute(&b, &mut bdd);
        let diffs = semantic_diff(&mut bdd, &a, &ams, &b, &bms);
        // The /24 now falls to the default (different out iface): changed.
        assert_eq!(diffs.len(), 1);
        let expect = netmodel::header::dst_in(&mut bdd, &"10.0.0.0/24".parse().unwrap());
        assert!(bdd.equal(diffs[0].changed, expect));
    }

    /// Local copy of faults::remove_route to avoid a dev-dependency
    /// cycle (topogen dev-depends on dataplane).
    fn topogen_remove(net: &mut Network, device: DeviceId, prefix: Prefix) {
        let rules = net.device_rules(device).to_vec();
        let mut table = Table::new(TableMode::Priority);
        for r in rules {
            if r.matches.dst != Some(prefix) {
                table.push(r);
            }
        }
        table.finalize();
        net.set_table(device, table);
    }

    #[test]
    fn ecmp_reduction_is_a_change() {
        // Dropping one ECMP leg changes behaviour for the prefix.
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "a", IfaceKind::External);
        t.add_iface(d, "b", IfaceKind::External);
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut old = Network::new(t.clone());
        old.add_rule(
            d,
            Rule::forward(p, vec![IfaceId(0), IfaceId(1)], RouteClass::Other),
        );
        old.finalize();
        let mut new = Network::new(t);
        new.add_rule(d, Rule::forward(p, vec![IfaceId(0)], RouteClass::Other));
        new.finalize();
        let mut bdd = Bdd::new();
        let oms = MatchSets::compute(&old, &mut bdd);
        let nms = MatchSets::compute(&new, &mut bdd);
        let diffs = semantic_diff(&mut bdd, &old, &oms, &new, &nms);
        assert_eq!(diffs.len(), 1);
        let expect = netmodel::header::dst_in(&mut bdd, &p);
        assert!(bdd.equal(diffs[0].changed, expect));
    }
}
