//! Path-universe enumeration (§5.2, step 3).
//!
//! Path coverage needs the set of all paths *imputed by the forwarding
//! state* — topology alone would admit unrealistic zig-zag paths and
//! inflate the denominator, so only rule sequences that carry a non-empty
//! packet set count. The traversal is depth-first and paths are emitted
//! incrementally to a visitor; nothing is materialised (*"there can be
//! 100s of millions of paths in a large network"*).
//!
//! A path, following §4.3.2, ends where its packets end: delivery out an
//! edge interface, exit from the modelled network, an explicit drop rule,
//! or an unmatched lookup. Packets dropped at an intermediate rule `r_j`
//! belong to the shorter `r_1..r_j` path, exactly as the paper specifies.

use netbdd::{Bdd, Ref};
use netmodel::{IfaceId, IfaceKind, Location, RuleId};

use crate::forward::{Forwarder, Outcome};

/// How a path ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// Delivered out a host-facing (or loopback) interface.
    Delivered {
        /// The egress interface.
        iface: IfaceId,
    },
    /// Left the modelled network via an external interface.
    Exited {
        /// The egress interface.
        iface: IfaceId,
    },
    /// Dropped by the final rule of the path (a null route or deny).
    Dropped,
    /// Matched no rule at the final device.
    Unmatched,
    /// Cut off by the hop bound (forwarding loop suspected).
    Truncated,
}

/// One enumerated path, handed to the visitor by reference; the rule
/// slice is only valid during the callback.
#[derive(Debug)]
pub struct PathEvent<'a> {
    /// Where the packets entered the network.
    pub start: Location,
    /// The rule sequence exercised, in order.
    pub rules: &'a [RuleId],
    /// How the path ends.
    pub terminal: Terminal,
    /// The packet set that survives the whole sequence, in its final
    /// (post-rewrite) form.
    pub final_set: Ref,
}

/// Exploration options.
#[derive(Clone, Debug)]
pub struct ExploreOpts {
    /// Maximum path length in rules before declaring truncation.
    pub max_hops: usize,
    /// If false, zero-rule paths (packets unmatched at the injection
    /// device) are suppressed.
    pub emit_empty_paths: bool,
    /// Stop enumerating once this many paths have been emitted. The
    /// Figure-9 experiment uses this as its timeout stand-in: path
    /// coverage on multipath fabrics grows combinatorially, and the
    /// paper itself caps the computation at one hour.
    pub max_paths: u64,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            max_hops: 64,
            emit_empty_paths: false,
            max_paths: u64::MAX,
        }
    }
}

/// Aggregate statistics returned by [`explore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Total paths emitted.
    pub paths: u64,
    /// Paths ending in a delivery.
    pub delivered: u64,
    /// Paths leaving via an external interface.
    pub exited: u64,
    /// Paths ending at an explicit drop rule.
    pub dropped: u64,
    /// Paths whose final device matched no rule.
    pub unmatched: u64,
    /// Paths cut off by the hop bound.
    pub truncated: u64,
    /// Longest emitted path, in rules.
    pub max_len: usize,
}

/// Enumerate the path universe from the given start locations.
///
/// `starts` supplies `(location, packet set)` injection points; use
/// [`edge_starts`] for the standard "all packets at every edge interface"
/// universe. The `visitor` is invoked once per maximal path.
pub fn explore(
    bdd: &mut Bdd,
    fwd: &Forwarder<'_>,
    starts: &[(Location, Ref)],
    opts: &ExploreOpts,
    mut visitor: impl FnMut(&mut Bdd, &PathEvent<'_>),
) -> PathStats {
    let _span = netobs::span!("dataplane_explore");
    let mut stats = PathStats::default();
    let mut rules: Vec<RuleId> = Vec::new();
    for &(start, packets) in starts {
        if packets.is_false() {
            continue;
        }
        dfs(
            bdd,
            fwd,
            start,
            start,
            packets,
            opts,
            &mut rules,
            &mut stats,
            &mut visitor,
        );
        rules.clear();
        if stats.paths >= opts.max_paths {
            break;
        }
    }
    stats
}

/// The standard injection points for the full path universe: the complete
/// header space at every host-facing and external interface.
pub fn edge_starts(bdd: &mut Bdd, fwd: &Forwarder<'_>) -> Vec<(Location, Ref)> {
    let full = bdd.full();
    fwd.network()
        .topology()
        .ifaces()
        .filter(|(_, ifc)| matches!(ifc.kind, IfaceKind::Host | IfaceKind::External))
        .map(|(id, ifc)| (Location::at(ifc.device, id), full))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    bdd: &mut Bdd,
    fwd: &Forwarder<'_>,
    start: Location,
    loc: Location,
    packets: Ref,
    opts: &ExploreOpts,
    rules: &mut Vec<RuleId>,
    stats: &mut PathStats,
    visitor: &mut impl FnMut(&mut Bdd, &PathEvent<'_>),
) {
    if stats.paths >= opts.max_paths {
        return;
    }
    if rules.len() >= opts.max_hops {
        emit(
            bdd,
            start,
            rules,
            Terminal::Truncated,
            packets,
            stats,
            visitor,
        );
        return;
    }
    let step = fwd.step(bdd, loc.device, loc.iface, packets);
    if !step.unmatched.is_false() && (!rules.is_empty() || opts.emit_empty_paths) {
        emit(
            bdd,
            start,
            rules,
            Terminal::Unmatched,
            step.unmatched,
            stats,
            visitor,
        );
    }
    for t in step.transitions {
        rules.push(t.rule);
        for o in t.outcomes {
            match o {
                Outcome::Hop { next, packets } => {
                    dfs(bdd, fwd, start, next, packets, opts, rules, stats, visitor);
                }
                Outcome::Delivered { iface, packets } => {
                    emit(
                        bdd,
                        start,
                        rules,
                        Terminal::Delivered { iface },
                        packets,
                        stats,
                        visitor,
                    );
                }
                Outcome::Exited { iface, packets } => {
                    emit(
                        bdd,
                        start,
                        rules,
                        Terminal::Exited { iface },
                        packets,
                        stats,
                        visitor,
                    );
                }
                Outcome::Dropped { packets } => {
                    emit(
                        bdd,
                        start,
                        rules,
                        Terminal::Dropped,
                        packets,
                        stats,
                        visitor,
                    );
                }
            }
        }
        rules.pop();
    }
}

fn emit(
    bdd: &mut Bdd,
    start: Location,
    rules: &[RuleId],
    terminal: Terminal,
    final_set: Ref,
    stats: &mut PathStats,
    visitor: &mut impl FnMut(&mut Bdd, &PathEvent<'_>),
) {
    stats.paths += 1;
    stats.max_len = stats.max_len.max(rules.len());
    match terminal {
        Terminal::Delivered { .. } => stats.delivered += 1,
        Terminal::Exited { .. } => stats.exited += 1,
        Terminal::Dropped => stats.dropped += 1,
        Terminal::Unmatched => stats.unmatched += 1,
        Terminal::Truncated => stats.truncated += 1,
    }
    let event = PathEvent {
        start,
        rules,
        terminal,
        final_set,
    };
    visitor(bdd, &event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::Prefix;
    use netmodel::header;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{Role, Topology};
    use netmodel::{MatchSets, Network};

    /// Diamond: in -> a -> {b, c} -> d -> out (ECMP at a).
    fn diamond() -> (Network, Location, IfaceId) {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let c = t.add_device("c", Role::Spine);
        let d = t.add_device("d", Role::Tor);
        let ingress = t.add_iface(a, "in", IfaceKind::Host);
        let egress = t.add_iface(d, "out", IfaceKind::Host);
        let (ab, ba) = t.add_link(a, b);
        let (ac, ca) = t.add_link(a, c);
        let (bd, db) = t.add_link(b, d);
        let (cd, dc) = t.add_link(c, d);
        let _ = (ba, ca, db, dc);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut net = Network::new(t);
        net.add_rule(a, Rule::forward(p, vec![ab, ac], RouteClass::HostSubnet));
        net.add_rule(b, Rule::forward(p, vec![bd], RouteClass::HostSubnet));
        net.add_rule(c, Rule::forward(p, vec![cd], RouteClass::HostSubnet));
        net.add_rule(d, Rule::forward(p, vec![egress], RouteClass::HostSubnet));
        net.finalize();
        (net, Location::at(a, ingress), egress)
    }

    #[test]
    fn ecmp_diamond_has_two_delivered_paths() {
        let (net, start, egress) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let p = header::dst_in(&mut bdd, &"10.0.0.0/24".parse().unwrap());
        let mut lengths = Vec::new();
        let stats = explore(
            &mut bdd,
            &fwd,
            &[(start, p)],
            &ExploreOpts::default(),
            |bdd, ev| {
                if let Terminal::Delivered { iface } = ev.terminal {
                    assert_eq!(iface, egress);
                    assert!(bdd.equal(ev.final_set, p));
                    lengths.push(ev.rules.len());
                }
            },
        );
        assert_eq!(stats.delivered, 2);
        assert_eq!(lengths, vec![3, 3]);
        assert_eq!(stats.truncated, 0);
    }

    #[test]
    fn injecting_full_space_counts_unmatched() {
        let (net, start, _) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let full = bdd.full();
        let opts = ExploreOpts {
            emit_empty_paths: true,
            ..ExploreOpts::default()
        };
        let stats = explore(&mut bdd, &fwd, &[(start, full)], &opts, |_, _| {});
        // Everything outside 10.0.0.0/24 dies at `a` with no rules.
        assert_eq!(stats.unmatched, 1);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn drops_end_paths_early() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let ingress = t.add_iface(a, "in", IfaceKind::Host);
        let (ab, _) = t.add_link(a, b);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule::forward(Prefix::v4_default(), vec![ab], RouteClass::StaticDefault),
        );
        net.add_rule(
            b,
            Rule::null_route(Prefix::v4_default(), RouteClass::StaticDefault),
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let v4 = header::family_is(&mut bdd, netmodel::Family::V4);
        let mut paths = Vec::new();
        let stats = explore(
            &mut bdd,
            &fwd,
            &[(Location::at(a, ingress), v4)],
            &ExploreOpts::default(),
            |_, ev| paths.push((ev.rules.to_vec(), ev.terminal)),
        );
        assert_eq!(stats.paths, 1);
        assert_eq!(paths[0].0.len(), 2); // forward at a, drop at b
        assert_eq!(paths[0].1, Terminal::Dropped);
    }

    #[test]
    fn loops_truncate_at_hop_bound() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Spine);
        let b = t.add_device("b", Role::Spine);
        let ingress = t.add_iface(a, "in", IfaceKind::Host);
        let (ab, ba) = t.add_link(a, b);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule::forward(Prefix::v4_default(), vec![ab], RouteClass::StaticDefault),
        );
        net.add_rule(
            b,
            Rule::forward(Prefix::v4_default(), vec![ba], RouteClass::StaticDefault),
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let v4 = header::family_is(&mut bdd, netmodel::Family::V4);
        let opts = ExploreOpts {
            max_hops: 10,
            ..ExploreOpts::default()
        };
        let stats = explore(
            &mut bdd,
            &fwd,
            &[(Location::at(a, ingress), v4)],
            &opts,
            |_, _| {},
        );
        assert_eq!(stats.truncated, 1);
        assert_eq!(stats.max_len, 10);
    }

    #[test]
    fn edge_starts_cover_host_and_external_ifaces() {
        let (net, _, _) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let starts = edge_starts(&mut bdd, &fwd);
        assert_eq!(starts.len(), 2); // "in" on a, "out" on d
        assert!(starts.iter().all(|&(_, p)| p.is_true()));
    }

    #[test]
    fn stats_paths_equals_sum_of_terminals() {
        let (net, _, _) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let starts = edge_starts(&mut bdd, &fwd);
        let opts = ExploreOpts {
            emit_empty_paths: true,
            ..ExploreOpts::default()
        };
        let stats = explore(&mut bdd, &fwd, &starts, &opts, |_, _| {});
        assert_eq!(
            stats.paths,
            stats.delivered + stats.exited + stats.dropped + stats.unmatched + stats.truncated
        );
    }
}
