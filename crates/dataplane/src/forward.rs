//! One symbolic forwarding step.
//!
//! A [`Forwarder`] splits an incoming located packet set across a device's
//! disjoint rule match sets and applies each matched rule's action. The
//! result says, per exercised rule, which packets matched and where every
//! surviving subset went — the primitive that both reachability analysis
//! and path enumeration are built on.

use netbdd::{Bdd, Ref};
use netmodel::topology::DeviceId;
use netmodel::{Action, IfaceId, IfaceKind, Location, MatchSets, Network, RuleId};

/// Where one matched subset of packets went.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Forwarded over a point-to-point link; packets now sit at the peer.
    Hop {
        /// The peer location the packets arrive at.
        next: Location,
        /// The packets taking this leg.
        packets: Ref,
    },
    /// Delivered out a host-facing interface.
    Delivered {
        /// The egress interface.
        iface: IfaceId,
        /// The delivered packets.
        packets: Ref,
    },
    /// Left the modelled network through an external (WAN) interface.
    Exited {
        /// The egress interface.
        iface: IfaceId,
        /// The exiting packets.
        packets: Ref,
    },
    /// Dropped by the rule (null route / deny).
    Dropped {
        /// The dropped packets.
        packets: Ref,
    },
}

impl Outcome {
    /// The packet set carried by this outcome, whatever its kind.
    pub fn packets(&self) -> Ref {
        match *self {
            Outcome::Hop { packets, .. }
            | Outcome::Delivered { packets, .. }
            | Outcome::Exited { packets, .. }
            | Outcome::Dropped { packets } => packets,
        }
    }
}

/// One exercised rule within a step: the subset of the input it matched
/// and the outcomes of its action (one per ECMP leg, or a single drop).
#[derive(Clone, Debug)]
pub struct Transition {
    /// The rule that matched.
    pub rule: RuleId,
    /// `input ∩ M[rule]` — the exercised portion, *before* any rewrite.
    pub matched: Ref,
    /// Where the matched packets went (one entry per ECMP leg).
    pub outcomes: Vec<Outcome>,
}

/// Result of symbolically stepping a packet set through one device.
#[derive(Clone, Debug)]
pub struct StepResult {
    /// One entry per rule that matched a non-empty subset.
    pub transitions: Vec<Transition>,
    /// Packets no rule matched: implicitly dropped, exercising nothing.
    pub unmatched: Ref,
}

/// Symbolic forwarding engine bound to a network and its precomputed
/// disjoint match sets.
pub struct Forwarder<'n> {
    net: &'n Network,
    match_sets: &'n MatchSets,
}

impl<'n> Forwarder<'n> {
    /// Bind a forwarder to a network and its precomputed match sets.
    pub fn new(net: &'n Network, match_sets: &'n MatchSets) -> Forwarder<'n> {
        Forwarder { net, match_sets }
    }

    /// The network being stepped through.
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// The disjoint match sets the forwarder splits against.
    pub fn match_sets(&self) -> &'n MatchSets {
        self.match_sets
    }

    /// Step `packets` (located at `device`, having arrived on `ingress` if
    /// known) through the device's forwarding table.
    pub fn step(
        &self,
        bdd: &mut Bdd,
        device: DeviceId,
        ingress: Option<IfaceId>,
        packets: Ref,
    ) -> StepResult {
        let mut transitions = Vec::new();
        let mut remaining = packets;
        for id in self.net.device_rule_ids(device) {
            if remaining.is_false() {
                break;
            }
            let rule = self.net.rule(id);
            // Ingress-scoped rules only see packets that arrived on their
            // interface; with unknown ingress they are skipped (the
            // conservative choice for injected local test packets).
            if let Some(required) = rule.matches.in_iface {
                if ingress != Some(required) {
                    continue;
                }
            }
            let m = self.match_sets.get(id);
            let matched = bdd.and(remaining, m);
            if matched.is_false() {
                continue;
            }
            remaining = bdd.diff(remaining, matched);
            let outcomes = self.apply_action(bdd, &rule.action, matched);
            transitions.push(Transition {
                rule: id,
                matched,
                outcomes,
            });
        }
        StepResult {
            transitions,
            unmatched: remaining,
        }
    }

    fn apply_action(&self, bdd: &mut Bdd, action: &Action, matched: Ref) -> Vec<Outcome> {
        match action {
            Action::Drop => vec![Outcome::Dropped { packets: matched }],
            Action::Forward(outs) => outs.iter().map(|&o| self.emit(bdd, o, matched)).collect(),
            Action::Rewrite(rw, outs) => {
                let rewritten = rw.apply(bdd, matched);
                outs.iter().map(|&o| self.emit(bdd, o, rewritten)).collect()
            }
        }
    }

    fn emit(&self, _bdd: &mut Bdd, iface: IfaceId, packets: Ref) -> Outcome {
        let ifc = self.net.topology().iface(iface);
        match ifc.kind {
            IfaceKind::P2p => match ifc.peer {
                Some(peer) => {
                    let next_dev = self.net.topology().iface(peer).device;
                    Outcome::Hop {
                        next: Location::at(next_dev, peer),
                        packets,
                    }
                }
                // A P2p interface with no peer is a dangling link: packets
                // leave the model.
                None => Outcome::Exited { iface, packets },
            },
            IfaceKind::Host => Outcome::Delivered { iface, packets },
            IfaceKind::External => Outcome::Exited { iface, packets },
            IfaceKind::Loopback => {
                // Forwarding to a loopback delivers locally (e.g. packets
                // addressed to the router itself).
                Outcome::Delivered { iface, packets }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::{ipv4, Prefix};
    use netmodel::header::Packet;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{Role, Topology};

    /// a --- b, plus a host port and a WAN port on a.
    struct Fixture {
        net: Network,
        a: DeviceId,
        b: DeviceId,
        host: IfaceId,
        ba: IfaceId,
    }

    fn fixture(rules_a: Vec<Rule>) -> Fixture {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let host = t.add_iface(a, "hosts", IfaceKind::Host);
        let _wan = t.add_iface(a, "wan", IfaceKind::External);
        let (_ab, ba) = t.add_link(a, b);
        let mut net = Network::new(t);
        for r in rules_a {
            net.add_rule(a, r);
        }
        net.finalize();
        Fixture {
            net,
            a,
            b,
            host,
            ba,
        }
    }

    #[test]
    fn step_splits_across_rules() {
        let fx = fixture(vec![
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![IfaceId(0)],
                RouteClass::HostSubnet,
            ),
            Rule::forward(
                Prefix::v4_default(),
                vec![IfaceId(2)],
                RouteClass::StaticDefault,
            ),
        ]);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&fx.net, &mut bdd);
        let fwd = Forwarder::new(&fx.net, &ms);
        let full = bdd.full();
        let res = fwd.step(&mut bdd, fx.a, None, full);
        assert_eq!(res.transitions.len(), 2);
        // /24 delivered to hosts.
        match &res.transitions[0].outcomes[0] {
            Outcome::Delivered { iface, packets } => {
                assert_eq!(*iface, fx.host);
                let p = Packet::v4_to(ipv4(10, 0, 0, 5));
                assert!(p.matches(&bdd, *packets));
            }
            o => panic!("expected delivery, got {o:?}"),
        }
        // Default hops to b.
        match &res.transitions[1].outcomes[0] {
            Outcome::Hop { next, packets } => {
                assert_eq!(next.device, fx.b);
                assert_eq!(next.iface, Some(fx.ba));
                let p = Packet::v4_to(ipv4(11, 0, 0, 5));
                assert!(p.matches(&bdd, *packets));
                // The /24 was peeled off first.
                let q = Packet::v4_to(ipv4(10, 0, 0, 5));
                assert!(!q.matches(&bdd, *packets));
            }
            o => panic!("expected hop, got {o:?}"),
        }
        // v6 packets matched nothing (only v4 routes installed).
        assert!(!res.unmatched.is_false());
        let v6 = netmodel::header::family_is(&mut bdd, netmodel::Family::V6);
        assert!(bdd.equal(res.unmatched, v6));
    }

    #[test]
    fn drop_rules_drop() {
        let fx = fixture(vec![Rule::null_route(
            Prefix::v4_default(),
            RouteClass::StaticDefault,
        )]);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&fx.net, &mut bdd);
        let fwd = Forwarder::new(&fx.net, &ms);
        let full = bdd.full();
        let res = fwd.step(&mut bdd, fx.a, None, full);
        assert_eq!(res.transitions.len(), 1);
        assert!(matches!(
            res.transitions[0].outcomes[0],
            Outcome::Dropped { .. }
        ));
    }

    #[test]
    fn ecmp_fans_out_to_all_legs() {
        let fx = fixture(vec![Rule::forward(
            Prefix::v4_default(),
            vec![IfaceId(1), IfaceId(2)], // wan + link
            RouteClass::StaticDefault,
        )]);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&fx.net, &mut bdd);
        let fwd = Forwarder::new(&fx.net, &ms);
        let full = bdd.full();
        let res = fwd.step(&mut bdd, fx.a, None, full);
        let outs = &res.transitions[0].outcomes;
        assert_eq!(outs.len(), 2);
        assert!(matches!(outs[0], Outcome::Exited { .. }));
        assert!(matches!(outs[1], Outcome::Hop { .. }));
        // Both legs carry the same matched set.
        assert_eq!(outs[0].packets(), outs[1].packets());
        assert_eq!(outs[0].packets(), res.transitions[0].matched);
    }

    #[test]
    fn rewrite_transforms_before_forwarding() {
        use netmodel::{HeaderField, Rewrite};
        let target = ipv4(192, 168, 0, 1) as u128;
        let fx = fixture(vec![Rule {
            matches: netmodel::MatchFields::dst_prefix(Prefix::v4_default()),
            action: Action::Rewrite(
                Rewrite {
                    set: vec![(HeaderField::Dst4, target)],
                },
                vec![IfaceId(2)],
            ),
            class: RouteClass::Other,
        }]);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&fx.net, &mut bdd);
        let fwd = Forwarder::new(&fx.net, &ms);
        let v4 = netmodel::header::family_is(&mut bdd, netmodel::Family::V4);
        let res = fwd.step(&mut bdd, fx.a, None, v4);
        match &res.transitions[0].outcomes[0] {
            Outcome::Hop { packets, .. } => {
                let sample = netmodel::header::sample_packet(&bdd, *packets).unwrap();
                assert_eq!(sample.dst, target);
            }
            o => panic!("expected hop, got {o:?}"),
        }
        // `matched` records the pre-rewrite exercised set.
        assert!(bdd.equal(res.transitions[0].matched, v4));
    }

    #[test]
    fn ingress_scoped_rules_need_matching_ingress() {
        use netmodel::MatchFields;
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let h1 = t.add_iface(a, "h1", IfaceKind::Host);
        let _h2 = t.add_iface(a, "h2", IfaceKind::Host);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule {
                matches: MatchFields {
                    in_iface: Some(h1),
                    ..MatchFields::default()
                },
                action: Action::Drop,
                class: RouteClass::Other,
            },
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let full = bdd.full();
        // Arriving on h1: dropped.
        let r1 = fwd.step(&mut bdd, a, Some(h1), full);
        assert_eq!(r1.transitions.len(), 1);
        // Arriving on h2 (or unknown): rule does not apply.
        let r2 = fwd.step(&mut bdd, a, Some(IfaceId(1)), full);
        assert!(r2.transitions.is_empty());
        assert!(r2.unmatched.is_true());
        let r3 = fwd.step(&mut bdd, a, None, full);
        assert!(r3.transitions.is_empty());
    }

    #[test]
    fn empty_input_exercises_nothing() {
        let fx = fixture(vec![Rule::forward(
            Prefix::v4_default(),
            vec![IfaceId(2)],
            RouteClass::StaticDefault,
        )]);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&fx.net, &mut bdd);
        let fwd = Forwarder::new(&fx.net, &ms);
        let empty = bdd.empty();
        let res = fwd.step(&mut bdd, fx.a, None, empty);
        assert!(res.transitions.is_empty());
        assert!(res.unmatched.is_false());
    }
}
