//! Differential tests against the `oracle` crate: random toy networks are
//! embedded into the real model, and the dataplane engines must agree
//! with the oracle's per-packet hop-by-hop walks —
//!
//! * `traceroute` on ECMP-free networks reproduces the oracle's unique
//!   walk exactly (hop sequence and outcome);
//! * `explore`'s symbolic path universe, sliced down to one concrete
//!   packet, is the same multiset of (rule sequence, terminal) as the
//!   oracle's depth-first ECMP walk enumeration.

use dataplane::forward::Forwarder;
use dataplane::paths::{explore, ExploreOpts, Terminal};
use dataplane::traceroute::{traceroute, TraceOutcome};
use netbdd::Bdd;
use netmodel::topology::DeviceId;
use netmodel::{Location, MatchSets, RuleId};
use oracle::embed::{embed_net, embed_packet};
use oracle::{ToyIfaceKind, ToyNet, ToyPrefix, ToyRule, ToySpace, WalkEnd};
use proptest::prelude::*;

const MAX_HOPS: usize = 12;

fn space() -> ToySpace {
    ToySpace::new(4, 2, 1)
}

/// One device's spec: the raw parent selector (device 0 ignores it) and
/// its rules as `(dst_len, raw_dst, iface_selector, drop)`.
type DeviceSpec = (u32, Vec<(u32, u32, u32, bool)>);

fn arb_device(max_rules: usize) -> impl Strategy<Value = DeviceSpec> {
    (
        any::<u32>(),
        prop::collection::vec(
            (0u32..=4, any::<u32>(), any::<u32>(), any::<bool>()),
            1..max_rules,
        ),
    )
}

fn prefix(raw: u32, len: u32) -> ToyPrefix {
    ToyPrefix::new(if len == 0 { 0 } else { raw & ((1 << len) - 1) }, len)
}

/// Build a random tree-shaped toy network: device 0 is the root, each
/// later device links to a random earlier one, and every device gets a
/// host interface. `ecmp` controls whether forward rules may carry
/// multiple legs (a bitmask over the device's interfaces) or exactly one.
fn build_net(specs: &[DeviceSpec], ecmp: bool) -> ToyNet {
    let mut net = ToyNet::new();
    let mut dev_ifaces: Vec<Vec<u32>> = Vec::new();
    for (d, (parent_raw, _)) in specs.iter().enumerate() {
        let dev = net.add_device();
        let host = net.add_iface(dev, ToyIfaceKind::Host);
        dev_ifaces.push(vec![host]);
        if d > 0 {
            let parent = (*parent_raw as usize) % d;
            let (pi, ci) = net.add_link(parent, dev);
            dev_ifaces[parent].push(pi);
            dev_ifaces[d].push(ci);
        }
    }
    for (d, (_, rules)) in specs.iter().enumerate() {
        for &(dst_len, raw_dst, iface_sel, drop) in rules {
            let action = if drop {
                oracle::ToyAction::Drop
            } else if ecmp {
                // Nonempty leg subset from the selector bits.
                let n = dev_ifaces[d].len() as u32;
                let mask = (iface_sel % ((1 << n) - 1)) + 1;
                let legs = dev_ifaces[d]
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &ifc)| ifc)
                    .collect();
                oracle::ToyAction::Forward(legs)
            } else {
                let pick = dev_ifaces[d][(iface_sel as usize) % dev_ifaces[d].len()];
                oracle::ToyAction::Forward(vec![pick])
            };
            net.add_rule(
                d,
                ToyRule {
                    dst: Some(prefix(raw_dst, dst_len)),
                    src: None,
                    proto: None,
                    action,
                },
            );
        }
    }
    net.finalize();
    net
}

/// A comparable fingerprint of how a path ended: discriminant plus the
/// interface (for delivery/exit) or the rule-sequence already pins the
/// rest.
fn end_key(end: &WalkEnd) -> (u8, u32) {
    match end {
        WalkEnd::Delivered { iface, .. } => (0, *iface),
        WalkEnd::Exited { iface, .. } => (1, *iface),
        WalkEnd::Dropped { .. } => (2, u32::MAX),
        WalkEnd::Unmatched { .. } => (3, u32::MAX),
        WalkEnd::HopLimit => (4, u32::MAX),
    }
}

fn terminal_key(t: &Terminal) -> (u8, u32) {
    match t {
        Terminal::Delivered { iface } => (0, iface.0),
        Terminal::Exited { iface } => (1, iface.0),
        Terminal::Dropped => (2, u32::MAX),
        Terminal::Unmatched => (3, u32::MAX),
        Terminal::Truncated => (4, u32::MAX),
    }
}

fn hops_to_ids(hops: &[(usize, usize)]) -> Vec<RuleId> {
    hops.iter()
        .map(|&(d, i)| RuleId {
            device: DeviceId(d as u32),
            index: i as u32,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concrete traceroute replays the oracle's unique walk on ECMP-free
    /// networks: same rule at every hop, same ending.
    #[test]
    fn traceroute_agrees_with_oracle_walk(
        specs in prop::collection::vec(arb_device(4), 1..4)
    ) {
        let s = space();
        let net = build_net(&specs, false);
        let real = embed_net(&s, &net);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&real, &mut bdd);
        for p in s.packets() {
            let walk = net.walk(&s, 0, p, MAX_HOPS);
            let res = traceroute(
                &mut bdd, &real, &ms,
                Location::device(DeviceId(0)),
                embed_packet(&s, p),
                MAX_HOPS,
            );
            let real_hops: Vec<RuleId> = res.hops.iter().map(|h| h.rule).collect();
            prop_assert_eq!(&real_hops, &hops_to_ids(&walk.hops), "packet {:#x}", p);
            let real_end = match res.outcome {
                TraceOutcome::Delivered { iface, .. } => (0u8, iface.0),
                TraceOutcome::Exited { iface, .. } => (1, iface.0),
                TraceOutcome::Dropped { .. } => (2, u32::MAX),
                TraceOutcome::Unmatched { .. } => (3, u32::MAX),
                TraceOutcome::HopLimit => (4, u32::MAX),
            };
            prop_assert_eq!(real_end, end_key(&walk.end), "packet {:#x}", p);
        }
    }

    /// The symbolic path universe, restricted to any one concrete packet,
    /// is exactly the oracle's set of ECMP walks for that packet.
    #[test]
    fn explore_agrees_with_oracle_walks(
        specs in prop::collection::vec(arb_device(3), 1..4)
    ) {
        let s = space();
        let net = build_net(&specs, true);
        let real = embed_net(&s, &net);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&real, &mut bdd);
        let fwd = Forwarder::new(&real, &ms);
        let full = bdd.full();
        let opts = ExploreOpts {
            max_hops: MAX_HOPS,
            emit_empty_paths: true,
            ..ExploreOpts::default()
        };
        let mut events: Vec<(Vec<RuleId>, (u8, u32), netbdd::Ref)> = Vec::new();
        explore(
            &mut bdd, &fwd,
            &[(Location::device(DeviceId(0)), full)],
            &opts,
            |_, ev| events.push((ev.rules.to_vec(), terminal_key(&ev.terminal), ev.final_set)),
        );
        for p in s.packets() {
            let pkt = embed_packet(&s, p);
            let mut symbolic: Vec<(Vec<RuleId>, (u8, u32))> = events
                .iter()
                .filter(|(_, _, set)| pkt.matches(&bdd, *set))
                .map(|(rules, term, _)| (rules.clone(), *term))
                .collect();
            let mut concrete: Vec<(Vec<RuleId>, (u8, u32))> = net
                .walks(&s, 0, p, MAX_HOPS)
                .iter()
                .map(|w| (hops_to_ids(&w.hops), end_key(&w.end)))
                .collect();
            symbolic.sort();
            concrete.sort();
            prop_assert_eq!(&symbolic, &concrete, "packet {:#x}", p);
        }
    }
}
