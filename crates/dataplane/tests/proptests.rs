//! Property tests tying the three engines together on randomly generated
//! chains: path enumeration must partition the injected packet space,
//! and the concrete traceroute must agree with the symbolic engines on
//! every packet's fate.

use netbdd::{Bdd, Ref};
use netmodel::addr::Prefix;
use netmodel::header::{self, Packet};
use netmodel::rule::{RouteClass, Rule};
use netmodel::topology::{DeviceId, IfaceId, IfaceKind, Role, Topology};
use netmodel::{Location, MatchSets, Network};
use proptest::prelude::*;

use dataplane::paths::{explore, ExploreOpts, Terminal};
use dataplane::{reach, traceroute, Forwarder, TraceOutcome};

/// A random forwarding chain: each device delivers one random prefix
/// locally and defaults the rest to the next device; the last device
/// null-routes its default.
#[derive(Clone, Debug)]
struct Chain {
    prefixes: Vec<Prefix>,
}

fn arb_chain() -> impl Strategy<Value = Chain> {
    prop::collection::vec((any::<u32>(), 4u8..=28), 1..5).prop_map(|ps| Chain {
        prefixes: ps.into_iter().map(|(a, l)| Prefix::v4(a, l)).collect(),
    })
}

fn build(chain: &Chain) -> (Network, Vec<DeviceId>, Vec<IfaceId>) {
    let n = chain.prefixes.len();
    let mut t = Topology::new();
    let devs: Vec<DeviceId> = (0..n)
        .map(|i| t.add_device(format!("d{i}"), Role::Other))
        .collect();
    let hosts: Vec<IfaceId> = devs
        .iter()
        .map(|&d| t.add_iface(d, "host", IfaceKind::Host))
        .collect();
    let mut links = Vec::new();
    for w in devs.windows(2) {
        links.push(t.add_link(w[0], w[1]));
    }
    let mut net = Network::new(t);
    for (i, &d) in devs.iter().enumerate() {
        net.add_rule(
            d,
            Rule::forward(chain.prefixes[i], vec![hosts[i]], RouteClass::HostSubnet),
        );
        if i + 1 < n {
            net.add_rule(
                d,
                Rule::forward(
                    Prefix::v4_default(),
                    vec![links[i].0],
                    RouteClass::StaticDefault,
                ),
            );
        } else {
            net.add_rule(
                d,
                Rule::null_route(Prefix::v4_default(), RouteClass::StaticDefault),
            );
        }
    }
    net.finalize();
    (net, devs, hosts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On an ECMP-free network the path universe *partitions* the
    /// injected packet space: terminal sets are pairwise disjoint and
    /// union back to the injection.
    #[test]
    fn path_terminals_partition_the_injection(chain in arb_chain()) {
        let (net, devs, _) = build(&chain);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let injected = header::family_is(&mut bdd, netmodel::Family::V4);
        let mut finals: Vec<Ref> = Vec::new();
        explore(
            &mut bdd,
            &fwd,
            &[(Location::device(devs[0]), injected)],
            &ExploreOpts { emit_empty_paths: true, ..ExploreOpts::default() },
            |_, ev| finals.push(ev.final_set),
        );
        for i in 0..finals.len() {
            for j in i + 1..finals.len() {
                prop_assert!(!bdd.intersects(finals[i], finals[j]));
            }
        }
        let union = bdd.or_all(finals.iter().copied());
        prop_assert!(bdd.equal(union, injected));
    }

    /// Every concrete packet's traceroute fate matches the symbolic
    /// path containing it.
    #[test]
    fn traceroute_agrees_with_path_enumeration(chain in arb_chain(), addr in any::<u32>()) {
        let (net, devs, _) = build(&chain);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let pkt = Packet::v4_to(addr);
        let injected = header::family_is(&mut bdd, netmodel::Family::V4);

        // Find the unique path whose final set contains the packet.
        let mut hit: Option<(Terminal, usize)> = None;
        explore(
            &mut bdd,
            &fwd,
            &[(Location::device(devs[0]), injected)],
            &ExploreOpts { emit_empty_paths: true, ..ExploreOpts::default() },
            |bdd, ev| {
                if pkt.matches(bdd, ev.final_set) {
                    assert!(hit.is_none(), "packet in two disjoint paths");
                    hit = Some((ev.terminal, ev.rules.len()));
                }
            },
        );
        let (terminal, rules_len) = hit.expect("every packet takes some path");

        let tr = traceroute(&mut bdd, &net, &ms, Location::device(devs[0]), pkt, 32);
        match (terminal, tr.outcome) {
            (Terminal::Delivered { iface }, TraceOutcome::Delivered { iface: ti, .. }) => {
                prop_assert_eq!(iface, ti);
                prop_assert_eq!(rules_len, tr.hops.len());
            }
            (Terminal::Dropped, TraceOutcome::Dropped { .. }) => {
                prop_assert_eq!(rules_len, tr.hops.len());
            }
            (Terminal::Unmatched, TraceOutcome::Unmatched { .. }) => {}
            (a, b) => prop_assert!(false, "disagree: path={a:?} trace={b:?}"),
        }
    }

    /// Fixpoint reachability delivers exactly the union of the delivered
    /// path terminals (the two symbolic engines agree).
    #[test]
    fn reach_agrees_with_path_enumeration(chain in arb_chain()) {
        let (net, devs, hosts) = build(&chain);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let injected = header::family_is(&mut bdd, netmodel::Family::V4);

        let mut delivered_paths = vec![Ref::FALSE; hosts.len()];
        explore(
            &mut bdd,
            &fwd,
            &[(Location::device(devs[0]), injected)],
            &ExploreOpts::default(),
            |bdd, ev| {
                if let Terminal::Delivered { iface } = ev.terminal {
                    let slot = hosts.iter().position(|&h| h == iface).unwrap();
                    delivered_paths[slot] = bdd.or(delivered_paths[slot], ev.final_set);
                }
            },
        );

        let res = reach(&mut bdd, &fwd, Location::device(devs[0]), injected, 32);
        for (i, &h) in hosts.iter().enumerate() {
            let via_reach = res.delivered_at(&mut bdd, h);
            prop_assert!(
                bdd.equal(via_reach, delivered_paths[i]),
                "delivery sets disagree at host {i}"
            );
        }
    }
}
