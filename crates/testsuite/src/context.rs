//! Shared context for running network tests with coverage tracking.

use netmodel::topology::{DeviceId, Role};
use netmodel::{IfaceId, MatchSets, Network, Prefix};
use yardstick::Tracker;

/// Ground-truth facts about a generated network that tests validate
/// against. Generators know these by construction; a production
/// deployment would derive them from intent/config sources.
#[derive(Clone, Debug, Default)]
pub struct NetworkInfo {
    /// ToRs with their hosted prefix and host-facing interface.
    pub tor_subnets: Vec<(DeviceId, Prefix, IfaceId)>,
    /// Per-device loopback prefixes (device, prefix).
    pub loopbacks: Vec<(DeviceId, Prefix)>,
    /// Point-to-point links with their assigned v4 and v6 prefixes.
    pub links: Vec<(IfaceId, IfaceId, Prefix, Prefix)>,
}

impl NetworkInfo {
    /// All internal destinations (host subnets + loopbacks) with their
    /// originating device — the input of InternalRouteCheck.
    pub fn internal_prefixes(&self) -> Vec<(DeviceId, Prefix)> {
        let mut out: Vec<(DeviceId, Prefix)> =
            self.tor_subnets.iter().map(|&(d, p, _)| (d, p)).collect();
        out.extend(self.loopbacks.iter().copied());
        out
    }
}

/// Everything a test needs: the network, its match sets, ground truth,
/// and the coverage tracker to report into.
pub struct TestContext<'n> {
    pub net: &'n Network,
    pub ms: &'n MatchSets,
    pub info: &'n NetworkInfo,
    pub tracker: Tracker,
}

impl<'n> TestContext<'n> {
    pub fn new(net: &'n Network, ms: &'n MatchSets, info: &'n NetworkInfo) -> TestContext<'n> {
        TestContext {
            net,
            ms,
            info,
            tracker: Tracker::new(),
        }
    }

    /// A context whose tracker ignores all marks (baseline timing runs).
    pub fn without_tracking(
        net: &'n Network,
        ms: &'n MatchSets,
        info: &'n NetworkInfo,
    ) -> TestContext<'n> {
        TestContext {
            net,
            ms,
            info,
            tracker: Tracker::disabled(),
        }
    }

    /// Ranking of roles from the bottom of the hierarchy up, used to
    /// decide what "northbound" means for a device.
    pub fn role_rank(role: Role) -> u8 {
        match role {
            Role::Tor => 0,
            Role::Aggregation => 1,
            Role::Spine => 2,
            Role::RegionalHub | Role::Border => 3,
            Role::Wan => 4,
            Role::Other => 0,
        }
    }
}

/// Outcome of one test run: a pass/fail verdict with details, plus how
/// many individual checks executed.
#[derive(Clone, Debug)]
pub struct TestReport {
    pub name: &'static str,
    pub checks: u64,
    pub failures: Vec<String>,
}

impl TestReport {
    pub fn new(name: &'static str) -> TestReport {
        TestReport {
            name,
            checks: 0,
            failures: Vec::new(),
        }
    }

    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn check(&mut self, ok: bool, failure: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(failure());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_checks_and_failures() {
        let mut r = TestReport::new("t");
        r.check(true, || unreachable!());
        r.check(false, || "boom".to_string());
        assert_eq!(r.checks, 2);
        assert!(!r.passed());
        assert_eq!(r.failures, vec!["boom".to_string()]);
    }

    #[test]
    fn role_ranks_are_ordered_bottom_up() {
        assert!(TestContext::role_rank(Role::Tor) < TestContext::role_rank(Role::Aggregation));
        assert!(TestContext::role_rank(Role::Aggregation) < TestContext::role_rank(Role::Spine));
        assert!(TestContext::role_rank(Role::Spine) < TestContext::role_rank(Role::RegionalHub));
        assert!(TestContext::role_rank(Role::RegionalHub) < TestContext::role_rank(Role::Wan));
    }

    #[test]
    fn internal_prefixes_concatenates_subnets_and_loopbacks() {
        let info = NetworkInfo {
            tor_subnets: vec![(DeviceId(0), "10.0.0.0/24".parse().unwrap(), IfaceId(0))],
            loopbacks: vec![(DeviceId(1), "172.16.0.1/32".parse().unwrap())],
            links: vec![],
        };
        let all = info.internal_prefixes();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, DeviceId(0));
        assert_eq!(all[1].0, DeviceId(1));
    }
}
