//! Shared context for running network tests with coverage tracking.

use netmodel::topology::{DeviceId, Role};
use netmodel::{IfaceId, MatchSets, Network, Prefix};
use yardstick::Tracker;

/// Ground-truth facts about a generated network that tests validate
/// against. Generators know these by construction; a production
/// deployment would derive them from intent/config sources.
#[derive(Clone, Debug, Default)]
pub struct NetworkInfo {
    /// ToRs with their hosted prefix and host-facing interface.
    pub tor_subnets: Vec<(DeviceId, Prefix, IfaceId)>,
    /// Per-device loopback prefixes (device, prefix).
    pub loopbacks: Vec<(DeviceId, Prefix)>,
    /// Point-to-point links with their assigned v4 and v6 prefixes.
    pub links: Vec<(IfaceId, IfaceId, Prefix, Prefix)>,
}

impl NetworkInfo {
    /// All internal destinations (host subnets + loopbacks) with their
    /// originating device — the input of InternalRouteCheck.
    pub fn internal_prefixes(&self) -> Vec<(DeviceId, Prefix)> {
        let mut out: Vec<(DeviceId, Prefix)> =
            self.tor_subnets.iter().map(|&(d, p, _)| (d, p)).collect();
        out.extend(self.loopbacks.iter().copied());
        out
    }
}

/// Everything a test needs: the network, its match sets, ground truth,
/// and the coverage tracker to report into.
pub struct TestContext<'n> {
    /// The network under test.
    pub net: &'n Network,
    /// Precomputed disjoint match sets for `net`.
    pub ms: &'n MatchSets,
    /// Ground truth (hosted prefixes, links, loopbacks).
    pub info: &'n NetworkInfo,
    /// The coverage tracker tests report into.
    pub tracker: Tracker,
}

impl<'n> TestContext<'n> {
    /// A context with coverage tracking enabled.
    pub fn new(net: &'n Network, ms: &'n MatchSets, info: &'n NetworkInfo) -> TestContext<'n> {
        TestContext {
            net,
            ms,
            info,
            tracker: Tracker::new(),
        }
    }

    /// A context whose tracker ignores all marks (baseline timing runs).
    pub fn without_tracking(
        net: &'n Network,
        ms: &'n MatchSets,
        info: &'n NetworkInfo,
    ) -> TestContext<'n> {
        TestContext {
            net,
            ms,
            info,
            tracker: Tracker::disabled(),
        }
    }

    /// Ranking of roles from the bottom of the hierarchy up, used to
    /// decide what "northbound" means for a device.
    pub fn role_rank(role: Role) -> u8 {
        match role {
            Role::Tor => 0,
            Role::Aggregation => 1,
            Role::Spine => 2,
            Role::RegionalHub | Role::Border => 3,
            Role::Wan => 4,
            Role::Other => 0,
        }
    }
}

/// Outcome of one test run: a pass/fail verdict with details, plus how
/// many individual checks executed.
#[derive(Clone, Debug)]
pub struct TestReport {
    /// The test's name (one of the taxonomy tests).
    pub name: &'static str,
    /// How many individual checks executed.
    pub checks: u64,
    /// Human-readable descriptions of every failed check.
    pub failures: Vec<String>,
}

impl TestReport {
    /// An empty report for the named test.
    pub fn new(name: &'static str) -> TestReport {
        TestReport {
            name,
            checks: 0,
            failures: Vec::new(),
        }
    }

    /// True when no check failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Record one check: count it, and log `failure()` when `ok` is false.
    pub fn check(&mut self, ok: bool, failure: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(failure());
        }
    }
}

/// Aggregated pass/fail verdicts of a whole suite run, grouped by test
/// name — the per-suite complement of [`TestReport`], used where the
/// *verdict* is the product (mutation kill matrices) rather than the
/// coverage trace.
///
/// Sharded runs produce one [`TestReport`] per job; feeding them all
/// through [`SuiteVerdict::record`] folds the jobs of each named test
/// back into one row, in first-recorded order (job order, which is
/// deterministic), so the aggregate is chunking-invariant.
#[derive(Clone, Debug, Default)]
pub struct SuiteVerdict {
    /// Per test name: total checks and the collected failure messages.
    entries: Vec<(&'static str, u64, Vec<String>)>,
}

impl SuiteVerdict {
    /// An empty verdict; fold reports in with [`SuiteVerdict::record`].
    pub fn new() -> SuiteVerdict {
        SuiteVerdict::default()
    }

    /// Fold one job's report into the verdict.
    pub fn record(&mut self, report: &TestReport) {
        match self.entries.iter_mut().find(|(n, _, _)| *n == report.name) {
            Some((_, checks, failures)) => {
                *checks += report.checks;
                failures.extend(report.failures.iter().cloned());
            }
            None => self
                .entries
                .push((report.name, report.checks, report.failures.clone())),
        }
    }

    /// Whether every recorded check passed.
    pub fn passed(&self) -> bool {
        self.entries.iter().all(|(_, _, f)| f.is_empty())
    }

    /// Names of tests with at least one failing check, in record order.
    pub fn failed_tests(&self) -> Vec<&'static str> {
        self.entries
            .iter()
            .filter(|(_, _, f)| !f.is_empty())
            .map(|(n, _, _)| *n)
            .collect()
    }

    /// Per-test rows: `(name, checks, failure count)`, in record order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, u64, usize)> + '_ {
        self.entries.iter().map(|(n, c, f)| (*n, *c, f.len()))
    }

    /// Total number of failing checks across all tests.
    pub fn failure_count(&self) -> usize {
        self.entries.iter().map(|(_, _, f)| f.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_checks_and_failures() {
        let mut r = TestReport::new("t");
        r.check(true, || unreachable!());
        r.check(false, || "boom".to_string());
        assert_eq!(r.checks, 2);
        assert!(!r.passed());
        assert_eq!(r.failures, vec!["boom".to_string()]);
    }

    #[test]
    fn role_ranks_are_ordered_bottom_up() {
        assert!(TestContext::role_rank(Role::Tor) < TestContext::role_rank(Role::Aggregation));
        assert!(TestContext::role_rank(Role::Aggregation) < TestContext::role_rank(Role::Spine));
        assert!(TestContext::role_rank(Role::Spine) < TestContext::role_rank(Role::RegionalHub));
        assert!(TestContext::role_rank(Role::RegionalHub) < TestContext::role_rank(Role::Wan));
    }

    #[test]
    fn internal_prefixes_concatenates_subnets_and_loopbacks() {
        let info = NetworkInfo {
            tor_subnets: vec![(DeviceId(0), "10.0.0.0/24".parse().unwrap(), IfaceId(0))],
            loopbacks: vec![(DeviceId(1), "172.16.0.1/32".parse().unwrap())],
            links: vec![],
        };
        let all = info.internal_prefixes();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, DeviceId(0));
        assert_eq!(all[1].0, DeviceId(1));
    }
}
