//! ACL tests — the port-blocking rows of the Figure 2 taxonomy.
//!
//! * [`acl_entry_check`] is the state-inspection flavour: "the access
//!   control list on router R must have an entry that blocks packets to
//!   port P" — it finds the deny entry and reports it via `markRule`.
//! * [`acl_behavior_check`] is the local symbolic flavour: "router R
//!   must drop all packets to port P" — it injects the full set of
//!   matching packets and verifies none survive, reporting the injected
//!   set via `markPacket`.

use netbdd::Bdd;
use netmodel::header;
use netmodel::topology::DeviceId;
use netmodel::Location;

use dataplane::{Forwarder, Outcome};

use crate::context::{TestContext, TestReport};

/// State inspection: each listed device has a deny entry covering
/// destination port `port` (any protocol or a protocol-qualified rule).
pub fn acl_entry_check(
    _bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    devices: &[DeviceId],
    port: u16,
) -> TestReport {
    let mut report = TestReport::new("AclEntryCheck");
    for &device in devices {
        let entry = ctx.net.device_rule_ids(device).find(|&id| {
            let r = ctx.net.rule(id);
            r.action.is_drop()
                && r.matches
                    .dport
                    .map(|(lo, hi)| lo <= port && port <= hi)
                    .unwrap_or(false)
        });
        match entry {
            Some(id) => {
                ctx.tracker.mark_rule(id);
                report.check(true, || unreachable!());
            }
            None => report.check(false, || {
                format!(
                    "{}: no ACL entry blocking port {port}",
                    ctx.net.topology().device(device).name
                )
            }),
        }
    }
    report
}

/// Local symbolic: each listed device drops *all* packets to `port`
/// (TCP), regardless of destination.
pub fn acl_behavior_check(
    bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    devices: &[DeviceId],
    port: u16,
) -> TestReport {
    let mut report = TestReport::new("AclBehaviorCheck");
    let fwd = Forwarder::new(ctx.net, ctx.ms);
    for &device in devices {
        let blocked = {
            let tcp = header::proto_is(bdd, 6);
            let p = header::dport_in(bdd, port, port);
            bdd.and(tcp, p)
        };
        ctx.tracker
            .mark_packet(bdd, Location::device(device), blocked);
        let step = fwd.step(bdd, device, None, blocked);
        // Every matched subset must be dropped; nothing may be forwarded.
        let mut leaked = bdd.empty();
        for t in &step.transitions {
            for o in &t.outcomes {
                if !matches!(o, Outcome::Dropped { .. }) {
                    leaked = bdd.or(leaked, o.packets());
                }
            }
        }
        report.check(leaked.is_false(), || {
            let sample = header::sample_packet(bdd, leaked)
                .map(|p| format!("{p:?}"))
                .unwrap_or_default();
            format!(
                "{}: port-{port} traffic leaks past the ACL, e.g. {sample}",
                ctx.net.topology().device(device).name
            )
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::NetworkInfo;
    use netmodel::MatchSets;
    use topogen::acl::{install_acl, AclEntry};
    use topogen::{fattree, FatTreeParams};

    fn guarded_fattree() -> (topogen::FatTree, Vec<DeviceId>) {
        let mut ft = fattree(FatTreeParams::paper(4));
        let guards: Vec<DeviceId> = ft.cores.clone();
        for &c in &guards {
            install_acl(&mut ft.net, c, &[AclEntry::block_tcp_port(23)]);
        }
        (ft, guards)
    }

    #[test]
    fn entry_check_finds_installed_acls() {
        let (ft, guards) = guarded_fattree();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = acl_entry_check(&mut bdd, &mut ctx, &guards, 23);
        assert!(report.passed());
        assert_eq!(ctx.tracker.trace().rules.len(), guards.len());
    }

    #[test]
    fn entry_check_fails_where_no_acl_exists() {
        let (ft, _) = guarded_fattree();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let (tor, _, _) = ft.tors[0];
        let report = acl_entry_check(&mut bdd, &mut ctx, &[tor], 23);
        assert!(!report.passed());
        assert!(report.failures[0].contains("no ACL entry"));
    }

    #[test]
    fn behavior_check_verifies_the_drop_semantically() {
        let (ft, guards) = guarded_fattree();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = acl_behavior_check(&mut bdd, &mut ctx, &guards, 23);
        assert!(report.passed(), "{:?}", report.failures.first());
        // Packet marks exist at every guarded device.
        assert_eq!(ctx.tracker.trace().packets.devices().len(), guards.len());
    }

    #[test]
    fn behavior_check_catches_a_leak() {
        // ToRs have no ACL: port-23 traffic to a remote prefix leaks.
        let (ft, _) = guarded_fattree();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let (tor, _, _) = ft.tors[0];
        let report = acl_behavior_check(&mut bdd, &mut ctx, &[tor], 23);
        assert!(!report.passed());
        assert!(report.failures[0].contains("leaks past the ACL"));
    }

    #[test]
    fn acl_coverage_flows_into_metrics() {
        use yardstick::{Aggregator, Analyzer};
        let (ft, guards) = guarded_fattree();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        acl_entry_check(&mut bdd, &mut ctx, &guards, 23);
        let tracker = std::mem::take(&mut ctx.tracker);
        let trace = tracker.into_trace();
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        // Exactly the ACL rules (class Other, drop) are covered.
        let acl_cov = a
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, r| r.action.is_drop())
            .unwrap();
        assert_eq!(acl_cov, 1.0);
        let other_cov = a
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, r| !r.action.is_drop())
            .unwrap();
        assert_eq!(other_cov, 0.0);
    }
}
