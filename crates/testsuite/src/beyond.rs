//! Beyond the paper: the two tests §7.3 leaves as open work.
//!
//! * The engineers "have yet to define a test for wide-area routes. The
//!   challenge is that there is not yet any specification of the routes
//!   to expect from the wide-area network." In this reproduction the
//!   generator *is* the specification, so [`wan_route_check`] closes
//!   that gap: every upper-tier router carries every expected WAN prefix
//!   and forwards it along shortest paths towards the WAN routers.
//! * "We discovered that host-facing interfaces are not being tested,
//!   and as a result, will be developing another new test for these
//!   interfaces soon." [`host_port_check`] is that test: each ToR host
//!   port has the forwarding rule for its subnet slice.

use std::collections::VecDeque;

use netbdd::Bdd;
use netmodel::header;
use netmodel::topology::{DeviceId, Role, Topology};
use netmodel::{IfaceId, Location, Prefix};

use crate::context::{TestContext, TestReport};

/// Ground truth for [`wan_route_check`]: the prefixes the WAN advertises
/// and the WAN routers they enter through.
#[derive(Clone, Debug, Default)]
pub struct WanSpec {
    /// The wide-area prefixes the WAN advertises.
    pub prefixes: Vec<Prefix>,
    /// The WAN routers those prefixes enter through.
    pub wan_routers: Vec<DeviceId>,
}

/// Multi-source BFS distances over the subgraph of devices for which
/// `member` holds.
fn subgraph_distances(
    topo: &Topology,
    sources: &[DeviceId],
    member: impl Fn(DeviceId) -> bool,
) -> Vec<u32> {
    let mut dist = vec![u32::MAX; topo.device_count()];
    let mut q = VecDeque::new();
    for &s in sources {
        if dist[s.0 as usize] == u32::MAX {
            dist[s.0 as usize] = 0;
            q.push_back(s);
        }
    }
    while let Some(v) = q.pop_front() {
        let dv = dist[v.0 as usize];
        for (_i, u) in topo.neighbors(v) {
            if dist[u.0 as usize] == u32::MAX && member(u) {
                dist[u.0 as usize] = dv + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// WanRouteCheck (beyond §7.3): a local symbolic contract check for
/// wide-area routes. Every router whose role passes `expected` must
/// carry each WAN prefix and forward it to the full set of
/// shortest-path neighbors towards the WAN routers (staying inside the
/// expected tier set, mirroring the route-leak policy).
pub fn wan_route_check(
    bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    spec: &WanSpec,
    expected: impl Fn(Role) -> bool,
) -> TestReport {
    let mut report = TestReport::new("WanRouteCheck");
    let topo = ctx.net.topology();
    let member = |d: DeviceId| expected(topo.device(d).role) || spec.wan_routers.contains(&d);
    let dist = subgraph_distances(topo, &spec.wan_routers, member);
    let checked: Vec<DeviceId> = topo
        .devices()
        .filter(|&(v, dev)| {
            expected(dev.role) && !spec.wan_routers.contains(&v) && dist[v.0 as usize] != u32::MAX
        })
        .map(|(v, _)| v)
        .collect();
    for &prefix in &spec.prefixes {
        // At the WAN routers themselves the prefix must deliver out an
        // external interface (they are where the route enters).
        for &wan in &spec.wan_routers {
            let name = &topo.device(wan).name;
            let found = ctx
                .net
                .device_rule_ids(wan)
                .find(|&id| ctx.net.rule(id).matches.dst == Some(prefix));
            match found {
                Some(id) => {
                    ctx.tracker.mark_rule(id);
                    let rule = ctx.net.rule(id);
                    let ok = rule
                        .action
                        .out_ifaces()
                        .iter()
                        .any(|&i| topo.iface(i).kind == netmodel::IfaceKind::External);
                    report.check(ok, || {
                        format!("{name}: WAN prefix {prefix} does not exit externally")
                    });
                }
                None => report.check(false, || format!("{name}: missing WAN route {prefix}")),
            }
        }
        for &device in &checked {
            let name = &topo.device(device).name;
            let d = dist[device.0 as usize];
            // The local symbolic analysis of this prefix at this device.
            let packets = header::dst_in(bdd, &prefix);
            ctx.tracker
                .mark_packet(bdd, Location::device(device), packets);

            let rule = ctx
                .net
                .device_rule_ids(device)
                .map(|id| ctx.net.rule(id))
                .find(|r| r.matches.dst == Some(prefix));
            let Some(rule) = rule else {
                report.check(false, || format!("{name}: missing WAN route {prefix}"));
                continue;
            };
            let mut expected_outs: Vec<IfaceId> = topo
                .neighbors(device)
                .into_iter()
                .filter(|&(_, n)| dist[n.0 as usize] == d.wrapping_sub(1))
                .map(|(i, _)| i)
                .collect();
            expected_outs.sort();
            let mut got: Vec<IfaceId> = rule.action.out_ifaces().to_vec();
            got.sort();
            report.check(got == expected_outs, || {
                format!(
                    "{name}: WAN prefix {prefix} forwarded via {:?}, expected the \
                     shortest-path set {:?} towards the WAN",
                    got, expected_outs
                )
            });
        }
    }
    report
}

/// HostPortCheck (beyond §7.3): every ToR host-facing port carries the
/// forwarding rule for its subnet slice, pointing out that port. A
/// state-inspection test, reported via `markRule`.
///
/// `slices` is the ground truth: `(ToR, port, slice prefix)`.
pub fn host_port_check(
    _bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    slices: &[(DeviceId, IfaceId, Prefix)],
) -> TestReport {
    let mut report = TestReport::new("HostPortCheck");
    for &(device, port, slice) in slices {
        let name = &ctx.net.topology().device(device).name;
        let found = ctx
            .net
            .device_rule_ids(device)
            .find(|&id| ctx.net.rule(id).matches.dst == Some(slice));
        match found {
            Some(id) => {
                ctx.tracker.mark_rule(id);
                let rule = ctx.net.rule(id);
                report.check(rule.action.out_ifaces() == [port], || {
                    format!(
                        "{name}: slice {slice} does not deliver out port {:?}",
                        ctx.net.topology().iface(port).name
                    )
                });
            }
            None => report.check(false, || format!("{name}: missing slice route {slice}")),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::NetworkInfo;
    use netmodel::MatchSets;
    use topogen::{regional, RegionalParams};
    use yardstick::{Aggregator, Analyzer, Tracker};

    fn setup() -> (topogen::Regional, Bdd, MatchSets) {
        let r = regional(RegionalParams::default());
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        (r, bdd, ms)
    }

    fn wan_spec(r: &topogen::Regional) -> WanSpec {
        WanSpec {
            prefixes: r.wan_prefixes.clone(),
            wan_routers: r.wans.clone(),
        }
    }

    fn upper(role: Role) -> bool {
        matches!(role, Role::Spine | Role::RegionalHub | Role::Wan)
    }

    #[test]
    fn wan_route_check_passes_on_healthy_regional() {
        let (r, mut bdd, ms) = setup();
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = wan_route_check(&mut bdd, &mut ctx, &wan_spec(&r), upper);
        assert!(
            report.passed(),
            "{:?}",
            &report.failures[..report.failures.len().min(3)]
        );
        // Marks exactly at spines and hubs.
        let marked = ctx.tracker.trace().packets.devices();
        assert!(marked
            .iter()
            .all(|d| r.spines.contains(d) || r.hubs.contains(d)));
        assert_eq!(marked.len(), r.spines.len() + r.hubs.len());
    }

    #[test]
    fn wan_route_check_detects_a_missing_route() {
        let (mut r, _, _) = setup();
        topogen::faults::remove_route(&mut r.net, r.spines[0], r.wan_prefixes[0]);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = wan_route_check(&mut bdd, &mut ctx, &wan_spec(&r), upper);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("missing WAN route"));
    }

    #[test]
    fn host_port_check_passes_and_covers_ports() {
        let (r, mut bdd, ms) = setup();
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = host_port_check(&mut bdd, &mut ctx, &r.host_port_slices);
        assert!(report.passed(), "{:?}", report.failures.first());
        assert_eq!(report.checks as usize, r.host_port_slices.len());
        assert_eq!(ctx.tracker.trace().rules.len(), r.host_port_slices.len());
    }

    #[test]
    fn host_port_check_detects_missing_slice() {
        let (mut r, _, _) = setup();
        let &(d, _, slice) = &r.host_port_slices[0];
        topogen::faults::remove_route(&mut r.net, d, slice);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = host_port_check(&mut bdd, &mut ctx, &r.host_port_slices);
        assert_eq!(report.failures.len(), 1);
    }

    /// The paper's arc, completed: with the two future-work tests added,
    /// the WAN-route gap and the host-interface gap both close.
    #[test]
    fn beyond_paper_suite_closes_the_remaining_gaps() {
        let (r, mut bdd, ms) = setup();
        let info = bench_info(&r);
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        // Paper-final suite...
        assert!(crate::default_route_check(&mut bdd, &mut ctx, |_| true).passed());
        assert!(crate::agg_can_reach_tor_loopback(&mut bdd, &mut ctx).passed());
        assert!(crate::internal_route_check(&mut bdd, &mut ctx).passed());
        assert!(crate::connected_route_check(&mut bdd, &mut ctx).passed());
        // ...plus the two new ones.
        assert!(wan_route_check(&mut bdd, &mut ctx, &wan_spec(&r), upper).passed());
        assert!(host_port_check(&mut bdd, &mut ctx, &r.host_port_slices).passed());

        let tracker: Tracker = std::mem::take(&mut ctx.tracker);
        let trace = tracker.into_trace();
        let a = Analyzer::new(&r.net, &ms, &trace, &mut bdd);
        let wan_cov = a
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, rl| {
                rl.class == netmodel::RouteClass::Wan
            })
            .unwrap();
        assert_eq!(wan_cov, 1.0, "WAN routes now fully covered");
        let tor_ifaces = a
            .aggregate_out_ifaces(&mut bdd, Aggregator::Fractional, |_, f| {
                r.net.topology().device(f.device).role == Role::Tor
            })
            .unwrap();
        assert_eq!(tor_ifaces, 1.0, "host-facing ports now covered");
        // Overall rule coverage approaches 1 (only self-routes linger).
        let total = a
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
            .unwrap();
        assert!(total > 0.85, "got {total}");
    }

    /// Duplicate of bench::regional_info to avoid a circular dev-dep.
    fn bench_info(r: &topogen::Regional) -> NetworkInfo {
        NetworkInfo {
            tor_subnets: r.tors.clone(),
            loopbacks: (0..r.net.topology().device_count())
                .map(|d| (DeviceId(d as u32), topogen::addressing::loopback(d as u32)))
                .collect(),
            links: r
                .links
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (p4, _, _) = topogen::addressing::p2p_v4(i as u32);
                    let (p6, _, _) = topogen::addressing::p2p_v6(i as u32);
                    (a, b, p4, p6)
                })
                .collect(),
        }
    }
}
