//! Local symbolic tests: they validate one device's forwarding behaviour
//! at a time and report coverage via `markPacket` at that device (§5.1).
//!
//! All three tests here instantiate the RCDC idea the paper cites:
//! decompose an end-to-end invariant into per-device forwarding
//! contracts. For a prefix originated at device `v`, the contract at a
//! device `d` hops away is "forward the prefix to all neighbors at
//! distance `d − 1`" — on this network design, internal destinations are
//! routed along the full set of topological shortest paths (§7.3).

use std::collections::VecDeque;

use netbdd::Bdd;
use netmodel::header;
use netmodel::topology::{DeviceId, Role, Topology};
use netmodel::{IfaceId, Location, Prefix};

use crate::context::{TestContext, TestReport};

/// BFS hop distances from `from` over the raw topology.
fn hop_distances(topo: &Topology, from: DeviceId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; topo.device_count()];
    let mut q = VecDeque::new();
    dist[from.0 as usize] = 0;
    q.push_back(from);
    while let Some(v) = q.pop_front() {
        let dv = dist[v.0 as usize];
        for (_i, u) in topo.neighbors(v) {
            if dist[u.0 as usize] == u32::MAX {
                dist[u.0 as usize] = dv + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Check one device's local contract for one prefix: its FIB rule for
/// `prefix` forwards to exactly the distance-reducing neighbor links.
/// Marks the prefix's packet set at the device either way (the state was
/// symbolically analysed even if the assertion fails).
fn check_contract(
    bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    report: &mut TestReport,
    device: DeviceId,
    prefix: Prefix,
    dist: &[u32],
) {
    let topo = ctx.net.topology();
    let name = &topo.device(device).name;
    let d = dist[device.0 as usize];
    debug_assert!(d > 0, "contracts are for non-originators");
    let packets = header::dst_in(bdd, &prefix);
    ctx.tracker
        .mark_packet(bdd, Location::device(device), packets);

    let rule = ctx
        .net
        .device_rule_ids(device)
        .map(|id| ctx.net.rule(id))
        .find(|r| r.matches.dst == Some(prefix));
    let Some(rule) = rule else {
        report.check(false, || format!("{name}: no route for {prefix}"));
        return;
    };
    let mut expected: Vec<IfaceId> = topo
        .neighbors(device)
        .into_iter()
        .filter(|&(_, n)| dist[n.0 as usize] == d - 1)
        .map(|(i, _)| i)
        .collect();
    expected.sort();
    let mut got: Vec<IfaceId> = rule.action.out_ifaces().to_vec();
    got.sort();
    report.check(got == expected, || {
        format!(
            "{name}: {prefix} forwarded via {:?}, contract requires the full \
             shortest-path set {:?}",
            got, expected
        )
    });
}

/// InternalRouteCheck (§7.3): every prefix originating inside the region
/// (host subnets and loopbacks) is forwarded, at every router, through
/// and only through the full set of topological shortest paths.
pub fn internal_route_check(bdd: &mut Bdd, ctx: &mut TestContext<'_>) -> TestReport {
    let mut report = TestReport::new("InternalRouteCheck");
    let prefixes = ctx.info.internal_prefixes();
    contract_sweep(bdd, ctx, &mut report, &prefixes, |_role| true);
    report
}

/// ToRContract (§8): the RCDC-style local contract check restricted to
/// ToR hosted prefixes — the decomposed form of ToRReachability.
pub fn tor_contract(bdd: &mut Bdd, ctx: &mut TestContext<'_>) -> TestReport {
    let mut report = TestReport::new("ToRContract");
    let prefixes: Vec<(DeviceId, Prefix)> = ctx
        .info
        .tor_subnets
        .iter()
        .map(|&(d, p, _)| (d, p))
        .collect();
    contract_sweep(bdd, ctx, &mut report, &prefixes, |_role| true);
    report
}

/// AggCanReachTorLoopback (§7.2): aggregation routers correctly forward
/// packets destined to ToR loopbacks — the original (narrow) test from
/// the case study's starting test suite. Only aggregation routers are
/// checked, only against ToR loopbacks.
pub fn agg_can_reach_tor_loopback(bdd: &mut Bdd, ctx: &mut TestContext<'_>) -> TestReport {
    let mut report = TestReport::new("AggCanReachTorLoopback");
    let tor_devices: Vec<DeviceId> = ctx.info.tor_subnets.iter().map(|&(d, _, _)| d).collect();
    let prefixes: Vec<(DeviceId, Prefix)> = ctx
        .info
        .loopbacks
        .iter()
        .filter(|(d, _)| tor_devices.contains(d))
        .copied()
        .collect();
    contract_sweep(bdd, ctx, &mut report, &prefixes, |role| {
        role == Role::Aggregation
    });
    report
}

/// Run contract checks for every (originator, prefix) pair at every
/// reachable device whose role passes the filter.
fn contract_sweep(
    bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    report: &mut TestReport,
    prefixes: &[(DeviceId, Prefix)],
    check_role: impl Fn(Role) -> bool,
) {
    for &(origin, prefix) in prefixes {
        check_contract_prefix(bdd, ctx, report, origin, prefix, &check_role);
    }
}

/// Contract checks for one `(originator, prefix)` pair at every reachable
/// device whose role passes the filter — the shardable unit.
pub(crate) fn check_contract_prefix(
    bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    report: &mut TestReport,
    origin: DeviceId,
    prefix: Prefix,
    check_role: impl Fn(Role) -> bool,
) {
    let topo = ctx.net.topology();
    let dist = hop_distances(topo, origin);
    let devices: Vec<DeviceId> = topo
        .devices()
        .filter(|&(v, dev)| v != origin && dist[v.0 as usize] != u32::MAX && check_role(dev.role))
        .map(|(v, _)| v)
        .collect();
    for v in devices {
        check_contract(bdd, ctx, report, v, prefix, &dist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::NetworkInfo;
    use netmodel::MatchSets;
    use topogen::{addressing, fattree, regional, FatTreeParams, RegionalParams};

    fn regional_info(r: &topogen::Regional) -> NetworkInfo {
        NetworkInfo {
            tor_subnets: r.tors.clone(),
            loopbacks: (0..r.net.topology().device_count())
                .map(|d| (DeviceId(d as u32), addressing::loopback(d as u32)))
                .collect(),
            links: vec![],
        }
    }

    #[test]
    fn internal_route_check_passes_on_regional() {
        let r = regional(RegionalParams::default());
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let info = regional_info(&r);
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = internal_route_check(&mut bdd, &mut ctx);
        assert!(
            report.passed(),
            "{:?}",
            &report.failures[..report.failures.len().min(5)]
        );
        assert!(report.checks > 0);
        // Every device got packet marks (internal prefixes reach all).
        assert_eq!(
            ctx.tracker.trace().packets.devices().len(),
            r.net.topology().device_count()
        );
    }

    #[test]
    fn internal_route_check_catches_partial_nexthop_sets() {
        // Null-route one internal prefix at one spine: the contract
        // breaks both at the spine (wrong action) — and the check sees a
        // forwarding set that differs from the shortest-path set.
        let mut r = regional(RegionalParams::default());
        let (_, p, _) = r.tors[0];
        let spine = r.spines[0];
        topogen::faults::null_route(&mut r.net, spine, p);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let info = regional_info(&r);
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = internal_route_check(&mut bdd, &mut ctx);
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("shortest-path set")));
    }

    #[test]
    fn tor_contract_passes_on_fattree() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = tor_contract(&mut bdd, &mut ctx);
        assert!(
            report.passed(),
            "{:?}",
            &report.failures[..report.failures.len().min(5)]
        );
        // 8 prefixes × 19 other devices.
        assert_eq!(report.checks, 8 * 19);
    }

    #[test]
    fn agg_loopback_check_only_touches_aggs() {
        let r = regional(RegionalParams::default());
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let info = regional_info(&r);
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = agg_can_reach_tor_loopback(&mut bdd, &mut ctx);
        assert!(
            report.passed(),
            "{:?}",
            &report.failures[..report.failures.len().min(5)]
        );
        // Marks exist exactly at aggregation routers.
        let marked = ctx.tracker.trace().packets.devices();
        assert_eq!(marked.len(), r.aggs.len());
        assert!(marked.iter().all(|d| r.aggs.contains(d)));
    }

    #[test]
    fn missing_route_is_reported() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (_, p, _) = ft.tors[3];
        let agg = ft.aggs[0];
        topogen::faults::remove_route(&mut ft.net, agg, p);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = tor_contract(&mut bdd, &mut ctx);
        assert!(report.failures.iter().any(|f| f.contains("no route")));
    }

    #[test]
    fn disabled_tracking_records_nothing_but_checks_run() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let mut ctx = TestContext::without_tracking(&ft.net, &ms, &info);
        let report = tor_contract(&mut bdd, &mut ctx);
        assert!(report.passed());
        assert!(ctx.tracker.trace().is_empty());
    }
}
