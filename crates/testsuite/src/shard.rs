//! Suite sharding: the named tests decomposed into independent jobs.
//!
//! Every test in this crate is a loop over independent units — devices,
//! links, `(origin, prefix)` contracts, source ToRs, ToR pairs. A
//! [`SuiteJob`] names one such unit, and [`run_job`] executes it against
//! any manager/tracker, so a whole suite can run sequentially (same
//! marks, same checks as the monolithic test functions) or sharded
//! across threads via `yardstick::ParallelRunner` with bit-identical
//! coverage traces.
//!
//! Pingmesh jobs carry their own RNG seed, derived per pair from the
//! suite seed (see [`crate::e2e`]); that is what makes the concrete test
//! chunking-invariant.

use netbdd::Bdd;
use netmodel::topology::{DeviceId, Role};
use netmodel::{MatchSets, Network, Prefix};
use yardstick::Tracker;

use crate::acl::acl_entry_check;
use crate::context::{NetworkInfo, TestContext, TestReport};
use crate::e2e::{check_ping_pair, check_reachability_from, pair_seed};
use crate::inspection::{check_connected_link, check_default_route};
use crate::local::check_contract_prefix;

/// Which device roles a contract job checks at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoleFilter {
    /// Check at every device regardless of role.
    All,
    /// Check only at devices of this role.
    Only(Role),
}

impl RoleFilter {
    /// Whether a device of `role` is in scope for this filter.
    pub fn accepts(&self, role: Role) -> bool {
        match self {
            RoleFilter::All => true,
            RoleFilter::Only(r) => *r == role,
        }
    }
}

/// One independently executable unit of a test suite.
#[derive(Clone, Debug)]
pub enum SuiteJob {
    /// DefaultRouteCheck at one device.
    DefaultRoute {
        /// The device whose default route is inspected.
        device: DeviceId,
    },
    /// ConnectedRouteCheck for one link (index into `info.links`).
    ConnectedRoute {
        /// Index into `info.links`.
        link_index: usize,
    },
    /// An RCDC contract sweep for one `(originator, prefix)` pair.
    Contract {
        /// The device originating the prefix.
        origin: DeviceId,
        /// The originated prefix under contract.
        prefix: Prefix,
        /// Which device roles the sweep checks at.
        roles: RoleFilter,
    },
    /// ToRReachability from one source ToR (index into `tor_subnets`).
    Reachability {
        /// Index of the source ToR in `info.tor_subnets`.
        src_index: usize,
    },
    /// ToRPingmesh for one ordered ToR pair, with its derived seed.
    Pingmesh {
        /// Index of the source ToR in `info.tor_subnets`.
        src_index: usize,
        /// Index of the destination ToR in `info.tor_subnets`.
        dst_index: usize,
        /// Deterministic per-pair probe seed.
        seed: u64,
    },
    /// AclEntryCheck at one device: a deny entry for `port` must exist.
    AclEntry {
        /// The device whose ACL is inspected.
        device: DeviceId,
        /// The port the deny entry must cover.
        port: u16,
    },
    /// One test emitted by the coverage-guided generation loop
    /// (`yardstick::testgen`): a self-contained spec replayed via
    /// `run_spec`, so autogen suites shard exactly like hand-written
    /// ones (the mutation study's `--autogen` leg relies on this).
    Generated {
        /// The generated test's self-contained replayable spec.
        spec: yardstick::testgen::TestSpec,
    },
}

impl SuiteJob {
    /// The name of the test this job belongs to.
    pub fn test_name(&self) -> &'static str {
        match self {
            SuiteJob::DefaultRoute { .. } => "DefaultRouteCheck",
            SuiteJob::ConnectedRoute { .. } => "ConnectedRouteCheck",
            SuiteJob::Contract { .. } => "Contract",
            SuiteJob::Reachability { .. } => "ToRReachability",
            SuiteJob::Pingmesh { .. } => "ToRPingmesh",
            SuiteJob::AclEntry { .. } => "AclEntryCheck",
            SuiteJob::Generated { spec } => spec.test_name(),
        }
    }
}

/// One [`SuiteJob::AclEntry`] job per guarded device — the
/// state-inspection test that covers ACL deny entries (`markRule`),
/// which no behavioural §8 test exercises.
pub fn acl_entry_jobs(devices: &[DeviceId], port: u16) -> Vec<SuiteJob> {
    devices
        .iter()
        .map(|&device| SuiteJob::AclEntry { device, port })
        .collect()
}

/// The §8 fat-tree suite (DefaultRouteCheck + ToRContract +
/// ToRReachability + ToRPingmesh) as a flat job list. Running these jobs
/// in any partition produces the same coverage trace as calling the four
/// test functions in sequence.
pub fn fattree_suite_jobs(net: &Network, info: &NetworkInfo, seed: u64) -> Vec<SuiteJob> {
    let mut jobs = Vec::new();
    for (device, _) in net.topology().devices() {
        jobs.push(SuiteJob::DefaultRoute { device });
    }
    for &(origin, prefix, _) in &info.tor_subnets {
        jobs.push(SuiteJob::Contract {
            origin,
            prefix,
            roles: RoleFilter::All,
        });
    }
    for src_index in 0..info.tor_subnets.len() {
        jobs.push(SuiteJob::Reachability { src_index });
    }
    let n = info.tor_subnets.len();
    for src_index in 0..n {
        for dst_index in 0..n {
            if src_index != dst_index {
                jobs.push(SuiteJob::Pingmesh {
                    src_index,
                    dst_index,
                    seed: pair_seed(seed, src_index, dst_index),
                });
            }
        }
    }
    jobs
}

/// The §7 regional suite (DefaultRouteCheck + AggCanReachTorLoopback +
/// InternalRouteCheck + ConnectedRouteCheck) as a flat job list.
pub fn regional_suite_jobs(net: &Network, info: &NetworkInfo) -> Vec<SuiteJob> {
    let mut jobs = Vec::new();
    for (device, _) in net.topology().devices() {
        jobs.push(SuiteJob::DefaultRoute { device });
    }
    let tor_devices: Vec<DeviceId> = info.tor_subnets.iter().map(|&(d, _, _)| d).collect();
    for &(origin, prefix) in info
        .loopbacks
        .iter()
        .filter(|(d, _)| tor_devices.contains(d))
    {
        jobs.push(SuiteJob::Contract {
            origin,
            prefix,
            roles: RoleFilter::Only(Role::Aggregation),
        });
    }
    for (origin, prefix) in info.internal_prefixes() {
        jobs.push(SuiteJob::Contract {
            origin,
            prefix,
            roles: RoleFilter::All,
        });
    }
    for link_index in 0..info.links.len() {
        jobs.push(SuiteJob::ConnectedRoute { link_index });
    }
    jobs
}

/// Execute one job against the given manager and tracker. `ms` must have
/// been computed in `bdd` (workers compute their own).
pub fn run_job(
    bdd: &mut Bdd,
    net: &Network,
    ms: &MatchSets,
    info: &NetworkInfo,
    tracker: &mut Tracker,
    job: &SuiteJob,
) -> TestReport {
    // One span per job, named after the suite test it belongs to: the
    // span tree aggregates all jobs of a test into one node (count =
    // jobs, total = the test's wall-clock share on this thread).
    let _span = netobs::span(job.test_name());
    let mut ctx = TestContext {
        net,
        ms,
        info,
        tracker: std::mem::take(tracker),
    };
    let mut report = TestReport::new(job.test_name());
    match job {
        SuiteJob::DefaultRoute { device } => {
            check_default_route(&mut ctx, &mut report, *device);
        }
        SuiteJob::ConnectedRoute { link_index } => {
            check_connected_link(&mut ctx, &mut report, *link_index);
        }
        SuiteJob::Contract {
            origin,
            prefix,
            roles,
        } => {
            check_contract_prefix(bdd, &mut ctx, &mut report, *origin, *prefix, |role| {
                roles.accepts(role)
            });
        }
        SuiteJob::Reachability { src_index } => {
            check_reachability_from(bdd, &mut ctx, &mut report, *src_index);
        }
        SuiteJob::Pingmesh {
            src_index,
            dst_index,
            seed,
        } => {
            check_ping_pair(bdd, &mut ctx, &mut report, *src_index, *dst_index, *seed);
        }
        SuiteJob::AclEntry { device, port } => {
            report = acl_entry_check(bdd, &mut ctx, &[*device], *port);
        }
        SuiteJob::Generated { spec } => {
            let outcome =
                yardstick::testgen::run_spec(bdd, ctx.net, ctx.ms, &mut ctx.tracker, spec);
            report.check(outcome.is_ok(), || outcome.unwrap_err());
        }
    }
    *tracker = ctx.tracker;
    report
}

/// Run one job against a private tracker and return its *isolated*
/// coverage trace next to the report.
///
/// This is the suite-delta decomposition: a long-lived engine stores
/// each test's own trace so a `TestRemoved` delta can rebuild the
/// affected devices' coverage from the remaining tests' traces (union,
/// not subtraction — packet-set unions don't invert), and a `TestAdded`
/// delta only touches the devices the new trace marks. Merging every
/// job's isolated trace reproduces the suite trace bit-for-bit, because
/// [`run_job`] marks through the same tracker API either way.
pub fn run_job_isolated(
    bdd: &mut Bdd,
    net: &Network,
    ms: &MatchSets,
    info: &NetworkInfo,
    job: &SuiteJob,
) -> (TestReport, yardstick::CoverageTrace) {
    let mut tracker = Tracker::new();
    let report = run_job(bdd, net, ms, info, &mut tracker, job);
    (report, tracker.into_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e2e::{tor_pingmesh, tor_reachability};
    use crate::inspection::default_route_check;
    use crate::local::tor_contract;
    use topogen::{fattree, FatTreeParams};
    use yardstick::ParallelRunner;

    const SEED: u64 = 0xC0FFEE;

    fn setup() -> (topogen::FatTree, NetworkInfo) {
        let ft = fattree(FatTreeParams::paper(4));
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        (ft, info)
    }

    /// The monolithic §8 suite, as the fig8/fig9 benches run it.
    fn run_monolithic(
        bdd: &mut Bdd,
        net: &Network,
        info: &NetworkInfo,
    ) -> yardstick::CoverageTrace {
        let ms = MatchSets::compute(net, bdd);
        let mut ctx = TestContext::new(net, &ms, info);
        let r1 = default_route_check(bdd, &mut ctx, |_| true);
        let r2 = tor_contract(bdd, &mut ctx);
        let r3 = tor_reachability(bdd, &mut ctx);
        let r4 = tor_pingmesh(bdd, &mut ctx, SEED);
        for r in [&r1, &r2, &r3, &r4] {
            assert!(r.passed(), "{}: {:?}", r.name, &r.failures[..1]);
        }
        ctx.tracker.into_trace()
    }

    #[test]
    fn job_decomposition_matches_monolithic_suite() {
        let (ft, info) = setup();
        let mut bdd = Bdd::new();
        let mono = run_monolithic(&mut bdd, &ft.net, &info);

        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let jobs = fattree_suite_jobs(&ft.net, &info, SEED);
        let mut tracker = Tracker::new();
        for job in &jobs {
            let rep = run_job(&mut bdd, &ft.net, &ms, &info, &mut tracker, job);
            assert!(rep.passed(), "{}: {:?}", rep.name, &rep.failures[..1]);
        }
        let sharded = tracker.into_trace();

        assert_eq!(sharded.rules, mono.rules);
        assert_eq!(sharded.packets.len(), mono.packets.len());
        for (loc, set) in mono.packets.iter() {
            assert_eq!(sharded.packets.at(loc), set, "at {loc:?}");
        }
    }

    #[test]
    fn parallel_suite_trace_is_bit_identical() {
        let (ft, info) = setup();
        let mut bdd = Bdd::new();
        let mono = run_monolithic(&mut bdd, &ft.net, &info);

        let jobs = fattree_suite_jobs(&ft.net, &info, SEED);
        let net = &ft.net;
        let info_ref = &info;
        for threads in [2, 4] {
            let runner = ParallelRunner::new(threads);
            let (merged, reports) = runner.run(
                &mut bdd,
                &jobs,
                |local| MatchSets::compute(net, local),
                |local, ms, tracker, job| {
                    let rep = run_job(local, net, ms, info_ref, tracker, job);
                    assert!(rep.passed(), "{}: {:?}", rep.name, &rep.failures[..1]);
                },
            );
            assert_eq!(reports.len(), threads);
            assert_eq!(merged.rules, mono.rules);
            assert_eq!(merged.packets.len(), mono.packets.len());
            for (loc, set) in mono.packets.iter() {
                assert_eq!(merged.packets.at(loc), set, "{threads} threads at {loc:?}");
            }
        }
    }

    #[test]
    fn isolated_job_traces_union_to_the_suite_trace() {
        let (ft, info) = setup();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let jobs = fattree_suite_jobs(&ft.net, &info, SEED);

        // One shared tracker, as the batch path runs.
        let mut tracker = Tracker::new();
        for job in &jobs {
            run_job(&mut bdd, &ft.net, &ms, &info, &mut tracker, job);
        }
        let combined = tracker.into_trace();

        // Per-job isolation, then merge.
        let mut merged = yardstick::CoverageTrace::new();
        for job in &jobs {
            let (rep, trace) = run_job_isolated(&mut bdd, &ft.net, &ms, &info, job);
            assert!(rep.passed(), "{}: {:?}", rep.name, &rep.failures[..1]);
            merged.merge(&mut bdd, &trace);
        }

        assert_eq!(merged.rules, combined.rules);
        assert_eq!(merged.packets.len(), combined.packets.len());
        for (loc, set) in combined.packets.iter() {
            assert_eq!(merged.packets.at(loc), set, "at {loc:?}");
        }
    }

    #[test]
    fn pingmesh_pair_seeds_are_chunking_invariant() {
        let (ft, info) = setup();
        let jobs = fattree_suite_jobs(&ft.net, &info, SEED);
        let ping_jobs: Vec<_> = jobs
            .iter()
            .filter(|j| matches!(j, SuiteJob::Pingmesh { .. }))
            .cloned()
            .collect();
        assert_eq!(ping_jobs.len(), 8 * 7);

        // Running only the second half of the pairs must sample the same
        // packets for those pairs as running all of them.
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let run_subset = |bdd: &mut Bdd, subset: &[SuiteJob]| {
            let mut tracker = Tracker::new();
            for job in subset {
                run_job(bdd, &ft.net, &ms, &info, &mut tracker, job);
            }
            tracker.into_trace()
        };
        let half = run_subset(&mut bdd, &ping_jobs[28..]);
        let full = run_subset(&mut bdd, &ping_jobs);
        // Everything the half run marked is contained in the full run.
        for (loc, set) in half.packets.iter() {
            assert!(bdd.subset(set, full.packets.at(loc)));
        }
    }

    #[test]
    fn generated_acl_job_is_equivalent_to_acl_entry_check() {
        use topogen::acl::{install_acl, AclEntry};
        let mut ft = fattree(FatTreeParams::paper(4));
        let core = ft.cores[0];
        install_acl(&mut ft.net, core, &[AclEntry::block_tcp_port(23)]);
        let info = NetworkInfo::default();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let run = |bdd: &mut Bdd, job: &SuiteJob| {
            let mut tracker = Tracker::new();
            let rep = run_job(bdd, &ft.net, &ms, &info, &mut tracker, job);
            assert!(rep.passed(), "{}: {:?}", rep.name, &rep.failures[..1]);
            tracker.into_trace()
        };
        let hand = run(
            &mut bdd,
            &SuiteJob::AclEntry {
                device: core,
                port: 23,
            },
        );
        let generated = run(
            &mut bdd,
            &SuiteJob::Generated {
                spec: yardstick::testgen::TestSpec::AclEntry {
                    device: core,
                    port: 23,
                },
            },
        );
        // Same semantics, same marks: the generated flavour finds and
        // marks exactly the deny entry the hand-written check does.
        assert_eq!(generated.rules, hand.rules);
        assert!(!generated.rules.is_empty());
    }

    #[test]
    fn generated_jobs_replay_a_whole_autogen_suite() {
        use yardstick::testgen::{autogen, GenConfig};
        let (ft, info) = setup();
        let mut engine = yardstick::CoverageEngine::new(ft.net.clone(), 1);
        let report = autogen(
            &mut engine,
            &GenConfig {
                budget: 4096,
                ..GenConfig::default()
            },
        );
        assert!(report.converged);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let mut tracker = Tracker::new();
        for t in &report.tests {
            let job = SuiteJob::Generated {
                spec: t.spec.clone(),
            };
            let rep = run_job(&mut bdd, &ft.net, &ms, &info, &mut tracker, &job);
            assert!(rep.passed(), "{}: {:?}", rep.name, &rep.failures[..1]);
        }
        assert!(!tracker.trace().is_empty());
    }

    #[test]
    fn regional_jobs_cover_the_section7_suite() {
        use topogen::{addressing, regional, RegionalParams};
        let r = regional(RegionalParams::default());
        let info = NetworkInfo {
            tor_subnets: r.tors.clone(),
            loopbacks: (0..r.net.topology().device_count())
                .map(|d| (DeviceId(d as u32), addressing::loopback(d as u32)))
                .collect(),
            links: r
                .links
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (p4, _, _) = addressing::p2p_v4(i as u32);
                    let (p6, _, _) = addressing::p2p_v6(i as u32);
                    (a, b, p4, p6)
                })
                .collect(),
        };
        let jobs = regional_suite_jobs(&r.net, &info);
        let ndev = r.net.topology().device_count();
        assert!(jobs.len() > ndev + info.links.len());

        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let mut tracker = Tracker::new();
        for job in &jobs {
            let rep = run_job(&mut bdd, &r.net, &ms, &info, &mut tracker, job);
            assert!(rep.passed(), "{}: {:?}", rep.name, &rep.failures[..1]);
        }
        let trace = tracker.into_trace();
        // Inspection marks rules, contracts mark packets at every device.
        assert!(!trace.rules.is_empty());
        assert_eq!(trace.packets.devices().len(), ndev);
    }
}
