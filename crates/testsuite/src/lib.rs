//! # testsuite — network tests across the paper's taxonomy (Figure 2)
//!
//! The paper classifies network tests two ways: **state-inspection**
//! versus **behavioural**, and behavioural tests further by **local vs.
//! end-to-end** and **concrete vs. symbolic**. This crate implements the
//! named tests from the case study (§7) and the performance evaluation
//! (§8), one per taxonomy cell, each instrumented with Yardstick's
//! two-call coverage API:
//!
//! | test                    | kind                  | section |
//! |-------------------------|-----------------------|---------|
//! | DefaultRouteCheck       | state inspection      | §7.2/§8 |
//! | ConnectedRouteCheck     | state inspection      | §7.3    |
//! | AggCanReachTorLoopback  | local symbolic        | §7.2    |
//! | InternalRouteCheck      | local symbolic        | §7.3    |
//! | ToRContract (RCDC)      | local symbolic        | §8      |
//! | ToRReachability         | end-to-end symbolic   | §8      |
//! | ToRPingmesh             | end-to-end concrete   | §8      |
//! | AclEntryCheck           | state inspection      | Fig 2   |
//! | AclBehaviorCheck        | local symbolic        | Fig 2   |
//!
//! Every test runs against a [`TestContext`] whose tracker can be
//! enabled or disabled — which is exactly how the Figure-8 experiment
//! measures the overhead of coverage tracking.

#![deny(missing_docs)]

pub mod acl;
pub mod beyond;
pub mod context;
pub mod e2e;
pub mod inspection;
pub mod local;
pub mod shard;

pub use acl::{acl_behavior_check, acl_entry_check};
pub use beyond::{host_port_check, wan_route_check, WanSpec};
pub use context::{NetworkInfo, SuiteVerdict, TestContext, TestReport};
pub use e2e::{tor_pingmesh, tor_reachability};
pub use inspection::{connected_route_check, default_route_check};
pub use local::{agg_can_reach_tor_loopback, internal_route_check, tor_contract};
pub use shard::{
    acl_entry_jobs, fattree_suite_jobs, regional_suite_jobs, run_job, RoleFilter, SuiteJob,
};
