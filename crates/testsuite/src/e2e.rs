//! End-to-end behavioural tests: they trace packets across the fabric
//! and report coverage with one `markPacket` per hop, with the packet
//! set as it exists at that hop (§5.1).

use netbdd::Bdd;
use netmodel::header::{self, Packet};
use netmodel::Location;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataplane::{reach, traceroute, Forwarder, TraceOutcome};

use crate::context::{TestContext, TestReport};

/// ToRReachability (§8): end-to-end symbolic. All packets originating at
/// a ToR with a destination address in another ToR's hosted prefix must
/// reach that ToR. One symbolic propagation per source ToR carries every
/// remote prefix at once.
pub fn tor_reachability(bdd: &mut Bdd, ctx: &mut TestContext<'_>) -> TestReport {
    let mut report = TestReport::new("ToRReachability");
    for src_index in 0..ctx.info.tor_subnets.len() {
        check_reachability_from(bdd, ctx, &mut report, src_index);
    }
    report
}

/// ToRReachability from a single source ToR — the shardable unit.
pub(crate) fn check_reachability_from(
    bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    report: &mut TestReport,
    src_index: usize,
) {
    let fwd = Forwarder::new(ctx.net, ctx.ms);
    let tors = ctx.info.tor_subnets.clone();
    let (src, _src_prefix, _) = tors[src_index];
    // Destination space: every other ToR's prefix.
    let others: Vec<_> = tors.iter().filter(|&&(d, _, _)| d != src).collect();
    let injected = {
        let sets: Vec<_> = others
            .iter()
            .map(|&&(_, p, _)| header::dst_in(bdd, &p))
            .collect();
        bdd.or_all(sets)
    };
    if injected.is_false() {
        return;
    }
    let res = reach(bdd, &fwd, Location::device(src), injected, 64);
    // Coverage: the per-hop packet sets, exactly as computed.
    ctx.tracker.mark_packet_set(bdd, &res.per_hop);
    // No ECMP leg may drop: under per-flow hashing a dropped leg
    // means some real flows die even if other legs still deliver.
    report.check(res.dropped.is_empty(), || {
        format!(
            "{}: {} rule(s) drop ToR-to-ToR traffic (first at {:?})",
            ctx.net.topology().device(src).name,
            res.dropped.len(),
            res.dropped[0].0
        )
    });
    // Assertions: each remote prefix fully delivered at its ToR
    // (union over the ToR's host-facing ports — regional ToRs split
    // their /24 across several ports).
    for &&(dst, dst_prefix, dst_host) in &others {
        let expect = header::dst_in(bdd, &dst_prefix);
        let sets: Vec<_> = res
            .delivered
            .iter()
            .filter(|&&(i, _)| ctx.net.topology().iface(i).device == dst)
            .map(|&(_, p)| p)
            .collect();
        let got = bdd.or_all(sets);
        let _ = dst_host;
        report.check(bdd.equal(got, expect), || {
            format!(
                "{} → {}: prefix {} not fully delivered",
                ctx.net.topology().device(src).name,
                ctx.net.topology().device(dst).name,
                dst_prefix
            )
        });
    }
}

/// ToRPingmesh (§8): end-to-end concrete. For every ordered ToR pair,
/// sample one address from the destination's hosted prefix and
/// traceroute a packet to it (the Pingmesh idea). Coverage: one
/// `markPacket` per hop with the concrete packet (as transformed so far)
/// at that hop's location.
/// Each ordered pair samples from its own RNG seeded by
/// `pair_seed(seed, src_index, dst_index)`, so the sampled addresses
/// are a function of the pair alone — running pairs in any order, or
/// sharded across threads, reproduces the exact same packets.
pub fn tor_pingmesh(bdd: &mut Bdd, ctx: &mut TestContext<'_>, seed: u64) -> TestReport {
    let mut report = TestReport::new("ToRPingmesh");
    let n = ctx.info.tor_subnets.len();
    for src_index in 0..n {
        for dst_index in 0..n {
            if src_index == dst_index {
                continue;
            }
            let pair = pair_seed(seed, src_index, dst_index);
            check_ping_pair(bdd, ctx, &mut report, src_index, dst_index, pair);
        }
    }
    report
}

/// Derive the RNG seed of one ordered ToR pair from the suite seed —
/// [`yardstick::rng::seed_mix`] over (seed, src‖dst), so every pair's
/// sample stream is independent of execution order.
pub(crate) fn pair_seed(seed: u64, src_index: usize, dst_index: usize) -> u64 {
    yardstick::rng::seed_mix(seed, (src_index as u64) << 32 | dst_index as u64)
}

/// ToRPingmesh for one ordered ToR pair — the shardable unit. `seed` is
/// the pair's own RNG seed (see [`pair_seed`]).
pub(crate) fn check_ping_pair(
    bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    report: &mut TestReport,
    src_index: usize,
    dst_index: usize,
    seed: u64,
) {
    let (src, _, _) = ctx.info.tor_subnets[src_index];
    let (dst, dst_prefix, _dst_host) = ctx.info.tor_subnets[dst_index];
    let mut rng = StdRng::seed_from_u64(seed);
    let free_bits = 32 - dst_prefix.len() as u32;
    let host_part: u128 = rng.gen_range(0..(1u128 << free_bits));
    let pkt = Packet {
        proto: 1, // ICMP, as a ping would be
        ..Packet::v4_to(dst_prefix.nth_addr(host_part) as u32)
    };
    let res = traceroute(bdd, ctx.net, ctx.ms, Location::device(src), pkt, 64);
    for hop in &res.hops {
        let set = hop.packet.to_bdd(bdd);
        ctx.tracker.mark_packet(bdd, hop.location, set);
    }
    report.check(
        matches!(res.outcome, TraceOutcome::Delivered { device, .. } if device == dst),
        || {
            format!(
                "{} → {} ({:?}): {:?}",
                ctx.net.topology().device(src).name,
                ctx.net.topology().device(dst).name,
                pkt.dst,
                res.outcome
            )
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::NetworkInfo;
    use netmodel::MatchSets;
    use topogen::{fattree, FatTreeParams};

    fn setup(k: u32) -> (topogen::FatTree, Bdd, MatchSets) {
        let ft = fattree(FatTreeParams::paper(k));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        (ft, bdd, ms)
    }

    #[test]
    fn reachability_passes_on_healthy_fattree() {
        let (ft, mut bdd, ms) = setup(4);
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = tor_reachability(&mut bdd, &mut ctx);
        assert!(
            report.passed(),
            "{:?}",
            &report.failures[..report.failures.len().min(3)]
        );
        assert_eq!(report.checks, 8 * 7 + 8); // pair checks + per-source drop checks
                                              // Per-hop marks land on every router (everything is on some path).
        assert_eq!(
            ctx.tracker.trace().packets.devices().len(),
            ft.net.topology().device_count()
        );
    }

    #[test]
    fn reachability_detects_null_routed_prefix() {
        let (mut ft, _, _) = setup(4);
        let (_, victim_prefix, _) = ft.tors[5];
        // Null-route the victim's prefix at one core: some flows die.
        topogen::faults::null_route(&mut ft.net, ft.cores[0], victim_prefix);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = tor_reachability(&mut bdd, &mut ctx);
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("drop ToR-to-ToR traffic")));
    }

    #[test]
    fn pingmesh_passes_and_marks_hops() {
        let (ft, mut bdd, ms) = setup(4);
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = tor_pingmesh(&mut bdd, &mut ctx, 42);
        assert!(
            report.passed(),
            "{:?}",
            &report.failures[..report.failures.len().min(3)]
        );
        assert_eq!(report.checks, 8 * 7);
        let (packet_calls, _) = ctx.tracker.call_counts();
        // Each of the 56 traces has 3 or 5 hops.
        assert!(packet_calls >= 56 * 3);
    }

    #[test]
    fn pingmesh_is_deterministic_per_seed() {
        let (ft, mut bdd, ms) = setup(4);
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let mut c1 = TestContext::new(&ft.net, &ms, &info);
        let r1 = tor_pingmesh(&mut bdd, &mut c1, 7);
        let mut c2 = TestContext::new(&ft.net, &ms, &info);
        let r2 = tor_pingmesh(&mut bdd, &mut c2, 7);
        assert_eq!(r1.checks, r2.checks);
        assert_eq!(c1.tracker.call_counts(), c2.tracker.call_counts());
    }

    #[test]
    fn pingmesh_samples_only_a_sliver_of_coverage() {
        // The defining difference between concrete and symbolic tests:
        // Pingmesh covers single packets, Reachability covers prefixes.
        let (ft, mut bdd, ms) = setup(4);
        let info = NetworkInfo {
            tor_subnets: ft.tors.clone(),
            ..NetworkInfo::default()
        };
        let mut ping = TestContext::new(&ft.net, &ms, &info);
        tor_pingmesh(&mut bdd, &mut ping, 1);
        let mut sym = TestContext::new(&ft.net, &ms, &info);
        tor_reachability(&mut bdd, &mut sym);
        let (tor0, _, _) = ft.tors[0];
        let ping_at = ping.tracker.trace().packets.at_device(&mut bdd, tor0);
        let sym_at = sym.tracker.trace().packets.at_device(&mut bdd, tor0);
        assert!(bdd.subset(ping_at, sym_at));
        assert!(!bdd.equal(ping_at, sym_at));
        let ratio = bdd.probability(ping_at) / bdd.probability(sym_at);
        assert!(
            ratio < 1e-6,
            "concrete coverage must be a sliver, got {ratio}"
        );
    }
}
