//! State-inspection tests: they read forwarding state directly and
//! report coverage via `markRule` (§5.1). Lightweight by design — the
//! paper measures their baseline runtime in fractions of a second even
//! on thousands of routers.

use netbdd::Bdd;
use netmodel::topology::{DeviceId, IfaceKind, Role};
use netmodel::RuleId;

use crate::context::{TestContext, TestReport};

/// DefaultRouteCheck (§7.2, §8): every router expected to have a default
/// route has one, and its next hops are exactly the northbound
/// neighbors (or an external uplink for top-tier routers).
///
/// `expected(role)` filters which devices are checked; the Azure case
/// study excludes some regional hubs that legitimately lack defaults.
pub fn default_route_check(
    _bdd: &mut Bdd,
    ctx: &mut TestContext<'_>,
    expected: impl Fn(Role) -> bool,
) -> TestReport {
    let mut report = TestReport::new("DefaultRouteCheck");
    let devices: Vec<DeviceId> = ctx
        .net
        .topology()
        .devices()
        .filter(|(_, dev)| expected(dev.role))
        .map(|(device, _)| device)
        .collect();
    for device in devices {
        check_default_route(ctx, &mut report, device);
    }
    report
}

/// DefaultRouteCheck for a single device — the shardable unit.
pub(crate) fn check_default_route(
    ctx: &mut TestContext<'_>,
    report: &mut TestReport,
    device: DeviceId,
) {
    let topo = ctx.net.topology();
    let dev = topo.device(device);
    let default = ctx.net.device_rule_ids(device).find(|&id| {
        ctx.net
            .rule(id)
            .matches
            .dst
            .map(|p| p.is_default() && p.family() == netmodel::Family::V4)
            .unwrap_or(false)
    });
    let Some(id) = default else {
        report.check(false, || format!("{}: no default route", dev.name));
        return;
    };
    // Inspecting the rule counts as coverage whether or not the
    // assertion below passes — the rule *was* examined.
    ctx.tracker.mark_rule(id);
    let rule = ctx.net.rule(id);
    let my_rank = TestContext::role_rank(dev.role);
    let ok = !rule.action.is_drop()
        && !rule.action.out_ifaces().is_empty()
        && rule.action.out_ifaces().iter().all(|&i| {
            let ifc = topo.iface(i);
            match ifc.kind {
                IfaceKind::External => true,
                IfaceKind::P2p => topo
                    .neighbor_of(i)
                    .map(|n| TestContext::role_rank(topo.device(n).role) > my_rank)
                    .unwrap_or(false),
                _ => false,
            }
        });
    report.check(ok, || {
        format!(
            "{}: default route has wrong next hops ({:?})",
            dev.name, rule.action
        )
    });
}

/// ConnectedRouteCheck (§7.3): both ends of every physical link carry
/// the connected route for the link's assigned /31 and /126 prefixes.
pub fn connected_route_check(_bdd: &mut Bdd, ctx: &mut TestContext<'_>) -> TestReport {
    let mut report = TestReport::new("ConnectedRouteCheck");
    for link_index in 0..ctx.info.links.len() {
        check_connected_link(ctx, &mut report, link_index);
    }
    report
}

/// ConnectedRouteCheck for a single link — the shardable unit.
pub(crate) fn check_connected_link(
    ctx: &mut TestContext<'_>,
    report: &mut TestReport,
    link_index: usize,
) {
    let topo = ctx.net.topology();
    let (ai, bi, p4, p6) = ctx.info.links[link_index];
    for prefix in [p4, p6] {
        for iface in [ai, bi] {
            let device = topo.iface(iface).device;
            let found: Option<RuleId> = ctx
                .net
                .device_rule_ids(device)
                .find(|&id| ctx.net.rule(id).matches.dst == Some(prefix));
            match found {
                Some(id) => {
                    ctx.tracker.mark_rule(id);
                    let rule = ctx.net.rule(id);
                    report.check(rule.action.out_ifaces().contains(&iface), || {
                        format!(
                            "{}: connected route {} does not point out {}",
                            topo.device(device).name,
                            prefix,
                            topo.iface(iface).name
                        )
                    });
                }
                None => report.check(false, || {
                    format!(
                        "{}: missing connected route {}",
                        topo.device(device).name,
                        prefix
                    )
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::NetworkInfo;
    use netmodel::MatchSets;
    use topogen::addressing;
    use topogen::{fattree, regional, FatTreeParams, RegionalParams};

    fn regional_info(r: &topogen::Regional) -> NetworkInfo {
        NetworkInfo {
            tor_subnets: r.tors.clone(),
            loopbacks: (0..r.net.topology().device_count())
                .map(|d| {
                    (
                        netmodel::topology::DeviceId(d as u32),
                        addressing::loopback(d as u32),
                    )
                })
                .collect(),
            links: r
                .links
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (p4, _, _) = addressing::p2p_v4(i as u32);
                    let (p6, _, _) = addressing::p2p_v6(i as u32);
                    (a, b, p4, p6)
                })
                .collect(),
        }
    }

    #[test]
    fn default_route_check_passes_on_healthy_fattree() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = default_route_check(&mut bdd, &mut ctx, |_| true);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checks, 20); // every router checked
                                       // One rule marked per device.
        assert_eq!(ctx.tracker.trace().rules.len(), 20);
    }

    #[test]
    fn default_route_check_fails_on_null_routed_default() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (tor, _, _) = ft.tors[0];
        topogen::faults::null_route(&mut ft.net, tor, netmodel::Prefix::v4_default());
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = default_route_check(&mut bdd, &mut ctx, |_| true);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("wrong next hops"));
        // Coverage still recorded: the rule was inspected.
        assert_eq!(ctx.tracker.trace().rules.len(), 20);
    }

    #[test]
    fn default_route_check_respects_the_role_filter() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let info = NetworkInfo::default();
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        let report = default_route_check(&mut bdd, &mut ctx, |r| r == Role::Tor);
        assert_eq!(report.checks, 8);
    }

    #[test]
    fn connected_route_check_passes_on_regional() {
        let r = regional(RegionalParams::default());
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let info = regional_info(&r);
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = connected_route_check(&mut bdd, &mut ctx);
        assert!(
            report.passed(),
            "{:?}",
            &report.failures[..report.failures.len().min(3)]
        );
        // 2 families × 2 ends per link.
        assert_eq!(report.checks as usize, r.links.len() * 4);
        assert_eq!(ctx.tracker.trace().rules.len(), r.links.len() * 4);
    }

    #[test]
    fn connected_route_check_catches_missing_routes() {
        let mut r = regional(RegionalParams::default());
        let info = regional_info(&r);
        // Remove one /31 from one end.
        let (ai, _, p4, _) = info.links[0];
        let dev = r.net.topology().iface(ai).device;
        topogen::faults::remove_route(&mut r.net, dev, p4);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        let report = connected_route_check(&mut bdd, &mut ctx);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("missing connected route"));
    }
}
