//! The gauge/counter registry.
//!
//! Gauges are point-in-time snapshots (last write wins): BDD node
//! counts, cache sizes, hit rates. Counters are monotone tallies
//! (increments accumulate): jobs executed, evictions, rules processed.
//! Both live in one global registry guarded by a mutex — these are
//! called at phase boundaries, not in inner loops, so contention is not
//! a concern; the disabled path never touches the lock.

use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Default)]
struct Registry {
    gauges: BTreeMap<String, f64>,
    counters: BTreeMap<String, u64>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    gauges: BTreeMap::new(),
    counters: BTreeMap::new(),
});

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Set a gauge to a point-in-time value. No-op while disabled.
pub fn gauge(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    lock().gauges.insert(name.to_string(), value);
}

/// Add to a monotone counter. No-op while disabled.
pub fn counter(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    *lock().counters.entry(name.to_string()).or_insert(0) += delta;
}

pub(crate) fn reset() {
    let mut r = lock();
    r.gauges.clear();
    r.counters.clear();
}

pub(crate) fn gauges() -> BTreeMap<String, f64> {
    lock().gauges.clone()
}

pub(crate) fn counters() -> BTreeMap<String, u64> {
    lock().counters.clone()
}

/// Snapshot every gauge without draining anything — unlike
/// [`crate::report`], which flushes the span sink as a side effect.
/// This is what a serving endpoint (`/metrics`) wants: read-only,
/// repeatable, cheap.
pub fn gauges_snapshot() -> BTreeMap<String, f64> {
    gauges()
}

/// Snapshot every counter without draining anything; see
/// [`gauges_snapshot`].
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    counters()
}
