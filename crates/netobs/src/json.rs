//! A minimal JSON reader.
//!
//! The workspace is offline (no `serde`), but `benchdiff` has to *read*
//! the bench JSONs the harnesses emit, and tests want to round-trip the
//! report format. This is a straightforward recursive-descent parser for
//! the JSON subset those files use — which is to say, all of JSON except
//! exotic number forms beyond what `f64::from_str` accepts.
//!
//! Objects preserve key order (they are vectors of pairs, not maps), so
//! diffing two files reports phases in their original order.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as key/value pairs in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// An object's members in document order (empty for non-objects).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Json)> {
        match self {
            Json::Obj(members) => members.as_slice(),
            _ => &[],
        }
        .iter()
        .map(|(k, v)| (k.as_str(), v))
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our emitters;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("3.25").unwrap(), Json::Num(3.25));
        assert_eq!(parse("-1e3").unwrap(), Json::Num(-1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"phases": [{"name": "tests", "seq_secs": 0.5}], "ok": true}"#;
        let v = parse(doc).unwrap();
        let phases = v.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("tests"));
        assert_eq!(phases[0].get("seq_secs").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[] []",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn reads_the_bench_parallel_schema() {
        let doc = r#"{
          "bench": "fig9", "threads": 4,
          "phases": [
            {"name": "tests", "seq_secs": 0.364806, "par_secs": 0.824630, "speedup": 0.442},
            {"name": "covered_sets", "seq_secs": 0.001652, "par_secs": 0.057939, "speedup": 0.029}
          ],
          "total_seq_secs": 0.373205,
          "metrics_identical": true
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("fig9"));
        let phases = v.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert!((phases[1].get("par_secs").unwrap().as_f64().unwrap() - 0.057939).abs() < 1e-12);
    }
}
