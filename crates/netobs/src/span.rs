//! Thread-local span recording.
//!
//! Each thread owns a private [`Recorder`]: an arena of span-tree nodes
//! plus the stack of currently-open spans. Opening and closing a span
//! touches only that thread-local state — **no lock is taken on the hot
//! path**, which is why instrumented worker loops don't serialise on the
//! observability layer. The only synchronised structure is the sink that
//! finished threads [`flush`] their trees into, locked once per thread
//! lifetime, not once per span.
//!
//! Timing uses `Instant`; chrome-trace timestamps are offsets from a
//! process-wide epoch pinned at the first [`crate::enable`].

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::report::ThreadSpans;

/// Aggregated wall-clock statistics of one span-tree node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Total nanoseconds across all entries of this span.
    pub total_ns: u64,
    /// Fastest single entry (0 until the span closes once).
    pub min_ns: u64,
    /// Slowest single entry.
    pub max_ns: u64,
}

/// One node of a finished thread's span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The span's name as given to [`crate::span!`].
    pub name: String,
    /// Times this span was entered and closed.
    pub count: u64,
    /// Aggregated timing over all entries.
    pub stats: SpanStats,
    /// Child spans in first-entered order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The direct child with this name, if any.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.stats.total_ns as f64 / 1e9
    }

    /// Recursively walk the tree.
    pub fn walk(&self, f: &mut impl FnMut(&SpanNode, usize)) {
        self.walk_at(f, 0)
    }

    fn walk_at(&self, f: &mut impl FnMut(&SpanNode, usize), depth: usize) {
        f(self, depth);
        for c in &self.children {
            c.walk_at(f, depth + 1);
        }
    }

    /// Time-consistency invariant: children run strictly inside their
    /// parent, so their totals must sum to at most the parent's total.
    /// A small absolute slack (1 ms per child) absorbs clock quantisation
    /// on very short spans. Container nodes (`count == 0`, e.g. the
    /// per-thread root) carry no timing of their own and only recurse.
    pub fn check_consistent(&self) -> bool {
        let children_total: u64 = self.children.iter().map(|c| c.stats.total_ns).sum();
        let slack = 1_000_000u64 * self.children.len() as u64;
        let self_ok =
            self.count == 0 || children_total <= self.stats.total_ns.saturating_add(slack);
        self_ok && self.children.iter().all(SpanNode::check_consistent)
    }
}

/// One closed span occurrence, for the flat chrome-trace event list.
#[derive(Clone, Debug)]
pub struct Event {
    pub name: String,
    /// Start offset from the process trace epoch, nanoseconds.
    pub ts_ns: u64,
    pub dur_ns: u64,
}

/// Per-thread cap on retained chrome events; the span tree keeps
/// aggregating past it, only the flat list stops growing.
const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

struct RawNode {
    name: Cow<'static, str>,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    children: Vec<usize>,
}

impl RawNode {
    fn new(name: Cow<'static, str>) -> RawNode {
        RawNode {
            name,
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            children: Vec::new(),
        }
    }
}

struct Recorder {
    /// Arena; node 0 is the virtual per-thread root container.
    nodes: Vec<RawNode>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
    events: Vec<Event>,
    events_dropped: u64,
    /// Bumped on every reset/flush; guards opened against an older
    /// generation (e.g. still open across a flush) are ignored on drop
    /// instead of touching a recycled arena.
    generation: u64,
}

impl Recorder {
    fn new(generation: u64) -> Recorder {
        Recorder {
            nodes: vec![RawNode::new(Cow::Borrowed(""))],
            stack: Vec::new(),
            events: Vec::new(),
            events_dropped: 0,
            generation,
        }
    }

    fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.events.is_empty()
    }

    fn enter(&mut self, name: Cow<'static, str>) -> usize {
        let parent = *self.stack.last().unwrap_or(&0);
        let existing = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        let idx = existing.unwrap_or_else(|| {
            let idx = self.nodes.len();
            self.nodes.push(RawNode::new(name));
            self.nodes[parent].children.push(idx);
            idx
        });
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, idx: usize, started: Instant, elapsed_ns: u64) {
        // Guards are scope-bound, so exits are LIFO; tolerate misuse by
        // unwinding to the matching entry.
        while let Some(top) = self.stack.pop() {
            if top == idx {
                break;
            }
        }
        let n = &mut self.nodes[idx];
        n.count += 1;
        n.total_ns += elapsed_ns;
        n.min_ns = if n.count == 1 {
            elapsed_ns
        } else {
            n.min_ns.min(elapsed_ns)
        };
        n.max_ns = n.max_ns.max(elapsed_ns);
        if self.events.len() < MAX_EVENTS_PER_THREAD {
            let ts_ns = started
                .checked_duration_since(epoch())
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            self.events.push(Event {
                name: n.name.clone().into_owned(),
                ts_ns,
                dur_ns: elapsed_ns,
            });
        } else {
            self.events_dropped += 1;
        }
    }

    fn tree(&self, at: usize) -> SpanNode {
        let n = &self.nodes[at];
        SpanNode {
            name: n.name.clone().into_owned(),
            count: n.count,
            stats: SpanStats {
                total_ns: n.total_ns,
                min_ns: n.min_ns,
                max_ns: n.max_ns,
            },
            children: n.children.iter().map(|&c| self.tree(c)).collect(),
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new(0));
}

/// Flushed per-thread trees, appended once per [`flush`].
static SINK: Mutex<Vec<ThreadSpans>> = Mutex::new(Vec::new());

/// Process-wide epoch for chrome-trace timestamps.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn lock_sink() -> std::sync::MutexGuard<'static, Vec<ThreadSpans>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard returned by [`crate::span()`] and the [`span!`](macro@crate::span)
/// macro; closing happens on drop.
///
/// An inactive guard (instrumentation disabled at entry) is a no-op to
/// create and to drop.
#[must_use = "a span guard measures the scope it lives in"]
pub struct SpanGuard {
    start: Option<(Instant, usize, u64)>,
}

impl SpanGuard {
    /// A guard that records nothing — what every instrumented call site
    /// gets when collection is disabled.
    #[inline]
    pub fn inactive() -> SpanGuard {
        SpanGuard { start: None }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((started, idx, generation)) = self.start.take() {
            let elapsed_ns = started.elapsed().as_nanos() as u64;
            RECORDER.with(|r| {
                let mut rec = r.borrow_mut();
                if rec.generation == generation {
                    rec.exit(idx, started, elapsed_ns);
                }
            });
        }
    }
}

pub(crate) fn enter(name: Cow<'static, str>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::inactive();
    }
    let (idx, generation) = RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        (rec.enter(name), rec.generation)
    });
    SpanGuard {
        start: Some((Instant::now(), idx, generation)),
    }
}

/// Push the calling thread's span tree (and chrome events) into the
/// global sink under `label`, and reset the thread's recorder. Worker
/// threads call this right before finishing; the main thread's flush is
/// folded into [`crate::report`]. A thread with nothing recorded flushes
/// nothing.
pub fn flush(label: &str) {
    let flushed = RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        if rec.is_empty() {
            return None;
        }
        let root = rec.tree(0);
        let events = std::mem::take(&mut rec.events);
        let dropped = rec.events_dropped;
        *rec = Recorder::new(rec.generation + 1);
        Some(ThreadSpans {
            label: label.to_string(),
            root,
            events,
            events_dropped: dropped,
        })
    });
    if let Some(t) = flushed {
        lock_sink().push(t);
    }
}

/// Drop everything collected so far: the sink and the calling thread's
/// recorder. (Other threads' recorders reset themselves on their next
/// flush; `enable()` is documented to precede worker spawning.)
pub(crate) fn reset_all() {
    epoch(); // pin the chrome-trace epoch no later than the first enable
    lock_sink().clear();
    RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        *rec = Recorder::new(rec.generation + 1);
    });
}

pub(crate) fn drain_sink() -> Vec<ThreadSpans> {
    std::mem::take(&mut *lock_sink())
}
