//! Assembling and exporting the observability report.
//!
//! One [`Report`] holds every flushed thread's span tree plus the
//! gauge/counter registry. [`Report::to_json`] emits a single JSON
//! document that is simultaneously:
//!
//! * a **chrome-trace file** — the top-level `traceEvents` array is what
//!   `chrome://tracing` and Perfetto load (extra top-level keys are
//!   ignored by both), and
//! * a **span-tree report** — the `spans`, `gauges`, and `counters` keys
//!   carry the aggregate view `benchdiff` and humans read.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::{Event, SpanNode};

/// One flushed thread: its span tree and flat event list.
#[derive(Clone, Debug)]
pub struct ThreadSpans {
    /// The label the thread flushed under.
    pub label: String,
    /// Virtual root container; real spans are its descendants.
    pub root: SpanNode,
    /// Retained events, in emission order.
    pub events: Vec<Event>,
    /// Events discarded beyond the per-thread retention cap (the tree
    /// keeps aggregating regardless).
    pub events_dropped: u64,
}

/// Everything one measured section produced.
#[derive(Clone, Debug)]
pub struct Report {
    /// One entry per flushed thread, in flush order.
    pub threads: Vec<ThreadSpans>,
    /// Last-write-wins named measurements.
    pub gauges: BTreeMap<String, f64>,
    /// Monotone named tallies.
    pub counters: BTreeMap<String, u64>,
}

impl Report {
    /// The span tree of the thread flushed under `label`.
    pub fn thread(&self, label: &str) -> Option<&SpanNode> {
        self.threads
            .iter()
            .find(|t| t.label == label)
            .map(|t| &t.root)
    }

    /// Whether every thread's tree satisfies the nesting invariant
    /// (children sum to at most their parent).
    pub fn check_consistent(&self) -> bool {
        self.threads.iter().all(|t| t.root.check_consistent())
    }

    /// Serialise as chrome-trace-compatible JSON with the span-tree
    /// report alongside (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"traceEvents\": [\n");
        let mut first = true;
        for (tid, t) in self.threads.iter().enumerate() {
            for e in &t.events {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "    {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
                     \"ts\": {}, \"dur\": {}}}",
                    escape(&e.name),
                    tid,
                    e.ts_ns / 1_000,
                    (e.dur_ns / 1_000).max(1)
                );
            }
        }
        out.push_str("\n  ],\n");
        // Thread name metadata so chrome://tracing labels rows usefully.
        out.push_str("  \"spans\": [\n");
        for (i, t) in self.threads.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"thread\": \"{}\", \"events_dropped\": {}, \"tree\": ",
                escape(&t.label),
                t.events_dropped
            );
            span_json(&mut out, &t.root, 2);
            out.push('}');
            out.push_str(if i + 1 < self.threads.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"gauges\": {\n");
        let ng = self.gauges.len();
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let _ = write!(out, "    \"{}\": {}", escape(k), fmt_f64(*v));
            out.push_str(if i + 1 < ng { ",\n" } else { "\n" });
        }
        out.push_str("  },\n");
        out.push_str("  \"counters\": {\n");
        let nc = self.counters.len();
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let _ = write!(out, "    \"{}\": {}", escape(k), v);
            out.push_str(if i + 1 < nc { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Human-oriented indented rendering of every thread's span tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.threads {
            let _ = writeln!(out, "[{}]", t.label);
            t.root.walk(&mut |n, depth| {
                if depth == 0 {
                    return; // virtual root
                }
                let _ = writeln!(
                    out,
                    "{:indent$}{:<24} {:>10.3}s  x{}",
                    "",
                    n.name,
                    n.total_secs(),
                    n.count,
                    indent = (depth - 1) * 2
                );
            });
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge   {k} = {v}");
        }
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} = {v}");
        }
        out
    }
}

fn span_json(out: &mut String, n: &SpanNode, _depth: usize) {
    let _ = write!(
        out,
        "{{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
         \"children\": [",
        escape(&n.name),
        n.count,
        n.stats.total_ns,
        n.stats.min_ns,
        n.stats.max_ns
    );
    for (i, c) in n.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        span_json(out, c, _depth + 1);
    }
    out.push_str("]}");
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
