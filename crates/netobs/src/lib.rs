//! # netobs — zero-dependency observability: spans, gauges, counters
//!
//! The pipeline's measurement substrate. The container this workspace
//! builds in is offline, so there is no `tracing` or `metrics` crate to
//! lean on; like the `shims/` crates, this is a hand-rolled subset of
//! that functionality — exactly the slice the coverage pipeline needs:
//!
//! * **Spans** ([`span!`]): thread-local RAII guards recording nested
//!   wall-clock timings. Each thread owns a private span tree (no locks
//!   on the hot path); a finished thread [`flush`]es its tree into a
//!   global sink, and [`report`] assembles everything into a [`Report`]
//!   exportable as a JSON span tree and a flat chrome-trace-compatible
//!   event list (`chrome://tracing` / Perfetto accept the emitted file
//!   directly).
//! * **Gauges and counters** ([`gauge`], [`counter`]): a global registry
//!   for point-in-time values (BDD node counts, cache hit rates) and
//!   monotone tallies, snapshotted into the same report.
//! * **Disabled-path cost ≈ zero**: every entry point first does one
//!   relaxed atomic load and bails. No `Instant::now()`, no allocation,
//!   no lock is touched unless [`enable`] has been called — so
//!   instrumented code paths cost nothing in ordinary runs (verified by
//!   `bench/benches/netobs_overhead.rs`).
//!
//! ```
//! netobs::enable();
//! {
//!     let _outer = netobs::span!("analysis");
//!     {
//!         let _inner = netobs::span!("covered_sets");
//!         netobs::counter("rules_processed", 42);
//!     }
//!     netobs::gauge("bdd.nodes", 1234.0);
//! }
//! let report = netobs::report();
//! let tree = report.thread("main").unwrap();
//! assert_eq!(tree.child("analysis").unwrap().child("covered_sets").unwrap().count, 1);
//! netobs::disable();
//! ```

#![deny(missing_docs)]

pub mod json;
mod registry;
mod report;
mod span;

pub use registry::{counter, counters_snapshot, gauge, gauges_snapshot};
pub use report::{Report, ThreadSpans};
pub use span::{flush, SpanGuard, SpanNode, SpanStats};

use std::sync::atomic::{AtomicBool, Ordering};

/// The one flag every instrumented call site checks first. Relaxed is
/// enough: enabling happens-before the instrumented work via the usual
/// program order on the enabling thread, and worker threads are always
/// spawned after `enable()` by the code that wants their spans.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is currently collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start collecting. Clears everything a previous enable/report cycle
/// left behind (sink, gauges, counters, the calling thread's span tree),
/// so back-to-back measured sections don't bleed into each other.
pub fn enable() {
    span::reset_all();
    registry::reset();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop collecting. Data already recorded stays available to [`report`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Open a span named by a static string. Prefer the [`span!`] macro.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span::enter(std::borrow::Cow::Borrowed(name))
}

/// Open a span with a runtime-built name (e.g. `worker-3`).
#[inline]
pub fn span_owned(name: String) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inactive();
    }
    span::enter(std::borrow::Cow::Owned(name))
}

/// Open a named span; the returned guard closes it when dropped.
///
/// Takes a format string — `span!("phase")`, `span!("worker-{i}")` —
/// built only when collection is enabled, so disabled call sites pay one
/// atomic load. (The name is always routed through `format!`: a literal
/// with inline captures must not silently become a static name.)
///
/// # Examples
///
/// ```
/// netobs::enable();
/// {
///     let _outer = netobs::span!("compute");
///     for i in 0..3 {
///         let _inner = netobs::span!("job-{i}");
///     }
/// } // guards close their spans on drop
///
/// let report = netobs::report();
/// let compute = report.thread("main").unwrap().children
///     .iter().find(|s| s.name == "compute").unwrap();
/// assert_eq!(compute.count, 1);
/// assert_eq!(compute.children.len(), 3); // job-0, job-1, job-2
/// ```
#[macro_export]
macro_rules! span {
    ($($fmt:tt)+) => {
        if $crate::enabled() {
            $crate::span_owned(::std::format!($($fmt)+))
        } else {
            $crate::SpanGuard::inactive()
        }
    };
}

/// Flush the calling thread's spans under the label `main`, then gather
/// every flushed thread plus the gauge/counter registry into a
/// [`Report`]. Collection stays enabled; the collected data is drained.
pub fn report() -> Report {
    report_as("main")
}

/// [`report`] with an explicit label for the calling thread.
pub fn report_as(label: &str) -> Report {
    span::flush(label);
    Report {
        threads: span::drain_sink(),
        gauges: registry::gauges(),
        counters: registry::counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // The tests below mutate process-global state; a mutex serialises
    // them (cargo runs #[test]s in one process, many threads).
    use std::sync::Mutex;
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = locked();
        disable();
        {
            let _s = span!("ghost");
            gauge("ghost.gauge", 1.0);
            counter("ghost.counter", 1);
        }
        enable();
        let report = report();
        assert!(report.thread("main").is_none());
        assert!(report.gauges.is_empty());
        assert!(report.counters.is_empty());
        disable();
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let _l = locked();
        enable();
        {
            let _a = span!("outer");
            for _ in 0..3 {
                let _b = span!("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let report = report();
        let main = report.thread("main").expect("main thread flushed");
        let outer = main.child("outer").expect("outer span recorded");
        assert_eq!(outer.count, 1);
        let inner = outer.child("inner").expect("inner nested under outer");
        assert_eq!(inner.count, 3);
        assert!(inner.stats.min_ns <= inner.stats.max_ns);
        assert!(inner.stats.total_ns <= outer.stats.total_ns);
        disable();
    }

    #[test]
    fn sibling_spans_of_the_same_name_accumulate() {
        let _l = locked();
        enable();
        for _ in 0..5 {
            let _s = span!("phase");
        }
        let report = report();
        let phase = report.thread("main").unwrap().child("phase").unwrap();
        assert_eq!(phase.count, 5);
        assert!(phase.stats.total_ns >= phase.stats.max_ns);
        disable();
    }

    #[test]
    fn worker_threads_flush_under_their_own_label() {
        let _l = locked();
        enable();
        std::thread::scope(|scope| {
            for i in 0..2 {
                scope.spawn(move || {
                    {
                        let _s = span!("worker-{i}");
                    }
                    flush(&format!("worker-{i}"));
                });
            }
        });
        {
            let _m = span!("merge");
        }
        let report = report();
        assert!(report.thread("worker-0").is_some());
        assert!(report.thread("worker-1").is_some());
        assert!(report.thread("main").unwrap().child("merge").is_some());
        disable();
    }

    #[test]
    fn enable_resets_previous_data() {
        let _l = locked();
        enable();
        {
            let _s = span!("stale");
            counter("stale", 1);
        }
        enable(); // fresh measured section
        {
            let _s = span!("fresh");
        }
        let report = report();
        let main = report.thread("main").unwrap();
        assert!(main.child("stale").is_none());
        assert!(main.child("fresh").is_some());
        assert!(!report.counters.contains_key("stale"));
        disable();
    }

    #[test]
    fn gauges_overwrite_and_counters_accumulate() {
        let _l = locked();
        enable();
        gauge("g", 1.0);
        gauge("g", 2.5);
        counter("c", 3);
        counter("c", 4);
        let report = report();
        assert_eq!(report.gauges["g"], 2.5);
        assert_eq!(report.counters["c"], 7);
        disable();
    }

    #[test]
    fn report_json_contains_tree_gauges_and_chrome_events() {
        let _l = locked();
        enable();
        {
            let _a = span!("pipeline");
            let _b = span!("step");
        }
        gauge("bdd.nodes", 17.0);
        counter("jobs", 2);
        let report = report();
        let out = report.to_json();
        for needle in [
            "\"traceEvents\"",
            "\"spans\"",
            "\"pipeline\"",
            "\"step\"",
            "\"gauges\"",
            "\"bdd.nodes\": 17",
            "\"counters\"",
            "\"jobs\": 2",
            "\"ph\": \"X\"",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
        // The emitted JSON round-trips through our own parser.
        let parsed = json::parse(&out).expect("report JSON parses");
        assert!(parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .is_some());
        disable();
    }

    #[test]
    fn span_tree_is_time_consistent() {
        let _l = locked();
        enable();
        {
            let _a = span!("parent");
            {
                let _b = span!("child1");
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                let _c = span!("child2");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let report = report();
        let main = report.thread("main").unwrap();
        assert!(
            main.check_consistent(),
            "children must sum to at most their parent: {main:?}"
        );
        disable();
    }
}
