//! Differential proptest for the incremental engine: a random sequence
//! of deltas (rule inserts/withdraws, test adds/removes) applied to a
//! [`CoverageEngine`] must leave it **bit identical** to a from-scratch
//! batch recompute of the final state — every covered set (compared as
//! exported canonical snapshots), every per-rule metric, and the
//! headline aggregates, with the batch side run at 1 and 4 threads.
//!
//! This is the property the device-sharded invalidation scheme stakes
//! its correctness on: recomputing only touched devices must never be
//! observably different from recomputing everything.

use netbdd::{Bdd, PortableBdd};
use netmodel::header;
use netmodel::rule::RouteClass;
use netmodel::topology::{DeviceId, IfaceKind, Role, Topology};
use netmodel::{Location, MatchSets, Network, Prefix, Rule, RuleId};
use proptest::prelude::*;
use yardstick::daemon::{handle, Request};
use yardstick::{Aggregator, Analyzer, CoverageEngine, CoverageTrace, CoveredSets, PortableTrace};

/// The prefix pool deltas draw from — overlapping on purpose, so
/// inserts land at different first-match positions and marks straddle
/// rule boundaries.
const PREFIXES: &[&str] = &[
    "10.0.0.0/8",
    "10.0.0.0/16",
    "10.0.0.0/24",
    "10.0.1.0/24",
    "10.0.0.0/25",
    "10.0.0.128/25",
    "10.0.0.7/32",
    "0.0.0.0/0",
];

#[derive(Clone, Debug)]
enum Op {
    Insert {
        dev_sel: u32,
        prefix_sel: usize,
        iface_sel: u32,
        drop: bool,
    },
    Withdraw {
        dev_sel: u32,
        idx_sel: u32,
    },
    AddTest {
        dev_sel: u32,
        prefix_sel: usize,
        inspect: bool,
        rule_sel: u32,
    },
    RemoveTest {
        name_sel: u32,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u32>(), 0..PREFIXES.len(), any::<u32>(), any::<bool>()).prop_map(
            |(dev_sel, prefix_sel, iface_sel, drop)| Op::Insert {
                dev_sel,
                prefix_sel,
                iface_sel,
                drop,
            }
        ),
        (any::<u32>(), any::<u32>())
            .prop_map(|(dev_sel, idx_sel)| Op::Withdraw { dev_sel, idx_sel }),
        (any::<u32>(), 0..PREFIXES.len(), any::<bool>(), any::<u32>()).prop_map(
            |(dev_sel, prefix_sel, inspect, rule_sel)| Op::AddTest {
                dev_sel,
                prefix_sel,
                inspect,
                rule_sel,
            }
        ),
        any::<u32>().prop_map(|name_sel| Op::RemoveTest { name_sel }),
    ]
}

/// A 3-device chain (tor — agg — spine), host iface per device, a /24
/// and a default per device. Returns the net and per-device iface lists.
fn base_net() -> (Network, Vec<Vec<netmodel::IfaceId>>) {
    let mut t = Topology::new();
    let roles = [Role::Tor, Role::Aggregation, Role::Spine];
    let mut devs = Vec::new();
    let mut dev_ifaces: Vec<Vec<netmodel::IfaceId>> = Vec::new();
    for (i, role) in roles.iter().enumerate() {
        let d = t.add_device(format!("d{i}"), *role);
        let host = t.add_iface(d, "host", IfaceKind::Host);
        devs.push(d);
        dev_ifaces.push(vec![host]);
        if i > 0 {
            let (up, down) = t.add_link(devs[i - 1], d);
            dev_ifaces[i - 1].push(up);
            dev_ifaces[i].push(down);
        }
    }
    let mut n = Network::new(t);
    for (i, &d) in devs.iter().enumerate() {
        let host = dev_ifaces[i][0];
        n.add_rule(
            d,
            Rule::forward(
                format!("10.0.{i}.0/24").parse().unwrap(),
                vec![host],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            d,
            Rule::forward(
                Prefix::v4_default(),
                vec![*dev_ifaces[i].last().unwrap()],
                RouteClass::StaticDefault,
            ),
        );
    }
    n.finalize();
    (n, dev_ifaces)
}

/// A portable trace marking `prefix` at `device`, optionally inspecting
/// one of the device's rules (rule marks are positional, like the wire).
fn mark_trace(device: DeviceId, prefix: &str, inspect: Option<u32>) -> PortableTrace {
    let mut bdd = Bdd::new();
    let mut t = CoverageTrace::new();
    let set = header::dst_in(&mut bdd, &prefix.parse().unwrap());
    t.add_packets(&mut bdd, Location::device(device), set);
    if let Some(index) = inspect {
        t.add_rule(RuleId { device, index });
    }
    t.export(&bdd)
}

/// Replay `ops` into a fresh engine; returns the engine plus the
/// surviving tests' portable traces (the batch side's inputs).
fn replay(ops: &[Op], threads: usize) -> (CoverageEngine, Vec<(String, PortableTrace)>) {
    let (net, dev_ifaces) = base_net();
    let device_count = net.topology().device_count() as u32;
    let mut engine = CoverageEngine::new(net, threads);
    let mut tests: Vec<(String, PortableTrace)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert {
                dev_sel,
                prefix_sel,
                iface_sel,
                drop,
            } => {
                let d = dev_sel % device_count;
                let prefix: Prefix = PREFIXES[*prefix_sel].parse().unwrap();
                let rule = if *drop {
                    Rule::null_route(prefix, RouteClass::Other)
                } else {
                    let ifaces = &dev_ifaces[d as usize];
                    let pick = ifaces[*iface_sel as usize % ifaces.len()];
                    Rule::forward(prefix, vec![pick], RouteClass::Other)
                };
                engine.insert_rule(DeviceId(d), rule).unwrap();
            }
            Op::Withdraw { dev_sel, idx_sel } => {
                let d = DeviceId(dev_sel % device_count);
                let len = engine.network().device_rules(d).len() as u32;
                if len > 0 {
                    engine
                        .withdraw_rule(RuleId {
                            device: d,
                            index: idx_sel % len,
                        })
                        .unwrap();
                }
            }
            Op::AddTest {
                dev_sel,
                prefix_sel,
                inspect,
                rule_sel,
            } => {
                let d = DeviceId(dev_sel % device_count);
                let len = engine.network().device_rules(d).len() as u32;
                let inspect = inspect.then(|| rule_sel % len.max(1));
                let trace = mark_trace(d, PREFIXES[*prefix_sel], inspect);
                let name = format!("t{i}");
                engine.add_test(&name, &trace).unwrap();
                tests.push((name, trace));
            }
            Op::RemoveTest { name_sel } => {
                if !tests.is_empty() {
                    let (name, _) = tests.remove(*name_sel as usize % tests.len());
                    engine.remove_test(&name).unwrap();
                }
            }
        }
    }
    (engine, tests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_after_deltas_is_bit_identical_to_batch_recompute(
        ops in prop::collection::vec(arb_op(), 0..12),
    ) {
        for threads in [1usize, 4] {
            let (mut engine, tests) = replay(&ops, threads);

            // From-scratch batch recompute of the engine's final state,
            // in a fresh manager.
            let net = engine.network().clone();
            let mut bdd = Bdd::new();
            let ms = MatchSets::compute(&net, &mut bdd);
            let mut combined = CoverageTrace::new();
            for (_, portable) in &tests {
                let t = portable.import(&mut bdd);
                combined.merge(&mut bdd, &t);
            }
            let covered = CoveredSets::compute_parallel(&net, &ms, &combined, &mut bdd, threads);

            // Covered sets: canonical exports must be equal node for node.
            let engine_side: Vec<(RuleId, PortableBdd)> = engine.with_analyzer(|a, ebdd| {
                net.rules()
                    .map(|(id, _)| (id, ebdd.export(a.covered_sets().get(id))))
                    .collect()
            });
            for (id, engine_snapshot) in engine_side {
                let batch_snapshot = bdd.export(covered.get(id));
                prop_assert_eq!(
                    engine_snapshot,
                    batch_snapshot,
                    "covered set diverges at {:?} with {} threads",
                    id,
                    threads
                );
            }

            // Metrics: per-rule and headline, exactly equal floats.
            let batch = Analyzer::with_covered(&net, &ms, &combined, covered);
            for (id, _) in net.rules() {
                let e = engine.rule_coverage(id).unwrap();
                let b = batch.rule_coverage(&mut bdd, id);
                prop_assert_eq!(e.coverage, b, "rule metric diverges at {:?}", id);
            }
            let headline = engine.headline_metrics();
            prop_assert_eq!(
                headline.rule_fractional,
                batch.aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
            );
            prop_assert_eq!(
                headline.rule_weighted,
                batch.aggregate_rules(&mut bdd, Aggregator::Weighted, |_, _| true)
            );
            prop_assert_eq!(
                headline.device_fractional,
                batch.aggregate_devices(&mut bdd, Aggregator::Fractional, |_, _| true)
            );

            // A warm `/covers` answers from the LRU cache: the hit
            // counter increments and the body is unchanged.
            let first_rule = net.rules().next().map(|(id, _)| id);
            if let Some(id) = first_rule {
                let req = Request::new(
                    "GET",
                    &format!("/covers?rule={}.{}", id.device.0, id.index),
                    "",
                );
                let cold = handle(&mut engine, &req);
                prop_assert_eq!(cold.status, 200);
                let hits_before = engine.query_cache_stats().hits;
                let warm = handle(&mut engine, &req);
                prop_assert_eq!(warm, cold);
                prop_assert_eq!(engine.query_cache_stats().hits, hits_before + 1);
            }
        }
    }
}
