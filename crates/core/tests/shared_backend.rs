//! The shared-manager backend against the sequential oracle on real
//! (fat-tree) workloads — the engine-level half of the bit-identity CI
//! gate.
//!
//! * Covered sets computed by `CoveredSets::compute_parallel` on a
//!   shared arena at 1/2/4/8 worker threads must export byte-identically
//!   (canonical [`PortableBdd`] form) to the sequential single-manager
//!   path.
//! * A `CoverageEngine` on [`Backend::Shared`] must serve exactly the
//!   answers of the private-backend engine through the same delta
//!   sequence, and keep serving them across a garbage collection.

use netbdd::{Bdd, PortableBdd};
use netmodel::topology::DeviceId;
use netmodel::{header, Location, MatchSets, Network};
use topogen::{fattree, FatTreeParams};
use yardstick::{Backend, CoverageEngine, CoverageTrace, CoveredSets, PortableTrace};

fn net() -> Network {
    fattree(FatTreeParams::paper(4)).net
}

/// A deterministic trace marking a spread of dst prefixes across the
/// first few devices, built inside `bdd`.
fn trace_in(bdd: &mut Bdd, net: &Network) -> CoverageTrace {
    let mut t = CoverageTrace::new();
    let device_count = net.topology().device_count() as u32;
    for i in 0..device_count.min(8) {
        let prefix = format!("10.{}.0.0/{}", i, 12 + (i % 3) * 6);
        let set = header::dst_in(bdd, &prefix.parse().unwrap());
        t.add_packets(bdd, Location::device(DeviceId(i)), set);
    }
    t
}

/// A portable trace marking `prefix` at `device`.
fn probe(device: DeviceId, prefix: &str) -> PortableTrace {
    let mut bdd = Bdd::new();
    let mut t = CoverageTrace::new();
    let set = header::dst_in(&mut bdd, &prefix.parse().unwrap());
    t.add_packets(&mut bdd, Location::device(device), set);
    t.export(&bdd)
}

#[test]
fn shared_covered_sets_bit_identical_at_every_thread_count() {
    let net = net();
    let mut seq = Bdd::new();
    let ms_seq = MatchSets::compute(&net, &mut seq);
    let trace_seq = trace_in(&mut seq, &net);
    let cov_seq = CoveredSets::compute(&net, &ms_seq, &trace_seq, &mut seq);
    let expected: Vec<PortableBdd> = net
        .rules()
        .map(|(id, _)| seq.export(cov_seq.get(id)))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        let mut bdd = Bdd::new_shared();
        let ms = MatchSets::compute(&net, &mut bdd);
        let trace = trace_in(&mut bdd, &net);
        let cov = CoveredSets::compute_parallel(&net, &ms, &trace, &mut bdd, threads);
        for (i, (id, _)) in net.rules().enumerate() {
            assert_eq!(
                bdd.export(cov.get(id)),
                expected[i],
                "covered set of {id:?} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn shared_engine_serves_private_engine_answers_across_deltas_and_gc() {
    let net = net();
    let rules: Vec<_> = net.rules().map(|(id, _)| id).collect();
    let mut private = CoverageEngine::new_with_backend(net.clone(), 2, Backend::Private);
    let mut shared = CoverageEngine::new_with_backend(net, 2, Backend::Shared);

    for engine in [&mut private, &mut shared] {
        engine
            .add_test("edge", &probe(DeviceId(0), "10.0.0.0/24"))
            .unwrap();
        engine
            .add_test("spine", &probe(DeviceId(16), "10.2.0.0/16"))
            .unwrap();
        engine.remove_test("edge").unwrap();
    }

    let compare = |private: &mut CoverageEngine, shared: &mut CoverageEngine, when: &str| {
        for &id in &rules {
            assert_eq!(
                private.rule_coverage(id).unwrap(),
                shared.rule_coverage(id).unwrap(),
                "rule_coverage({id:?}) diverged {when}"
            );
        }
        assert_eq!(
            private.headline_metrics(),
            shared.headline_metrics(),
            "headline metrics diverged {when}"
        );
    };
    compare(&mut private, &mut shared, "after deltas");

    // Collect only the shared engine; its answers must not move.
    let stats = shared.gc();
    assert!(
        stats.nodes_after <= stats.nodes_before,
        "collection grew the arena"
    );
    compare(&mut private, &mut shared, "after shared-engine GC");
}
