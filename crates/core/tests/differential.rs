//! Differential tests against the `oracle` crate: random toy networks,
//! coverage traces, and inspected-rule sets are embedded into the real
//! model, and the coverage pipeline must agree with the oracle —
//!
//! * Algorithm 1's covered sets agree packet by packet;
//! * every analyzer metric (rule, device, out-interface, in-interface)
//!   and every aggregator equals the oracle's counting ratio, because the
//!   dst-only embedding preserves measure up to one global constant.

use netbdd::Bdd;
use netmodel::header;
use netmodel::topology::DeviceId;
use netmodel::{Location, MatchSets, RuleId};
use oracle::embed::{dst_prefix_set, embed_dst_prefix, embed_net, embed_packet};
use oracle::{
    net_match_sets, MetricsOracle, ToyAggregator, ToyIfaceKind, ToyNet, ToyPrefix, ToyRule,
    ToySpace, ToyTrace,
};
use proptest::prelude::*;
use yardstick::{Aggregator, Analyzer, CoverageTrace, CoveredSets};

fn space() -> ToySpace {
    ToySpace::new(4, 2, 1)
}

/// One device's spec: parent selector plus dst-only rules
/// `(dst_len, raw_dst, iface_selector, drop)`.
type DeviceSpec = (u32, Vec<(u32, u32, u32, bool)>);

/// One trace mark: `(device_selector, tag_ingress, iface_selector,
/// dst_len, raw_dst)` — a destination-prefix packet set recorded at a
/// device, optionally tagged with one of its interfaces.
type MarkSpec = (u32, bool, u32, u32, u32);

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    (
        any::<u32>(),
        prop::collection::vec((0u32..=4, any::<u32>(), any::<u32>(), any::<bool>()), 1..4),
    )
}

fn prefix(raw: u32, len: u32) -> ToyPrefix {
    ToyPrefix::new(if len == 0 { 0 } else { raw & ((1 << len) - 1) }, len)
}

/// Tree-shaped toy network with a host interface per device and dst-only
/// single-leg rules; returns the net and each device's interface list.
fn build_net(specs: &[DeviceSpec]) -> (ToyNet, Vec<Vec<u32>>) {
    let mut net = ToyNet::new();
    let mut dev_ifaces: Vec<Vec<u32>> = Vec::new();
    for (d, (parent_raw, _)) in specs.iter().enumerate() {
        let dev = net.add_device();
        let host = net.add_iface(dev, ToyIfaceKind::Host);
        dev_ifaces.push(vec![host]);
        if d > 0 {
            let parent = (*parent_raw as usize) % d;
            let (pi, ci) = net.add_link(parent, dev);
            dev_ifaces[parent].push(pi);
            dev_ifaces[d].push(ci);
        }
    }
    for (d, (_, rules)) in specs.iter().enumerate() {
        for &(dst_len, raw_dst, iface_sel, drop) in rules {
            let action = if drop {
                oracle::ToyAction::Drop
            } else {
                let pick = dev_ifaces[d][(iface_sel as usize) % dev_ifaces[d].len()];
                oracle::ToyAction::Forward(vec![pick])
            };
            net.add_rule(
                d,
                ToyRule {
                    dst: Some(prefix(raw_dst, dst_len)),
                    src: None,
                    proto: None,
                    action,
                },
            );
        }
    }
    net.finalize();
    (net, dev_ifaces)
}

/// Materialise the same trace on both sides: dst-prefix marks (optionally
/// ingress-tagged) and inspected rules.
fn build_traces(
    s: &ToySpace,
    bdd: &mut Bdd,
    net: &ToyNet,
    dev_ifaces: &[Vec<u32>],
    marks: &[MarkSpec],
    inspected: &[(u32, u32)],
) -> (ToyTrace, CoverageTrace) {
    let mut toy = ToyTrace::new();
    let mut real = CoverageTrace::new();
    for &(dev_sel, tag, iface_sel, dst_len, raw_dst) in marks {
        let d = (dev_sel as usize) % net.device_count();
        let p = prefix(raw_dst, dst_len);
        let toy_set = dst_prefix_set(s, p);
        let real_set = header::dst_in(bdd, &embed_dst_prefix(s, p));
        let (iface, loc) = if tag {
            let ifc = dev_ifaces[d][(iface_sel as usize) % dev_ifaces[d].len()];
            (
                Some(ifc),
                Location::at(DeviceId(d as u32), netmodel::IfaceId(ifc)),
            )
        } else {
            (None, Location::device(DeviceId(d as u32)))
        };
        toy.add_packets(d, iface, toy_set);
        real.add_packets(bdd, loc, real_set);
    }
    for &(dev_sel, rule_sel) in inspected {
        let d = (dev_sel as usize) % net.device_count();
        let i = (rule_sel as usize) % net.table(d).len();
        toy.add_rule(d, i);
        real.add_rule(RuleId {
            device: DeviceId(d as u32),
            index: i as u32,
        });
    }
    (toy, real)
}

/// Compare two optional coverage values up to float noise.
fn close(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => (x - y).abs() < 1e-9,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1 agrees with the oracle packet by packet: a toy packet
    /// is in a rule's symbolic covered set exactly when the oracle's
    /// transcription of the algorithm puts it there.
    #[test]
    fn covered_sets_agree_pointwise(
        specs in prop::collection::vec(arb_device(), 1..4),
        marks in prop::collection::vec((any::<u32>(), any::<bool>(), any::<u32>(), 0u32..=4, any::<u32>()), 0..4),
        inspected in prop::collection::vec((any::<u32>(), any::<u32>()), 0..3),
    ) {
        let s = space();
        let (mut net, dev_ifaces) = build_net(&specs);
        let real = embed_net(&s, &net);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&real, &mut bdd);
        let (toy_trace, real_trace) =
            build_traces(&s, &mut bdd, &net, &dev_ifaces, &marks, &inspected);
        let covered = CoveredSets::compute(&real, &ms, &real_trace, &mut bdd);
        let oracles = net_match_sets(&s, &mut net);
        let toy_covered = oracle::CoveredOracle::compute(&s, &oracles, &toy_trace);
        for d in 0..net.device_count() {
            for i in 0..net.table(d).len() {
                let id = RuleId { device: DeviceId(d as u32), index: i as u32 };
                let t = covered.get(id);
                for p in s.packets() {
                    prop_assert_eq!(
                        embed_packet(&s, p).matches(&bdd, t),
                        toy_covered.get(d, i).contains(p),
                        "device {} rule {} packet {:#x}", d, i, p
                    );
                }
                prop_assert_eq!(covered.is_exercised(id), toy_covered.is_exercised(d, i));
            }
        }
    }

    /// Every analyzer metric and aggregate equals the oracle's counting
    /// ratio on dst-only networks and traces.
    #[test]
    fn analyzer_metrics_agree_with_counting(
        specs in prop::collection::vec(arb_device(), 1..4),
        marks in prop::collection::vec((any::<u32>(), any::<bool>(), any::<u32>(), 0u32..=4, any::<u32>()), 0..4),
        inspected in prop::collection::vec((any::<u32>(), any::<u32>()), 0..3),
    ) {
        let s = space();
        let (mut net, dev_ifaces) = build_net(&specs);
        let real = embed_net(&s, &net);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&real, &mut bdd);
        let (toy_trace, real_trace) =
            build_traces(&s, &mut bdd, &net, &dev_ifaces, &marks, &inspected);
        let analyzer = Analyzer::new(&real, &ms, &real_trace, &mut bdd);
        let oracles = net_match_sets(&s, &mut net);
        let metrics = MetricsOracle::new(&s, &net, &oracles, &toy_trace);

        for d in 0..net.device_count() {
            for i in 0..net.table(d).len() {
                let id = RuleId { device: DeviceId(d as u32), index: i as u32 };
                prop_assert!(
                    close(analyzer.rule_coverage(&mut bdd, id), metrics.rule_coverage(d, i)),
                    "rule coverage diverges at device {} rule {}", d, i
                );
            }
            prop_assert!(
                close(
                    analyzer.device_coverage(&mut bdd, DeviceId(d as u32)),
                    metrics.device_coverage(d)
                ),
                "device coverage diverges at device {}", d
            );
        }
        for ifc in 0..net.iface_count() as u32 {
            let id = netmodel::IfaceId(ifc);
            prop_assert!(
                close(analyzer.out_iface_coverage(&mut bdd, id), metrics.out_iface_coverage(ifc)),
                "out-iface coverage diverges at iface {}", ifc
            );
            prop_assert!(
                close(analyzer.in_iface_coverage(&mut bdd, id), metrics.in_iface_coverage(ifc)),
                "in-iface coverage diverges at iface {}", ifc
            );
        }
        let pairs = [
            (Aggregator::Mean, ToyAggregator::Mean),
            (Aggregator::Weighted, ToyAggregator::Weighted),
            (Aggregator::Fractional, ToyAggregator::Fractional),
        ];
        for (agg, toy_agg) in pairs {
            prop_assert!(close(
                analyzer.aggregate_rules(&mut bdd, agg, |_, _| true),
                metrics.aggregate_rules(toy_agg, |_, _| true)
            ), "rule aggregate diverges under {:?}", agg);
            prop_assert!(close(
                analyzer.aggregate_devices(&mut bdd, agg, |_, _| true),
                metrics.aggregate_devices(toy_agg, |_| true)
            ), "device aggregate diverges under {:?}", agg);
            prop_assert!(close(
                analyzer.aggregate_out_ifaces(&mut bdd, agg, |_, _| true),
                metrics.aggregate_out_ifaces(toy_agg, |_| true)
            ), "out-iface aggregate diverges under {:?}", agg);
            prop_assert!(close(
                analyzer.aggregate_in_ifaces(&mut bdd, agg, |_, _| true),
                metrics.aggregate_in_ifaces(toy_agg, |_| true)
            ), "in-iface aggregate diverges under {:?}", agg);
        }
    }
}
