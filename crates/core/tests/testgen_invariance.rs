//! Determinism guarantees of the witness/testgen path on a real
//! (fat-tree) workload.
//!
//! * Gap reports — including the per-rule witness packets — must be
//!   identical whatever the engine's thread count or manager backend:
//!   witnesses are seeded per rule (`testgen::rule_seed`), never drawn
//!   from iteration order.
//! * The coverage-guided generation loop must emit a bit-identical test
//!   suite across 1/2/4 threads and across private/shared backends —
//!   the acceptance bar for reproducible autogen runs.

use netmodel::Network;
use topogen::acl::{install_acl, AclEntry};
use topogen::{fattree, FatTreeParams};
use yardstick::engine::Backend;
use yardstick::testgen::{autogen, GenConfig};
use yardstick::{CoverageEngine, GapEntry};

/// Fat-tree k=4 with the §8 bogon ACLs on the cores, so the workload
/// has both FIB-shaped and ACL-shaped gaps.
fn guarded_net() -> Network {
    let mut ft = fattree(FatTreeParams::paper(4));
    for core in ft.cores.clone() {
        install_acl(&mut ft.net, core, &[AclEntry::block_tcp_port(23)]);
    }
    ft.net
}

/// The gap report of a fresh engine, rendered to comparable form:
/// `(rule, rendered entry text, witness debug)` per entry.
fn gap_fingerprint(engine: &mut CoverageEngine) -> Vec<(String, String, String)> {
    engine.with_analyzer(|a, bdd| {
        a.gap_report(bdd, usize::MAX, 4, |_, _| true)
            .entries
            .iter()
            .map(|e: &GapEntry| {
                (
                    format!("r{}.{}", e.rule.device.0, e.rule.index),
                    e.to_string(),
                    format!("{:?}", e.witness),
                )
            })
            .collect()
    })
}

#[test]
fn gap_reports_identical_across_threads_and_backends() {
    let configs = [
        (1usize, Backend::Private),
        (2, Backend::Private),
        (4, Backend::Private),
        (2, Backend::Shared),
    ];
    let mut fingerprints = Vec::new();
    for (threads, backend) in configs {
        let mut engine = CoverageEngine::new_with_backend(guarded_net(), threads, backend);
        fingerprints.push(gap_fingerprint(&mut engine));
    }
    assert!(!fingerprints[0].is_empty(), "untested network must gap");
    for (i, other) in fingerprints.iter().enumerate().skip(1) {
        assert_eq!(
            &fingerprints[0], other,
            "gap report diverged at config #{i}"
        );
    }
}

#[test]
fn autogen_suite_bit_identical_across_threads_and_backends() {
    let configs = [
        (1usize, Backend::Private),
        (2, Backend::Private),
        (4, Backend::Private),
        (2, Backend::Shared),
    ];
    let cfg = GenConfig {
        budget: 4096,
        ..GenConfig::default()
    };
    let mut suites = Vec::new();
    let mut reference_exercised: Option<Vec<bool>> = None;
    for (threads, backend) in configs {
        let net = guarded_net();
        let ids: Vec<_> = net.rules().map(|(id, _)| id).collect();
        let mut engine = CoverageEngine::new_with_backend(net, threads, backend);
        let report = autogen(&mut engine, &cfg);
        assert!(report.converged, "{threads} threads: loop did not converge");
        assert!(!report.budget_exhausted);
        assert!(!report.tests.is_empty());
        let exercised: Vec<bool> = ids.iter().map(|&id| engine.is_exercised(id)).collect();
        if let Some(reference) = &reference_exercised {
            assert_eq!(reference, &exercised);
        } else {
            reference_exercised = Some(exercised);
        }
        suites.push(report.tests);
    }
    for (i, other) in suites.iter().enumerate().skip(1) {
        assert_eq!(&suites[0], other, "emitted suite diverged at config #{i}");
    }
}

#[test]
fn autogen_covers_every_core_acl_entry() {
    // The §8 study's point: the bogon ACLs start uncovered and hide
    // faults. Autogen must close them with state-inspection tests so the
    // mutation study kills all ACL mutants without hand-written tests.
    let mut ft = fattree(FatTreeParams::paper(4));
    let cores = ft.cores.clone();
    for &core in &cores {
        install_acl(&mut ft.net, core, &[AclEntry::block_tcp_port(23)]);
    }
    let net = ft.net;
    let acl_rules: Vec<_> = net
        .rules()
        .filter(|(_, r)| r.action.is_drop() && r.matches.dport.is_some())
        .map(|(id, _)| id)
        .collect();
    assert_eq!(acl_rules.len(), cores.len());
    let mut engine = CoverageEngine::new(net, 1);
    let report = autogen(
        &mut engine,
        &GenConfig {
            budget: 4096,
            ..GenConfig::default()
        },
    );
    assert!(report.converged);
    for id in acl_rules {
        assert!(
            engine.is_exercised(id),
            "core ACL rule r{}.{} left uncovered",
            id.device.0,
            id.index
        );
    }
}
