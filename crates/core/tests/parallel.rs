//! Differential proptests for the parallel engine: random toy networks
//! and random job lists run through `ParallelRunner` at 2 and 4 threads
//! must produce coverage traces, covered sets, and metrics **bit
//! identical** to the sequential path — and both paths are judged
//! against the `oracle` crate's explicit counting ratios, so agreement
//! between them can't hide a shared bug.

use netbdd::Bdd;
use netmodel::header;
use netmodel::topology::DeviceId;
use netmodel::{Location, MatchSets, RuleId};
use oracle::embed::{dst_prefix_set, embed_dst_prefix, embed_net};
use oracle::{
    net_match_sets, MetricsOracle, ToyAggregator, ToyIfaceKind, ToyNet, ToyPrefix, ToyRule,
    ToySpace, ToyTrace,
};
use proptest::prelude::*;
use proptest::TestCaseError;
use yardstick::{Aggregator, Analyzer, CoverageTrace, CoveredSets, ParallelRunner, Tracker};

fn space() -> ToySpace {
    ToySpace::new(4, 2, 1)
}

/// One device's spec: parent selector plus dst-only rules
/// `(dst_len, raw_dst, iface_selector, drop)`.
type DeviceSpec = (u32, Vec<(u32, u32, u32, bool)>);

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    (
        any::<u32>(),
        prop::collection::vec((0u32..=4, any::<u32>(), any::<u32>(), any::<bool>()), 1..4),
    )
}

fn prefix(raw: u32, len: u32) -> ToyPrefix {
    ToyPrefix::new(if len == 0 { 0 } else { raw & ((1 << len) - 1) }, len)
}

/// Tree-shaped toy network with a host interface per device and dst-only
/// single-leg rules; returns the net and each device's interface list.
fn build_net(specs: &[DeviceSpec]) -> (ToyNet, Vec<Vec<u32>>) {
    let mut net = ToyNet::new();
    let mut dev_ifaces: Vec<Vec<u32>> = Vec::new();
    for (d, (parent_raw, _)) in specs.iter().enumerate() {
        let dev = net.add_device();
        let host = net.add_iface(dev, ToyIfaceKind::Host);
        dev_ifaces.push(vec![host]);
        if d > 0 {
            let parent = (*parent_raw as usize) % d;
            let (pi, ci) = net.add_link(parent, dev);
            dev_ifaces[parent].push(pi);
            dev_ifaces[d].push(ci);
        }
    }
    for (d, (_, rules)) in specs.iter().enumerate() {
        for &(dst_len, raw_dst, iface_sel, drop) in rules {
            let action = if drop {
                oracle::ToyAction::Drop
            } else {
                let pick = dev_ifaces[d][(iface_sel as usize) % dev_ifaces[d].len()];
                oracle::ToyAction::Forward(vec![pick])
            };
            net.add_rule(
                d,
                ToyRule {
                    dst: Some(prefix(raw_dst, dst_len)),
                    src: None,
                    proto: None,
                    action,
                },
            );
        }
    }
    net.finalize();
    (net, dev_ifaces)
}

/// One coverage job: a dst-prefix packet mark (optionally ingress-tagged)
/// or a rule inspection. The parallel and sequential paths both execute
/// the same flat job list.
#[derive(Clone, Debug)]
enum Job {
    Mark {
        device: usize,
        iface: Option<u32>,
        prefix: ToyPrefix,
    },
    Inspect {
        device: usize,
        rule: usize,
    },
}

fn build_jobs(
    net: &ToyNet,
    dev_ifaces: &[Vec<u32>],
    marks: &[(u32, bool, u32, u32, u32)],
    inspected: &[(u32, u32)],
) -> Vec<Job> {
    let mut jobs = Vec::new();
    for &(dev_sel, tag, iface_sel, dst_len, raw_dst) in marks {
        let d = (dev_sel as usize) % net.device_count();
        let iface = tag.then(|| dev_ifaces[d][(iface_sel as usize) % dev_ifaces[d].len()]);
        jobs.push(Job::Mark {
            device: d,
            iface,
            prefix: prefix(raw_dst, dst_len),
        });
    }
    for &(dev_sel, rule_sel) in inspected {
        let d = (dev_sel as usize) % net.device_count();
        jobs.push(Job::Inspect {
            device: d,
            rule: (rule_sel as usize) % net.table(d).len(),
        });
    }
    jobs
}

fn run_one(s: &ToySpace, bdd: &mut Bdd, tracker: &mut Tracker, job: &Job) {
    match job {
        Job::Mark {
            device,
            iface,
            prefix,
        } => {
            let set = header::dst_in(bdd, &embed_dst_prefix(s, *prefix));
            let loc = match iface {
                Some(i) => Location::at(DeviceId(*device as u32), netmodel::IfaceId(*i)),
                None => Location::device(DeviceId(*device as u32)),
            };
            tracker.mark_packet(bdd, loc, set);
        }
        Job::Inspect { device, rule } => tracker.mark_rule(RuleId {
            device: DeviceId(*device as u32),
            index: *rule as u32,
        }),
    }
}

/// The oracle-side trace for the same job list.
fn toy_trace_of(s: &ToySpace, jobs: &[Job]) -> ToyTrace {
    let mut toy = ToyTrace::new();
    for job in jobs {
        match job {
            Job::Mark {
                device,
                iface,
                prefix,
            } => toy.add_packets(*device, *iface, dst_prefix_set(s, *prefix)),
            Job::Inspect { device, rule } => toy.add_rule(*device, *rule),
        }
    }
    toy
}

fn assert_traces_identical(seq: &CoverageTrace, par: &CoverageTrace) -> Result<(), TestCaseError> {
    prop_assert_eq!(&seq.rules, &par.rules);
    prop_assert_eq!(seq.packets.len(), par.packets.len());
    for (loc, set) in seq.packets.iter() {
        prop_assert_eq!(par.packets.at(loc), set, "trace diverges at {:?}", loc);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `ParallelRunner` at 2 and 4 threads reproduces the sequential
    /// trace, covered sets, and every metric bit for bit; the metrics are
    /// additionally judged against the oracle's counting ratios.
    #[test]
    fn parallel_runner_is_bit_identical_and_oracle_correct(
        specs in prop::collection::vec(arb_device(), 1..4),
        marks in prop::collection::vec((any::<u32>(), any::<bool>(), any::<u32>(), 0u32..=4, any::<u32>()), 0..6),
        inspected in prop::collection::vec((any::<u32>(), any::<u32>()), 0..3),
    ) {
        let s = space();
        let (mut net, dev_ifaces) = build_net(&specs);
        let real = embed_net(&s, &net);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&real, &mut bdd);
        let jobs = build_jobs(&net, &dev_ifaces, &marks, &inspected);

        // Sequential reference on the shared manager.
        let mut tracker = Tracker::new();
        for job in &jobs {
            run_one(&s, &mut bdd, &mut tracker, job);
        }
        let seq_trace = tracker.into_trace();
        let seq_covered = CoveredSets::compute(&real, &ms, &seq_trace, &mut bdd);

        // Oracle verdicts for the same jobs.
        let oracles = net_match_sets(&s, &mut net);
        let toy = toy_trace_of(&s, &jobs);
        let metrics = MetricsOracle::new(&s, &net, &oracles, &toy);

        for threads in [2usize, 4] {
            let runner = ParallelRunner::new(threads);
            let s_ref = &s;
            let (par_trace, reports) = runner.run(
                &mut bdd,
                &jobs,
                |_| (),
                |local, _state, tracker, job| run_one(s_ref, local, tracker, job),
            );
            prop_assert_eq!(reports.len(), threads.min(jobs.len()));
            assert_traces_identical(&seq_trace, &par_trace)?;

            // Covered sets: device-sharded Algorithm 1 lands on the same
            // canonical Refs as the sequential pass.
            let par_covered =
                CoveredSets::compute_parallel(&real, &ms, &par_trace, &mut bdd, threads);
            for d in 0..net.device_count() {
                for i in 0..net.table(d).len() {
                    let id = RuleId { device: DeviceId(d as u32), index: i as u32 };
                    prop_assert_eq!(
                        par_covered.get(id),
                        seq_covered.get(id),
                        "covered set diverges: {} threads, device {}, rule {}",
                        threads, d, i
                    );
                }
            }

            // Metrics: exactly equal between paths (same Refs, same
            // floats), and equal to the oracle's counting ratio.
            let seq_an = Analyzer::new(&real, &ms, &seq_trace, &mut bdd);
            let par_an = Analyzer::new_parallel(&real, &ms, &par_trace, &mut bdd, threads);
            for d in 0..net.device_count() {
                for i in 0..net.table(d).len() {
                    let id = RuleId { device: DeviceId(d as u32), index: i as u32 };
                    let sv = seq_an.rule_coverage(&mut bdd, id);
                    let pv = par_an.rule_coverage(&mut bdd, id);
                    prop_assert_eq!(sv, pv, "rule metric differs at device {} rule {}", d, i);
                    let ov = metrics.rule_coverage(d, i);
                    match (pv, ov) {
                        (None, None) => {}
                        (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                        _ => prop_assert!(false, "oracle disagrees on definedness"),
                    }
                }
                let sv = seq_an.device_coverage(&mut bdd, DeviceId(d as u32));
                let pv = par_an.device_coverage(&mut bdd, DeviceId(d as u32));
                prop_assert_eq!(sv, pv, "device metric differs at device {}", d);
            }
            for (agg, toy_agg) in [
                (Aggregator::Mean, ToyAggregator::Mean),
                (Aggregator::Weighted, ToyAggregator::Weighted),
                (Aggregator::Fractional, ToyAggregator::Fractional),
            ] {
                let sv = seq_an.aggregate_rules(&mut bdd, agg, |_, _| true);
                let pv = par_an.aggregate_rules(&mut bdd, agg, |_, _| true);
                prop_assert_eq!(sv, pv, "rule aggregate differs under {:?}", agg);
                let ov = metrics.aggregate_rules(toy_agg, |_, _| true);
                match (pv, ov) {
                    (None, None) => {}
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                    _ => prop_assert!(false, "oracle disagrees on {:?} definedness", agg),
                }
            }
        }
    }
}
