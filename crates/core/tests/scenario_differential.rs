//! Topology-delta differential tests for the coverage engine: failure
//! and recovery sequences re-converged incrementally through
//! [`CoverageEngine::apply_topology`] must leave the engine bit-identical
//! to a from-scratch batch engine built over the degraded network — at 1
//! and 4 threads, on the private and shared BDD backends — and the
//! headline fractional metric must equal a direct counting of exercised
//! rules (the counting-oracle form of the fractional aggregator).

use netbdd::Bdd;
use netmodel::header;
use netmodel::topology::DeviceId;
use netmodel::Location;
use routing::TopologyDelta;
use topogen::{fattree_with_engine, FatTreeParams};
use yardstick::daemon::{handle, Request};
use yardstick::{Backend, CoverageEngine, CoverageTrace, PortableTrace};

/// A portable trace marking `prefix` at `device` (packet marks only —
/// rule marks are positional and topology deltas shift indices).
fn mark_trace(device: DeviceId, prefix: &str) -> PortableTrace {
    let mut bdd = Bdd::new();
    let mut t = CoverageTrace::new();
    let set = header::dst_in(&mut bdd, &prefix.parse().unwrap());
    t.add_packets(&mut bdd, Location::device(device), set);
    t.export(&bdd)
}

/// A deterministic k=4 fat-tree coverage engine with routing attached
/// and two registered probe traces.
fn scenario_engine(threads: usize, backend: Backend) -> CoverageEngine {
    let (ft, routing) = fattree_with_engine(FatTreeParams::paper(4));
    let (tor0, p0, _) = ft.tors[0];
    let (tor7, p7, _) = ft.tors[7];
    let mut engine = CoverageEngine::new_with_backend(ft.net, threads, backend);
    engine.attach_routing(routing);
    engine
        .add_test("probe-local", &mark_trace(tor0, &p0.to_string()))
        .unwrap();
    engine
        .add_test("probe-remote", &mark_trace(tor7, &p7.to_string()))
        .unwrap();
    engine
}

/// A failure/recovery arc touching links and a whole device. Endpoint
/// pairs are fat-tree k=4 wiring: tor-0-0 is device 0, its pod aggs are
/// devices 2 and 3, core-0-0 is device 16.
fn arc() -> Vec<TopologyDelta> {
    vec![
        TopologyDelta::LinkDown {
            a: DeviceId(0),
            b: DeviceId(2),
        },
        TopologyDelta::DeviceDown {
            device: DeviceId(16),
        },
        TopologyDelta::LinkDown {
            a: DeviceId(0),
            b: DeviceId(3),
        },
        TopologyDelta::LinkUp {
            a: DeviceId(0),
            b: DeviceId(2),
        },
        TopologyDelta::DeviceUp {
            device: DeviceId(16),
        },
    ]
}

#[test]
fn topology_deltas_match_batch_across_threads_and_backends() {
    for threads in [1usize, 4] {
        for backend in [Backend::Private, Backend::Shared] {
            let mut engine = scenario_engine(threads, backend);
            for delta in arc() {
                engine.apply_topology(&delta).unwrap();

                // The served network must be bit-identical to a
                // from-scratch rebuild of the degraded control plane.
                let rebuilt = engine.routing().unwrap().full_rebuild().unwrap();
                for (d, _) in rebuilt.topology().devices() {
                    assert_eq!(
                        engine.network().device_rules(d),
                        rebuilt.device_rules(d),
                        "FIB diverged at device {} after {:?} ({threads} threads, {backend:?})",
                        d.0,
                        delta
                    );
                }

                // And the covered sets must equal a fresh batch engine's
                // over that network, as canonical exports.
                let (ft, _) = fattree_with_engine(FatTreeParams::paper(4));
                let (tor0, p0, _) = ft.tors[0];
                let (tor7, p7, _) = ft.tors[7];
                let mut batch = CoverageEngine::new_with_backend(rebuilt, threads, backend);
                batch
                    .add_test("probe-local", &mark_trace(tor0, &p0.to_string()))
                    .unwrap();
                batch
                    .add_test("probe-remote", &mark_trace(tor7, &p7.to_string()))
                    .unwrap();
                let ids: Vec<_> = engine.network().rules().map(|(id, _)| id).collect();
                let mut exercised = 0usize;
                for id in &ids {
                    let (_, _, covered, bdd) = engine.analysis_parts();
                    let engine_snapshot = bdd.export(covered.get(*id));
                    let (_, _, bcovered, bbdd) = batch.analysis_parts();
                    let batch_snapshot = bbdd.export(bcovered.get(*id));
                    assert_eq!(
                        engine_snapshot, batch_snapshot,
                        "covered set diverged at {id:?} after {delta:?} \
                         ({threads} threads, {backend:?})"
                    );
                    if engine.is_exercised(*id) {
                        exercised += 1;
                    }
                }

                // Counting oracle for the fractional aggregate: the
                // headline equals exercised/total, counted directly.
                let headline = engine.headline_metrics();
                let want = exercised as f64 / ids.len() as f64;
                let got = headline.rule_fractional.unwrap();
                assert!(
                    (got - want).abs() < 1e-12,
                    "rule_fractional {got} != counted {want}"
                );
            }
        }
    }
}

/// `/covers` bodies embed the engine version; strip it so comparisons
/// see only the coverage answer itself.
fn strip_version(body: &str) -> String {
    match body.split_once("\"version\":") {
        Some((head, tail)) => {
            let rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
            format!("{head}{rest}")
        }
        None => body.to_string(),
    }
}

#[test]
fn link_down_changes_covers_over_the_wire_and_recovers() {
    let mut engine = scenario_engine(1, Backend::Private);
    let version = engine.version();

    // tor-0-0's table: 8 hosted /24s plus the static default at index 8.
    // Severing both uplinks (to its pod aggs, devices 2 and 3) withdraws
    // every remote route AND the default (its ECMP set dies whole), so
    // the probed rule vanishes — and returns after recovery.
    let covers = Request::new("GET", "/covers?rule=0.8", "");
    let before = handle(&mut engine, &covers);
    assert_eq!(before.status, 200, "{}", before.body);

    for (body, detail) in [
        (r#"{"kind":"link-down","a":0,"b":2}"#, "link:0-2"),
        (r#"{"kind":"link-down","a":0,"b":3}"#, "link:0-3"),
    ] {
        let resp = handle(&mut engine, &Request::new("POST", "/delta", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(
            resp.body.contains(&format!("\"detail\":\"{detail}\"")),
            "{}",
            resp.body
        );
    }
    assert_eq!(engine.version(), version + 2);

    let degraded = handle(&mut engine, &covers);
    assert_eq!(
        degraded.status, 404,
        "a severed ToR keeps only its own hosted /24: {}",
        degraded.body
    );
    assert_eq!(engine.network().device_rules(DeviceId(0)).len(), 1);

    for body in [
        r#"{"kind":"link-up","a":0,"b":2}"#,
        r#"{"kind":"link-up","a":0,"b":3}"#,
    ] {
        let resp = handle(&mut engine, &Request::new("POST", "/delta", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let recovered = handle(&mut engine, &covers);
    assert_eq!(recovered.status, 200, "{}", recovered.body);
    assert_eq!(
        strip_version(&recovered.body),
        strip_version(&before.body),
        "recovery must restore the original /covers answer"
    );
}

#[test]
fn topology_delta_wire_errors_are_mapped() {
    let mut engine = scenario_engine(1, Backend::Private);
    // No link between the two ToRs: 404 (UnknownLink).
    let resp = handle(
        &mut engine,
        &Request::new("POST", "/delta", r#"{"kind":"link-down","a":0,"b":1}"#),
    );
    assert_eq!(resp.status, 404, "{}", resp.body);
    // Unknown device: 404.
    let resp = handle(
        &mut engine,
        &Request::new("POST", "/delta", r#"{"kind":"device-down","device":999}"#),
    );
    assert_eq!(resp.status, 404, "{}", resp.body);
    // Double down: 400 (LinkAlreadyDown).
    let down = Request::new("POST", "/delta", r#"{"kind":"link-down","a":0,"b":2}"#);
    assert_eq!(handle(&mut engine, &down).status, 200);
    let resp = handle(&mut engine, &down);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("already down"), "{}", resp.body);

    // Without a routing engine attached, topology deltas are a 400.
    let (ft, _) = fattree_with_engine(FatTreeParams::paper(4));
    let mut bare = CoverageEngine::new(ft.net, 1);
    let resp = handle(
        &mut bare,
        &Request::new("POST", "/delta", r#"{"kind":"link-down","a":0,"b":2}"#),
    );
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("no routing engine"), "{}", resp.body);
}

#[test]
fn topology_deltas_are_versioned_in_the_log() {
    let mut engine = scenario_engine(1, Backend::Private);
    let since = engine.version();
    engine
        .apply_topology(&TopologyDelta::LinkDown {
            a: DeviceId(0),
            b: DeviceId(2),
        })
        .unwrap();
    engine
        .apply_topology(&TopologyDelta::LinkUp {
            a: DeviceId(0),
            b: DeviceId(2),
        })
        .unwrap();
    let tail = engine.deltas_since(since);
    assert_eq!(tail.len(), 2);
    assert_eq!(tail[0].kind.as_str(), "link-down");
    assert_eq!(tail[1].kind.as_str(), "link-up");
    assert_eq!(tail[0].detail, "link:0-2");
    assert!(
        !tail[0].devices.is_empty(),
        "the FIB diff must invalidate devices"
    );
}
