//! Differential check of the observability layer against a real parallel
//! run: the span trees netobs reports for `ParallelRunner` must satisfy
//! the nesting invariant (children sum to at most their parent), carry
//! one tree per worker thread, and survive a JSON round-trip.
//!
//! This lives in its own integration-test binary: netobs state is
//! process-global, and sharing a process with unrelated tests would mix
//! their spans into this report.

use netbdd::Bdd;
use netmodel::header;
use netmodel::topology::DeviceId;
use netmodel::{Location, Prefix};
use yardstick::{ParallelRunner, Tracker};

#[test]
fn parallel_run_produces_consistent_worker_span_trees() {
    netobs::enable();

    let threads = 3;
    let jobs: Vec<Prefix> = (0..12u32)
        .map(|i| Prefix::v4(u32::from_be_bytes([10, i as u8, 0, 0]), 16))
        .collect();
    let mut bdd = Bdd::new();
    let runner = ParallelRunner::new(threads);
    let (trace, reports) = runner.run(
        &mut bdd,
        &jobs,
        |_| (),
        |local: &mut Bdd, _state, tracker: &mut Tracker, p: &Prefix| {
            let set = header::dst_in(local, p);
            tracker.mark_packet(local, Location::device(DeviceId(0)), set);
        },
    );
    assert_eq!(reports.len(), threads);
    assert!(!trace.packets.is_empty());

    let report = netobs::report();
    netobs::disable();

    // The differential invariant: on every thread, the time attributed to
    // a span's children sums to at most the span's own time.
    assert!(
        report.check_consistent(),
        "span child sums exceed their parent:\n{}",
        report.render()
    );

    // One tree per worker, each with the expected phase structure.
    for w in 0..threads {
        let label = format!("worker-{w}");
        let root = report
            .thread(&label)
            .unwrap_or_else(|| panic!("no span tree flushed for {label}"));
        let worker = root
            .child(&label)
            .unwrap_or_else(|| panic!("{label} tree lacks its top-level span"));
        assert_eq!(worker.count, 1);
        for phase in ["worker_setup", "worker_jobs", "worker_export"] {
            let child = worker
                .child(phase)
                .unwrap_or_else(|| panic!("{label} lacks the {phase} span"));
            assert_eq!(child.count, 1, "{label}/{phase} ran once");
            assert!(child.stats.total_ns <= worker.stats.total_ns);
        }
    }

    // The merge runs on the calling thread, after the workers.
    let main = report.thread("main").expect("main thread flushed");
    assert!(main.child("trace_merge").is_some());

    // Worker gauges were published, and the export round-trips through
    // our own JSON parser with the invariant still checkable.
    for w in 0..threads {
        assert!(report.gauges.contains_key(&format!("worker.{w}.jobs")));
    }
    let parsed = netobs::json::parse(&report.to_json()).expect("report JSON parses");
    let spans = parsed.get("spans").and_then(|s| s.as_array()).unwrap();
    assert_eq!(spans.len(), report.threads.len());
}
