//! Path coverage over the whole path universe (§4.3.2, §5.2 step 3).
//!
//! The denominator of aggregate path metrics is the number of paths
//! *imputed by the forwarding state* (not the topology, which would admit
//! unrealistic zig-zags). Paths are enumerated depth-first and processed
//! on the fly; per path, Equation (3) runs against the covered sets.

use netbdd::{Bdd, Ref};
use netmodel::rule::Action;
use netmodel::{MatchSets, Network, RuleId};

use dataplane::paths::{explore, ExploreOpts, PathStats};
use dataplane::Forwarder;

use crate::analyzer::Analyzer;
use crate::framework::path_survival;

/// Aggregate path-coverage results.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PathCoverage {
    /// Paths enumerated (the metric denominator).
    pub total_paths: u64,
    /// Paths with non-zero end-to-end coverage.
    pub covered_paths: u64,
    /// Mean per-path coverage (simple average).
    pub mean: f64,
    /// Guard-size-weighted mean per-path coverage.
    pub weighted: f64,
    /// Raw exploration statistics.
    pub stats: PathStats,
}

impl PathCoverage {
    /// Fractional path coverage: share of paths tested at all.
    pub fn fractional(&self) -> f64 {
        if self.total_paths == 0 {
            0.0
        } else {
            self.covered_paths as f64 / self.total_paths as f64
        }
    }
}

/// Reconstruct a path's guard `P` — the packets at the path's entry that
/// traverse the whole path — from the final packet set.
///
/// For one-to-one (or absent) transformations the set of *headers* is
/// unchanged along the path, so the guard equals the final set. When a
/// path contains rewrites, walk backwards: take pre-images through each
/// rewrite and re-intersect with each hop's match set (§5.2: *"we compute
/// the guard set by reversing the forwarding operations"*).
pub fn path_guard(
    bdd: &mut Bdd,
    net: &Network,
    ms: &MatchSets,
    rules: &[RuleId],
    final_set: Ref,
) -> Ref {
    let any_rewrite = rules
        .iter()
        .any(|&r| matches!(net.rule(r).action, Action::Rewrite(_, _)));
    if !any_rewrite {
        return final_set;
    }
    let mut g = final_set;
    for &rid in rules.iter().rev() {
        if let Action::Rewrite(rw, _) = &net.rule(rid).action {
            g = rw.preimage(bdd, g);
        }
        let m = ms.get(rid);
        g = bdd.and(g, m);
    }
    g
}

/// Enumerate the path universe from `starts` and measure coverage of
/// every path (Equation 3 per path).
pub fn path_coverage(
    bdd: &mut Bdd,
    analyzer: &Analyzer<'_>,
    starts: &[(netmodel::Location, Ref)],
    opts: &ExploreOpts,
) -> PathCoverage {
    let net = analyzer.network();
    let ms = analyzer.match_sets();
    let covered = analyzer.covered_sets();
    let fwd = Forwarder::new(net, ms);

    let mut total = 0u64;
    let mut hit = 0u64;
    let mut sum = 0.0f64;
    let mut wsum = 0.0f64;
    let mut wtotal = 0.0f64;

    let stats = explore(bdd, &fwd, starts, opts, |bdd, ev| {
        if ev.rules.is_empty() {
            return; // unmatched at injection: no rules to cover
        }
        let guard = path_guard(bdd, net, ms, ev.rules, ev.final_set);
        if guard.is_false() {
            return;
        }
        let m = path_survival(bdd, net, ms, covered, guard, ev.rules);
        total += 1;
        if m > 0.0 {
            hit += 1;
        }
        sum += m;
        let w = bdd.probability(guard);
        wsum += m * w;
        wtotal += w;
    });

    PathCoverage {
        total_paths: total,
        covered_paths: hit,
        mean: if total == 0 { 0.0 } else { sum / total as f64 },
        weighted: if wtotal == 0.0 { 0.0 } else { wsum / wtotal },
        stats,
    }
}

/// A compact signature of the path universe, comparable across state
/// snapshots.
///
/// §5.2 notes the risk of state bugs silently changing the path-count
/// denominator, and that Yardstick "can guard against this risk by
/// flagging to the user when the size of the path universe changes
/// dramatically relative to prior state snapshots". This digest carries
/// the counts needed for that check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathUniverseDigest {
    /// Total enumerated paths.
    pub paths: u64,
    /// Paths ending in a delivery.
    pub delivered: u64,
    /// Paths leaving via an external interface.
    pub exited: u64,
    /// Paths ending at an explicit drop.
    pub dropped: u64,
    /// Paths whose final device matched no rule.
    pub unmatched: u64,
}

impl From<PathStats> for PathUniverseDigest {
    fn from(s: PathStats) -> Self {
        PathUniverseDigest {
            paths: s.paths,
            delivered: s.delivered,
            exited: s.exited,
            dropped: s.dropped,
            unmatched: s.unmatched,
        }
    }
}

impl PathUniverseDigest {
    /// Relative drift between two snapshots in `[0, 1]`: the largest
    /// relative change across all terminal-class counts. `0` means the
    /// universes have identical shape; values near `1` mean a terminal
    /// class (e.g. drops) appeared or vanished wholesale.
    pub fn drift(&self, other: &PathUniverseDigest) -> f64 {
        fn rel(a: u64, b: u64) -> f64 {
            let (a, b) = (a as f64, b as f64);
            let denom = a.max(b);
            if denom == 0.0 {
                0.0
            } else {
                (a - b).abs() / denom
            }
        }
        rel(self.paths, other.paths)
            .max(rel(self.delivered, other.delivered))
            .max(rel(self.exited, other.exited))
            .max(rel(self.dropped, other.dropped))
            .max(rel(self.unmatched, other.unmatched))
    }

    /// Whether the drift against a prior snapshot exceeds `threshold`
    /// (a sensible default is 0.1: absent operational changes, the
    /// universe "is not expected to change significantly day-to-day").
    pub fn drifted(&self, prior: &PathUniverseDigest, threshold: f64) -> bool {
        self.drift(prior) > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use dataplane::paths::edge_starts;
    use netmodel::addr::Prefix;
    use netmodel::header;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{DeviceId, IfaceKind, Role, Topology};
    use netmodel::Location;

    /// tor1 -- spine -- tor2 with a /24 per ToR.
    fn chain() -> (Network, Vec<DeviceId>) {
        let mut t = Topology::new();
        let tor1 = t.add_device("tor1", Role::Tor);
        let spine = t.add_device("spine", Role::Spine);
        let tor2 = t.add_device("tor2", Role::Tor);
        let h1 = t.add_iface(tor1, "hosts", IfaceKind::Host);
        let h2 = t.add_iface(tor2, "hosts", IfaceKind::Host);
        let (t1s, st1) = t.add_link(tor1, spine);
        let (t2s, st2) = t.add_link(tor2, spine);
        let p1: Prefix = "10.0.1.0/24".parse().unwrap();
        let p2: Prefix = "10.0.2.0/24".parse().unwrap();
        let mut net = Network::new(t);
        net.add_rule(tor1, Rule::forward(p1, vec![h1], RouteClass::HostSubnet));
        net.add_rule(tor1, Rule::forward(p2, vec![t1s], RouteClass::HostSubnet));
        net.add_rule(spine, Rule::forward(p1, vec![st1], RouteClass::HostSubnet));
        net.add_rule(spine, Rule::forward(p2, vec![st2], RouteClass::HostSubnet));
        net.add_rule(tor2, Rule::forward(p2, vec![h2], RouteClass::HostSubnet));
        net.add_rule(tor2, Rule::forward(p1, vec![t2s], RouteClass::HostSubnet));
        net.finalize();
        (net, vec![tor1, spine, tor2])
    }

    #[test]
    fn untested_network_has_zero_path_coverage() {
        let (net, _) = chain();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&net, &ms, &trace, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let starts = edge_starts(&mut bdd, &fwd);
        let pc = path_coverage(&mut bdd, &a, &starts, &ExploreOpts::default());
        assert!(pc.total_paths > 0);
        assert_eq!(pc.covered_paths, 0);
        assert_eq!(pc.fractional(), 0.0);
        assert_eq!(pc.mean, 0.0);
    }

    #[test]
    fn fully_marked_network_has_full_path_coverage() {
        let (net, devs) = chain();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let mut trace = CoverageTrace::new();
        let full = bdd.full();
        for &d in &devs {
            trace.add_packets(&mut bdd, Location::device(d), full);
        }
        let a = Analyzer::new(&net, &ms, &trace, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let starts = edge_starts(&mut bdd, &fwd);
        let pc = path_coverage(&mut bdd, &a, &starts, &ExploreOpts::default());
        assert_eq!(pc.fractional(), 1.0);
        assert!((pc.mean - 1.0).abs() < 1e-12);
        assert!((pc.weighted - 1.0).abs() < 1e-12);
    }

    #[test]
    fn universe_counts_both_directions() {
        let (net, _) = chain();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&net, &ms, &trace, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let starts = edge_starts(&mut bdd, &fwd);
        let pc = path_coverage(&mut bdd, &a, &starts, &ExploreOpts::default());
        // From h1: p1 delivered locally (1 rule) + p2 across (3 rules).
        // From h2: symmetric. Total 4 paths.
        assert_eq!(pc.total_paths, 4);
    }

    #[test]
    fn partially_tested_path_counts_fractionally() {
        let (net, devs) = chain();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let mut trace = CoverageTrace::new();
        // End-to-end mark of half of p2 along the tor1→tor2 path.
        let half = header::dst_in(&mut bdd, &"10.0.2.0/25".parse().unwrap());
        for &d in &devs {
            trace.add_packets(&mut bdd, Location::device(d), half);
        }
        let a = Analyzer::new(&net, &ms, &trace, &mut bdd);
        let fwd = Forwarder::new(&net, &ms);
        let starts = edge_starts(&mut bdd, &fwd);
        let pc = path_coverage(&mut bdd, &a, &starts, &ExploreOpts::default());
        // Covered: the tor1→tor2 three-hop path at 1/2, and the tor2-local
        // p2 delivery at 1/2. The two p1 paths are untouched.
        assert_eq!(pc.total_paths, 4);
        assert_eq!(pc.covered_paths, 2);
        assert!((pc.mean - (0.5 + 0.5) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn path_guard_is_identity_without_rewrites() {
        let (net, _) = chain();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let p2 = header::dst_in(&mut bdd, &"10.0.2.0/24".parse().unwrap());
        let rules = vec![
            RuleId {
                device: DeviceId(0),
                index: 1,
            },
            RuleId {
                device: DeviceId(1),
                index: 1,
            },
        ];
        assert_eq!(path_guard(&mut bdd, &net, &ms, &rules, p2), p2);
    }

    #[test]
    fn path_guard_reverses_rewrites() {
        use netmodel::{HeaderField, MatchFields, Rewrite};
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let h = t.add_iface(a, "h", IfaceKind::Host);
        let target = netmodel::addr::ipv4(192, 168, 0, 1);
        let mut net = Network::new(t);
        net.add_rule(
            a,
            Rule {
                matches: MatchFields::dst_prefix("10.0.0.0/24".parse().unwrap()),
                action: netmodel::Action::Rewrite(
                    Rewrite {
                        set: vec![(HeaderField::Dst4, target as u128)],
                    },
                    vec![h],
                ),
                class: RouteClass::Other,
            },
        );
        net.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let rid = RuleId {
            device: a,
            index: 0,
        };
        // Final set after the rewrite: v4 ∧ dst=target.
        let v4 = header::family_is(&mut bdd, netmodel::Family::V4);
        let t_dst = header::dst_in(&mut bdd, &Prefix::host_v4(target));
        let final_set = bdd.and(v4, t_dst);
        let g = path_guard(&mut bdd, &net, &ms, &[rid], final_set);
        // Guard = the whole /24 (every packet maps onto target).
        assert_eq!(g, ms.get(rid));
    }
}

#[cfg(test)]
mod digest_tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use crate::trace::CoverageTrace;
    use dataplane::paths::edge_starts;
    use dataplane::Forwarder;
    use netbdd::Bdd;
    use netmodel::MatchSets;
    use topogen::{fattree, FatTreeParams};

    fn digest_of(net: &netmodel::Network, bdd: &mut Bdd) -> PathUniverseDigest {
        let ms = MatchSets::compute(net, bdd);
        let trace = CoverageTrace::new();
        let analyzer = Analyzer::new(net, &ms, &trace, bdd);
        let fwd = Forwarder::new(net, &ms);
        let starts = edge_starts(bdd, &fwd);
        let pc = path_coverage(bdd, &analyzer, &starts, &dataplane::ExploreOpts::default());
        PathUniverseDigest::from(pc.stats)
    }

    #[test]
    fn identical_snapshots_have_zero_drift() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let d1 = digest_of(&ft.net, &mut bdd);
        let d2 = digest_of(&ft.net, &mut bdd);
        assert_eq!(d1, d2);
        assert_eq!(d1.drift(&d2), 0.0);
        assert!(!d1.drifted(&d2, 0.1));
    }

    #[test]
    fn null_route_shows_up_as_drift() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let before = digest_of(&ft.net, &mut bdd);
        let mut broken = ft.net.clone();
        let (_, victim, _) = ft.tors[3];
        topogen::faults::null_route(&mut broken, ft.cores[0], victim);
        let after = digest_of(&broken, &mut bdd);
        // Drops appear where there were none: drift saturates.
        assert_eq!(after.drift(&before), 1.0);
        assert!(after.drifted(&before, 0.1));
    }

    #[test]
    fn drift_is_symmetric_and_bounded() {
        let a = PathUniverseDigest {
            paths: 100,
            delivered: 90,
            exited: 10,
            ..Default::default()
        };
        let b = PathUniverseDigest {
            paths: 120,
            delivered: 95,
            exited: 25,
            ..Default::default()
        };
        assert_eq!(a.drift(&b), b.drift(&a));
        assert!((0.0..=1.0).contains(&a.drift(&b)));
        assert_eq!(a.drift(&a), 0.0);
    }
}
