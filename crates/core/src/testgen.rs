//! Coverage-guided test generation — closing gaps automatically.
//!
//! The gap report ([`crate::gaps`]) tells an engineer *what* to test
//! next; this module removes the engineer from the loop. Following the
//! P4Testgen arc (symbolic witnesses as an extensible test oracle), each
//! round walks the rules whose covered set is still empty, extracts a
//! deterministic witness packet from the rule's residual match set, and
//! synthesizes a concrete test around it:
//!
//! * **FIB-shaped rules** (forward/rewrite, and drops without a port
//!   match) become a [`TestSpec::Traceroute`]: inject the witness at the
//!   rule's device (on the rule's ingress interface when it has one) and
//!   pin the whole observed trace — device path and final outcome — as
//!   the expectation. The healthy network is the oracle, exactly as the
//!   mutation study's behavioural baseline assumes.
//! * **ACL-shaped rules** (drop + destination-port match) become a
//!   [`TestSpec::AclEntry`]: a state-inspection check that the device
//!   holds a deny entry covering the witness's port, mirroring
//!   `testsuite`'s `AclEntryCheck` semantics (and the mutate operator
//!   split: route mutants are caught behaviourally, ACL mutants by
//!   inspection).
//!
//! Each synthesized test is executed against the live network, its trace
//! fed back through [`CoverageEngine::add_test`], and the loop repeats
//! until every remaining gap is closed or known-permanent, or the test
//! budget runs out. Generation is deterministic and order-independent:
//! the witness for a rule depends only on the configured seed and the
//! rule's identity ([`rule_seed`] via [`yardstick::rng::seed_mix`]), so
//! the emitted suite is bit-identical across thread counts and manager
//! backends.
//!
//! [`yardstick::rng::seed_mix`]: crate::rng::seed_mix

use std::collections::BTreeSet;
use std::fmt;

use dataplane::{traceroute, TraceOutcome, TraceResult};
use netbdd::{Bdd, Ref};
use netmodel::header::{sample_packet_with, Packet};
use netmodel::topology::DeviceId;
use netmodel::{IfaceId, Location, MatchSets, Network, RuleId};

use netmodel::provenance::Construct;

use crate::engine::{CoverageEngine, EngineError, HeadlineMetrics};
use crate::rng::seed_mix;
use crate::tracker::Tracker;

/// Hop budget for generated traceroutes (comfortably above any sane
/// forwarding diameter; loops are reported as [`ExpectedEnd::HopLimit`]).
pub const MAX_HOPS: usize = 32;

/// Base seed for gap-report witnesses ([`crate::gaps`]): a fixed policy
/// constant so batch gap reports are reproducible without configuration.
pub const WITNESS_SEED: u64 = 0x5EED_F00D;

/// Derive the witness seed for one rule: a pure function of `(base,
/// rule identity)`, independent of iteration order, thread count, and
/// manager backend.
pub fn rule_seed(base: u64, id: RuleId) -> u64 {
    seed_mix(base, (u64::from(id.device.0) << 32) | u64::from(id.index))
}

/// A deterministic member of `set`: witness extraction with every free
/// branch choice steered by bits derived from `seed`.
///
/// Forced branches are unaffected, so the result is always inside `set`;
/// the seed only picks *which* member. Two managers holding the same
/// function return the same packet for the same seed — canonical BDDs
/// have identical node structure — which is what makes gap witnesses
/// backend-invariant.
pub fn seeded_witness(bdd: &Bdd, set: Ref, seed: u64) -> Option<Packet> {
    sample_packet_with(bdd, set, |var| seed_mix(seed, u64::from(var)) & 1 == 1)
}

/// How a generated traceroute is expected to end.
///
/// Mirrors [`TraceOutcome`] minus the matched drop-rule id: rule identity
/// is positional and mutants (or deltas) renumber tables, so pinning the
/// id would fail the test on behaviourally identical networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpectedEnd {
    /// Delivered out a host-facing interface.
    Delivered {
        /// The delivering device.
        device: DeviceId,
        /// The host-facing egress interface.
        iface: IfaceId,
    },
    /// Left the network through an external interface.
    Exited {
        /// The border device.
        device: DeviceId,
        /// The external egress interface.
        iface: IfaceId,
    },
    /// Dropped at this device (by any rule).
    Dropped {
        /// The dropping device.
        device: DeviceId,
    },
    /// Matched no rule at this device.
    Unmatched {
        /// The device with no matching rule.
        device: DeviceId,
    },
    /// Exceeded the hop budget.
    HopLimit,
}

/// The pinned shape of a generated traceroute: the device path hop by
/// hop plus the terminal outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceExpectation {
    /// Devices traversed, in order.
    pub devices: Vec<DeviceId>,
    /// The terminal outcome.
    pub end: ExpectedEnd,
}

impl TraceExpectation {
    /// The expectation a completed trace satisfies.
    pub fn of(res: &TraceResult) -> TraceExpectation {
        let end = match res.outcome {
            TraceOutcome::Delivered { device, iface } => ExpectedEnd::Delivered { device, iface },
            TraceOutcome::Exited { device, iface } => ExpectedEnd::Exited { device, iface },
            TraceOutcome::Dropped { device, .. } => ExpectedEnd::Dropped { device },
            TraceOutcome::Unmatched { device } => ExpectedEnd::Unmatched { device },
            TraceOutcome::HopLimit => ExpectedEnd::HopLimit,
        };
        TraceExpectation {
            devices: res.devices(),
            end,
        }
    }
}

/// One synthesized test, self-contained and re-runnable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestSpec {
    /// Behavioural: inject `packet` at `start` and require the trace to
    /// match `expect` (captured from the healthy network).
    Traceroute {
        /// Injection point.
        start: Location,
        /// The concrete witness packet.
        packet: Packet,
        /// The pinned healthy-network trace.
        expect: TraceExpectation,
    },
    /// State inspection: `device` must hold a deny entry covering
    /// destination port `port` (the `AclEntryCheck` semantics).
    AclEntry {
        /// The device whose table is inspected.
        device: DeviceId,
        /// The destination port that must be blocked.
        port: u16,
    },
}

impl TestSpec {
    /// Report name of the synthesized test (static, like the hand-written
    /// suite's names, so mutation kill attribution stays allocation-free).
    pub fn test_name(&self) -> &'static str {
        match self {
            TestSpec::Traceroute { .. } => "AutoTraceroute",
            TestSpec::AclEntry { .. } => "AutoAclCheck",
        }
    }

    /// Stable wire name of the spec kind (served by `/autogen`).
    pub fn kind(&self) -> &'static str {
        match self {
            TestSpec::Traceroute { .. } => "traceroute",
            TestSpec::AclEntry { .. } => "acl-entry",
        }
    }
}

impl fmt::Display for TestSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestSpec::Traceroute { start, packet, .. } => {
                write!(f, "traceroute from d{} of {packet}", start.device.0)
            }
            TestSpec::AclEntry { device, port } => {
                write!(f, "acl-entry on d{} blocking dport {port}", device.0)
            }
        }
    }
}

/// Execute one [`TestSpec`] against a network, reporting coverage into
/// `tracker`. `Err` carries the failure message.
///
/// The marking discipline matches the hand-written suite: traceroutes
/// mark each hop's concrete packet at the hop's location (`markPacket`),
/// ACL inspections mark the deny entry they found (`markRule`).
pub fn run_spec(
    bdd: &mut Bdd,
    net: &Network,
    ms: &MatchSets,
    tracker: &mut Tracker,
    spec: &TestSpec,
) -> Result<(), String> {
    match spec {
        TestSpec::Traceroute {
            start,
            packet,
            expect,
        } => {
            let res = traceroute(bdd, net, ms, *start, *packet, MAX_HOPS);
            for hop in &res.hops {
                let as_set = hop.packet.to_bdd(bdd);
                tracker.mark_packet(bdd, hop.location, as_set);
            }
            let got = TraceExpectation::of(&res);
            if got == *expect {
                Ok(())
            } else {
                Err(format!("trace diverged: expected {expect:?}, got {got:?}"))
            }
        }
        TestSpec::AclEntry { device, port } => {
            let entry = net.device_rule_ids(*device).find(|&id| {
                let r = net.rule(id);
                r.action.is_drop()
                    && r.matches
                        .dport
                        .map(|(lo, hi)| lo <= *port && *port <= hi)
                        .unwrap_or(false)
            });
            match entry {
                Some(id) => {
                    tracker.mark_rule(id);
                    Ok(())
                }
                None => Err(format!(
                    "{}: no ACL entry blocking port {port}",
                    net.topology().device(*device).name
                )),
            }
        }
    }
}

/// Knobs of the generation loop.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Base seed for witness extraction (per-rule seeds derive from it).
    pub seed: u64,
    /// Maximum number of tests the loop may emit.
    pub budget: usize,
    /// Maximum number of generation rounds.
    pub max_rounds: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0xC0FFEE,
            budget: 256,
            max_rounds: 8,
        }
    }
}

/// One emitted test: the engine name it was registered under plus the
/// re-runnable spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneratedTest {
    /// Name registered with [`CoverageEngine::add_test`]
    /// (`autogen-r<device>.<index>`, after the rule that motivated it).
    pub name: String,
    /// The synthesized test.
    pub spec: TestSpec,
}

/// What a generation run did.
#[derive(Clone, Debug)]
pub struct GenReport {
    /// Tests emitted and registered, in generation order.
    pub tests: Vec<GeneratedTest>,
    /// Generation rounds executed.
    pub rounds: usize,
    /// Whether the loop stopped because no closable gap remained (every
    /// unexercised rule is either shadowed or known-permanent).
    pub converged: bool,
    /// Whether the loop stopped early because the test budget ran out.
    pub budget_exhausted: bool,
    /// Rules no generated test could exercise (e.g. unreachable entries
    /// shadowed at runtime by an earlier deny covering the same port).
    pub permanent_gaps: Vec<RuleId>,
    /// Headline coverage before the run.
    pub before: HeadlineMetrics,
    /// Headline coverage after the run.
    pub after: HeadlineMetrics,
}

/// Rules that are a gap worth targeting: non-shadowed match set, covered
/// set still empty, not already known-permanent.
fn targets(engine: &mut CoverageEngine, permanent: &BTreeSet<RuleId>) -> Vec<RuleId> {
    let (net, ms, covered, _) = engine.analysis_parts();
    net.rules()
        .map(|(id, _)| id)
        .filter(|&id| !ms.get(id).is_false())
        .filter(|&id| !covered.is_exercised(id))
        .filter(|id| !permanent.contains(id))
        .collect()
}

/// Number of non-shadowed rules no test exercises yet.
fn unexercised_count(engine: &mut CoverageEngine) -> usize {
    let (net, ms, covered, _) = engine.analysis_parts();
    net.rules()
        .map(|(id, _)| id)
        .filter(|&id| !ms.get(id).is_false())
        .filter(|&id| !covered.is_exercised(id))
        .count()
}

/// Synthesize a test for rule `id` from a seeded witness of its residual
/// match set. `None` when the residual is empty (covered since the
/// target list was built — the mid-loop fast path).
fn synthesize(engine: &mut CoverageEngine, seed: u64, id: RuleId) -> Option<TestSpec> {
    let (net, ms, covered, bdd) = engine.analysis_parts();
    let residual = {
        let m = ms.get(id);
        let t = covered.get(id);
        bdd.diff(m, t)
    };
    let witness = seeded_witness(bdd, residual, rule_seed(seed, id))?;
    let rule = net.rule(id);
    if rule.action.is_drop() && rule.matches.dport.is_some() {
        return Some(TestSpec::AclEntry {
            device: id.device,
            port: witness.dport,
        });
    }
    let start = match rule.matches.in_iface {
        Some(iface) => Location::at(id.device, iface),
        None => Location::device(id.device),
    };
    let res = traceroute(bdd, net, ms, start, witness, MAX_HOPS);
    Some(TestSpec::Traceroute {
        start,
        packet: witness,
        expect: TraceExpectation::of(&res),
    })
}

/// Run the coverage-guided generation loop until rule coverage converges
/// (no closable gap remains), the budget is exhausted, or `max_rounds`
/// passes have run. Every emitted test is registered on the engine via
/// [`CoverageEngine::add_test`] and also returned for re-execution
/// elsewhere (the mutation study re-runs them against mutants).
///
/// Per-round progress is published as `testgen.*` netobs gauges.
pub fn autogen(engine: &mut CoverageEngine, cfg: &GenConfig) -> GenReport {
    let before = engine.headline_metrics();
    let mut tests: Vec<GeneratedTest> = Vec::new();
    let mut permanent: BTreeSet<RuleId> = BTreeSet::new();
    let mut rounds = 0;
    let mut converged = false;
    let mut budget_exhausted = false;

    'rounds: while rounds < cfg.max_rounds {
        let round_targets = targets(engine, &permanent);
        if round_targets.is_empty() {
            converged = true;
            break;
        }
        rounds += 1;
        for id in round_targets {
            if tests.len() >= cfg.budget {
                budget_exhausted = true;
                break 'rounds;
            }
            if engine.is_exercised(id) {
                // Closed by a test emitted earlier this round: the
                // residual went empty mid-loop, nothing to generate.
                continue;
            }
            let Some(spec) = synthesize(engine, cfg.seed, id) else {
                continue;
            };
            let mut tracker = Tracker::new();
            let outcome = {
                let (net, ms, _, bdd) = engine.analysis_parts();
                run_spec(bdd, net, ms, &mut tracker, &spec)
            };
            if outcome.is_err() {
                // The synthesized test cannot even pass on the healthy
                // network (e.g. the deny entry found first is another
                // rule's): no test of this shape will exercise `id`.
                permanent.insert(id);
                continue;
            }
            let portable = {
                let (_, _, _, bdd) = engine.analysis_parts();
                tracker.trace().export(bdd)
            };
            let open_before = unexercised_count(engine);
            let name = format!("autogen-r{}.{}", id.device.0, id.index);
            if engine.add_test(&name, &portable).is_err() {
                permanent.insert(id);
                continue;
            }
            if engine.is_exercised(id) {
                tests.push(GeneratedTest { name, spec });
            } else if unexercised_count(engine) < open_before {
                // Missed its target but closed other gaps (the trace
                // crossed them): keep the test, give up on the target.
                permanent.insert(id);
                tests.push(GeneratedTest { name, spec });
            } else {
                // Pure miss: retire the test, record the permanent gap.
                let _ = engine.remove_test(&name);
                permanent.insert(id);
            }
        }
        netobs::gauge("testgen.rounds", rounds as f64);
        netobs::gauge("testgen.tests", tests.len() as f64);
        netobs::gauge("testgen.unexercised", unexercised_count(engine) as f64);
    }
    if !converged && !budget_exhausted && targets(engine, &permanent).is_empty() {
        // max_rounds landed exactly on convergence.
        converged = true;
    }

    let after = engine.headline_metrics();
    if let Some(v) = before.rule_fractional {
        netobs::gauge("testgen.coverage.before", v);
    }
    if let Some(v) = after.rule_fractional {
        netobs::gauge("testgen.coverage.after", v);
    }
    GenReport {
        tests,
        rounds,
        converged,
        budget_exhausted,
        permanent_gaps: permanent.into_iter().collect(),
        before,
        after,
    }
}

/// What a config-coverage-guided generation run did.
#[derive(Clone, Debug)]
pub struct ConfigGenReport {
    /// Tests emitted and registered, in generation order.
    pub tests: Vec<GeneratedTest>,
    /// Generation rounds executed.
    pub rounds: usize,
    /// Coverable constructs (non-empty rule footprint).
    pub coverable: usize,
    /// Covered constructs before the run.
    pub covered_before: usize,
    /// Covered constructs after the run.
    pub covered_after: usize,
    /// Constructs still uncovered when the loop stopped improving.
    pub uncovered: Vec<Construct>,
}

/// Config-coverage convergence mode: generate tests until *config*
/// coverage stops improving.
///
/// Where [`autogen`] chases every unexercised rule, this loop targets
/// only rules in the footprint of an uncovered configuration construct
/// (session, origination, or static with no exercising test — see
/// [`crate::config`]), re-measures config coverage after each round,
/// and stops as soon as a round fails to cover a new construct. One
/// witness per construct footprint is typically enough to flip the
/// construct's bit, so this converges with far fewer tests than full
/// rule-coverage closure. Requires an attached routing engine
/// ([`CoverageEngine::attach_routing`]); emitted tests are registered
/// as `autogen-config-r<device>.<index>`.
pub fn autogen_config(
    engine: &mut CoverageEngine,
    cfg: &GenConfig,
) -> Result<ConfigGenReport, EngineError> {
    let before = engine.config_coverage()?;
    let coverable = before.coverable();
    let covered_before = before.covered_count();
    let mut tests: Vec<GeneratedTest> = Vec::new();
    let mut rounds = 0;
    let mut covered = covered_before;

    while rounds < cfg.max_rounds && tests.len() < cfg.budget {
        let cov = engine.config_coverage()?;
        let round_targets: BTreeSet<RuleId> = cov
            .uncovered()
            .flat_map(|c| c.rules.iter().copied())
            .collect();
        if round_targets.is_empty() {
            break;
        }
        rounds += 1;
        for id in round_targets {
            if tests.len() >= cfg.budget {
                break;
            }
            if engine.is_exercised(id) {
                continue;
            }
            let Some(spec) = synthesize(engine, cfg.seed, id) else {
                continue;
            };
            let mut tracker = Tracker::new();
            let outcome = {
                let (net, ms, _, bdd) = engine.analysis_parts();
                run_spec(bdd, net, ms, &mut tracker, &spec)
            };
            if outcome.is_err() {
                continue;
            }
            let portable = {
                let (_, _, _, bdd) = engine.analysis_parts();
                tracker.trace().export(bdd)
            };
            let open_before = unexercised_count(engine);
            let name = format!("autogen-config-r{}.{}", id.device.0, id.index);
            if engine.add_test(&name, &portable).is_err() {
                continue;
            }
            if engine.is_exercised(id) || unexercised_count(engine) < open_before {
                tests.push(GeneratedTest { name, spec });
            } else {
                let _ = engine.remove_test(&name);
            }
        }
        let now = engine.config_coverage()?.covered_count();
        netobs::gauge("testgen.config.rounds", rounds as f64);
        netobs::gauge("testgen.config.covered", now as f64);
        if now == covered {
            break; // a full round without a newly covered construct
        }
        covered = now;
    }

    let after = engine.config_coverage()?;
    Ok(ConfigGenReport {
        tests,
        rounds,
        coverable,
        covered_before,
        covered_after: after.covered_count(),
        uncovered: after.uncovered().map(|c| c.construct).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::Prefix;
    use netmodel::rule::{MatchFields, RouteClass, Rule};
    use netmodel::topology::{IfaceKind, Role, Topology};

    /// tor → spine chain: tor forwards 10.0.0.0/24 up, spine delivers it
    /// to hosts and drops telnet (dport 23) to 10.9.0.0/16 first.
    fn chain() -> (Network, DeviceId, DeviceId) {
        let mut t = Topology::new();
        let tor = t.add_device("tor", Role::Tor);
        let spine = t.add_device("spine", Role::Spine);
        let (up, _) = t.add_link(tor, spine);
        let hosts = t.add_iface(spine, "hosts", IfaceKind::Host);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut net = Network::new(t);
        net.add_rule(tor, Rule::forward(p, vec![up], RouteClass::HostSubnet));
        net.add_rule(
            spine,
            Rule {
                matches: MatchFields {
                    dst: Some("10.9.0.0/16".parse().unwrap()),
                    dport: Some((23, 23)),
                    ..MatchFields::default()
                },
                action: netmodel::Action::Drop,
                class: RouteClass::Other,
            },
        );
        net.add_rule(spine, Rule::forward(p, vec![hosts], RouteClass::HostSubnet));
        net.finalize();
        (net, tor, spine)
    }

    #[test]
    fn rule_seed_is_a_pure_function_of_identity() {
        let a = RuleId {
            device: DeviceId(3),
            index: 7,
        };
        let b = RuleId {
            device: DeviceId(7),
            index: 3,
        };
        assert_eq!(rule_seed(1, a), rule_seed(1, a));
        assert_ne!(rule_seed(1, a), rule_seed(1, b));
        assert_ne!(rule_seed(1, a), rule_seed(2, a));
    }

    #[test]
    fn seeded_witness_is_inside_the_set_and_seed_dependent() {
        let mut bdd = Bdd::new();
        // A port range branches inside the diagram, so the walk has free
        // choices for the seed to steer (a bare prefix has one path and
        // every seed would agree).
        let set = netmodel::header::dport_in(&mut bdd, 100, 9000);
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..16 {
            let w = seeded_witness(&bdd, set, seed).unwrap();
            assert!(w.matches(&bdd, set));
            assert!((100..=9000).contains(&w.dport));
            distinct.insert(w);
        }
        assert!(distinct.len() > 1);
    }

    #[test]
    fn autogen_closes_a_simple_network_with_one_trace() {
        // One traceroute from the tor covers the tor rule *and* the
        // spine delivery rule: the spine target is then closed mid-loop
        // (empty residual) without emitting a second traceroute.
        let (net, _, spine) = chain();
        let mut engine = CoverageEngine::new(net, 1);
        let report = autogen(&mut engine, &GenConfig::default());
        assert!(report.converged);
        assert!(!report.budget_exhausted);
        assert_eq!(report.rounds, 1);
        assert!(report.permanent_gaps.is_empty());
        // Exactly two tests: one traceroute closes both FIB rules, one
        // ACL inspection closes the port-23 deny.
        assert_eq!(report.tests.len(), 2);
        assert!(report
            .tests
            .iter()
            .any(|t| matches!(t.spec, TestSpec::Traceroute { .. })));
        assert!(report.tests.iter().any(|t| matches!(
            t.spec,
            TestSpec::AclEntry { device, port: 23 } if device == spine
        )));
        // Coverage is total afterwards.
        let ids: Vec<RuleId> = engine.network().rules().map(|(id, _)| id).collect();
        for id in ids {
            assert!(engine.is_exercised(id));
        }
        assert_eq!(report.after.rule_fractional, Some(1.0));
    }

    #[test]
    fn autogen_is_deterministic_across_thread_counts_and_backends() {
        use crate::engine::Backend;
        let mut suites = Vec::new();
        for (threads, backend) in [
            (1, Backend::Private),
            (2, Backend::Private),
            (4, Backend::Private),
            (2, Backend::Shared),
        ] {
            let (net, _, _) = chain();
            let mut engine = CoverageEngine::new_with_backend(net, threads, backend);
            let report = autogen(&mut engine, &GenConfig::default());
            suites.push(report.tests);
        }
        for other in &suites[1..] {
            assert_eq!(&suites[0], other);
        }
    }

    #[test]
    fn unreachable_rule_becomes_a_permanent_gap() {
        // Two deny entries for the same port: the second is reachable
        // symbolically (different dst) but any AclEntry inspection finds
        // the first entry, so the second can never be exercised by a
        // generated test. The loop must terminate and report it.
        let mut t = Topology::new();
        let d = t.add_device("fw", Role::Border);
        let out = t.add_iface(d, "out", IfaceKind::External);
        let mut net = Network::new(t);
        net.add_rule(
            d,
            Rule {
                matches: MatchFields {
                    dst: Some("10.0.0.0/8".parse().unwrap()),
                    dport: Some((23, 23)),
                    ..MatchFields::default()
                },
                action: netmodel::Action::Drop,
                class: RouteClass::Other,
            },
        );
        net.add_rule(
            d,
            Rule {
                matches: MatchFields {
                    dst: Some("192.168.0.0/16".parse().unwrap()),
                    dport: Some((23, 23)),
                    ..MatchFields::default()
                },
                action: netmodel::Action::Drop,
                class: RouteClass::Other,
            },
        );
        net.add_rule(
            d,
            Rule::forward(Prefix::v4_default(), vec![out], RouteClass::StaticDefault),
        );
        net.finalize();
        let second = RuleId {
            device: DeviceId(0),
            index: 1,
        };
        let mut engine = CoverageEngine::new(net, 1);
        let report = autogen(&mut engine, &GenConfig::default());
        assert!(report.converged, "loop must terminate");
        assert_eq!(report.permanent_gaps, vec![second]);
        assert!(!engine.is_exercised(second));
        // Everything else did get closed.
        assert!(engine.is_exercised(RuleId {
            device: DeviceId(0),
            index: 0,
        }));
        assert!(engine.is_exercised(RuleId {
            device: DeviceId(0),
            index: 2,
        }));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (net, _, _) = chain();
        let mut engine = CoverageEngine::new(net, 1);
        let report = autogen(
            &mut engine,
            &GenConfig {
                budget: 1,
                ..GenConfig::default()
            },
        );
        assert!(report.budget_exhausted);
        assert!(!report.converged);
        assert_eq!(report.tests.len(), 1);
    }

    #[test]
    fn autogen_config_converges_and_covers_every_construct() {
        // A routed fabric with a dark null static: config-guided
        // generation must cover every construct — including the static,
        // via a traceroute pinning the drop — and then stop.
        let mut topo = Topology::new();
        let tor = topo.add_device("tor", Role::Tor);
        let spine = topo.add_device("spine", Role::Spine);
        let hosts = topo.add_iface(tor, "hosts", IfaceKind::Host);
        topo.add_link(tor, spine);
        let mut rb = routing::RibBuilder::new(topo);
        rb.set_tier(tor, 0);
        rb.set_tier(spine, 1);
        rb.originate(routing::Origination::new(
            tor,
            "10.0.0.0/24".parse().unwrap(),
            RouteClass::HostSubnet,
            Some(hosts),
            routing::Scope::All,
        ));
        rb.add_static(routing::StaticRoute {
            device: spine,
            prefix: "192.0.2.0/24".parse().unwrap(),
            target: routing::StaticTarget::Null,
            class: RouteClass::Other,
        });
        let (rt, net) = rb.into_engine().unwrap();
        let mut engine = CoverageEngine::new(net, 1);
        engine.attach_routing(rt);

        let report = autogen_config(&mut engine, &GenConfig::default()).unwrap();
        assert_eq!(report.covered_before, 0);
        assert_eq!(report.covered_after, report.coverable);
        assert!(report.uncovered.is_empty(), "left {:?}", report.uncovered);
        assert!(!report.tests.is_empty());
        // And it reports through the engine identically.
        let cov = engine.config_coverage().unwrap();
        assert_eq!(cov.fractional(), Some(1.0));

        // Without a routing engine the mode is a named error.
        let (net2, _, _) = chain();
        let mut bare = CoverageEngine::new(net2, 1);
        assert!(matches!(
            autogen_config(&mut bare, &GenConfig::default()),
            Err(EngineError::NoRoutingEngine)
        ));
    }

    #[test]
    fn generated_tests_replay_against_the_same_network() {
        // Emitted specs are self-contained: re-running them against the
        // healthy network passes and reproduces the registered coverage.
        let (net, _, _) = chain();
        let mut engine = CoverageEngine::new(net.clone(), 1);
        let report = autogen(&mut engine, &GenConfig::default());
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        for t in &report.tests {
            let mut tracker = Tracker::new();
            run_spec(&mut bdd, &net, &ms, &mut tracker, &t.spec)
                .unwrap_or_else(|e| panic!("{} failed on the healthy network: {e}", t.name));
            assert!(!tracker.trace().is_empty());
        }
    }
}
