//! Phase-2 analysis: from a coverage trace to metrics.
//!
//! The [`Analyzer`] owns the derived covered sets (Algorithm 1) and
//! exposes the standard per-component metrics plus aggregation over
//! arbitrary component collections with user filters — the "zoom in on a
//! subset of components" facility of §6.

use netbdd::Bdd;
use netmodel::provenance::ConfigDb;
use netmodel::topology::{DeviceId, IfaceKind, Role};
use netmodel::{IfaceId, MatchSets, Network, RuleId};

use crate::config::ConfigCoverage;
use crate::covered::CoveredSets;
use crate::framework::Aggregator;
use crate::trace::CoverageTrace;

/// Phase-2 coverage analyzer bound to one network snapshot and one trace.
///
/// # Examples
///
/// ```
/// use netbdd::Bdd;
/// use netmodel::MatchSets;
/// use yardstick::{Analyzer, Tracker};
/// # use netmodel::{Network, Prefix, Role, rule::{Rule, RouteClass}, topology::Topology};
/// # let mut topo = Topology::new();
/// # let d = topo.add_device("r1", Role::Tor);
/// # let h = topo.add_iface(d, "hosts", netmodel::IfaceKind::Host);
/// # let mut net = Network::new(topo);
/// # net.add_rule(d, Rule::forward(Prefix::v4_default(), vec![h], RouteClass::StaticDefault));
/// # net.finalize();
/// let mut bdd = Bdd::new();
/// let mut tracker = Tracker::new();
/// // A state-inspection test reports the one rule it checked ...
/// tracker.mark_rule(net.rules().next().unwrap().0);
///
/// // ... and phase 2 turns the trace into metrics.
/// let ms = MatchSets::compute(&net, &mut bdd);
/// let analyzer = Analyzer::new(&net, &ms, tracker.trace(), &mut bdd);
/// assert_eq!(analyzer.device_coverage(&mut bdd, d), Some(1.0));
/// ```
pub struct Analyzer<'a> {
    net: &'a Network,
    ms: &'a MatchSets,
    trace: &'a CoverageTrace,
    covered: CoveredSets,
}

impl<'a> Analyzer<'a> {
    /// Compute covered sets (Algorithm 1) and return an analyzer.
    pub fn new(
        net: &'a Network,
        ms: &'a MatchSets,
        trace: &'a CoverageTrace,
        bdd: &mut Bdd,
    ) -> Analyzer<'a> {
        let _span = netobs::span!("analysis");
        let covered = CoveredSets::compute(net, ms, trace, bdd);
        Analyzer {
            net,
            ms,
            trace,
            covered,
        }
    }

    /// [`Analyzer::new`], but with covered sets computed by the
    /// device-sharded [`CoveredSets::compute_parallel`]. Every metric is
    /// bit-identical to the sequential analyzer's.
    pub fn new_parallel(
        net: &'a Network,
        ms: &'a MatchSets,
        trace: &'a CoverageTrace,
        bdd: &mut Bdd,
        threads: usize,
    ) -> Analyzer<'a> {
        let _span = netobs::span!("analysis");
        let covered = CoveredSets::compute_parallel(net, ms, trace, bdd, threads);
        Analyzer {
            net,
            ms,
            trace,
            covered,
        }
    }

    /// Wrap covered sets that were computed elsewhere — the constructor a
    /// long-lived engine uses after incrementally refreshing its shards,
    /// so metrics never force a from-scratch Algorithm 1 pass. The caller
    /// is responsible for `covered` actually corresponding to
    /// `(net, ms, trace)`; every metric is then bit-identical to what
    /// [`Analyzer::new`] would produce.
    pub fn with_covered(
        net: &'a Network,
        ms: &'a MatchSets,
        trace: &'a CoverageTrace,
        covered: CoveredSets,
    ) -> Analyzer<'a> {
        Analyzer {
            net,
            ms,
            trace,
            covered,
        }
    }

    /// The network under analysis.
    pub fn network(&self) -> &'a Network {
        self.net
    }

    /// The network's disjoint match sets.
    pub fn match_sets(&self) -> &'a MatchSets {
        self.ms
    }

    /// The Algorithm-1 covered sets computed from the trace.
    pub fn covered_sets(&self) -> &CoveredSets {
        &self.covered
    }

    /// The coverage trace the analyzer was built from.
    pub fn trace(&self) -> &'a CoverageTrace {
        self.trace
    }

    // ----- per-component metrics -------------------------------------------

    /// Rule coverage: fraction of the rule's match set covered.
    /// `None` for fully-shadowed rules (empty match set — untestable).
    pub fn rule_coverage(&self, bdd: &mut Bdd, rule: RuleId) -> Option<f64> {
        let m = self.ms.get(rule);
        if m.is_false() {
            return None;
        }
        let t = self.covered.get(rule);
        Some(bdd.probability(t) / bdd.probability(m))
    }

    /// Device coverage: match-set-weighted average over the device's
    /// rules. `None` when the device has no (testable) rules.
    pub fn device_coverage(&self, bdd: &mut Bdd, device: DeviceId) -> Option<f64> {
        let total = self.ms.device_total(device);
        if total.is_false() {
            return None;
        }
        // Weighted average with weights |M[r]| collapses to
        // |∪ T[r]| / |∪ M[r]| because the match sets are disjoint.
        let covered = bdd.or_all(
            self.net
                .device_rule_ids(device)
                .map(|id| self.covered.get(id)),
        );
        Some(bdd.probability(covered) / bdd.probability(total))
    }

    /// Outgoing interface coverage: weighted average over the rules that
    /// forward out of `iface`. `None` when no rule uses the interface
    /// (it cannot carry traffic, so it is untestable).
    pub fn out_iface_coverage(&self, bdd: &mut Bdd, iface: IfaceId) -> Option<f64> {
        let rules = self.net.rules_out_iface(iface);
        let mut m_total = 0.0;
        let mut t_total = 0.0;
        for id in rules {
            m_total += bdd.probability(self.ms.get(id));
            t_total += bdd.probability(self.covered.get(id));
        }
        if m_total == 0.0 {
            return None;
        }
        Some(t_total / m_total)
    }

    /// Incoming interface coverage: over the device's rules reachable
    /// from `iface`, the fraction of match-set space covered *by packets
    /// recorded on that interface* (§4.3.2: guards limited to packets on
    /// the interface). Requires tests that report ingress locations
    /// (end-to-end traversals do); device-level marks don't count.
    pub fn in_iface_coverage(&self, bdd: &mut Bdd, iface: IfaceId) -> Option<f64> {
        let device = self.net.topology().iface(iface).device;
        let arrived = self.trace.packets.at_device_iface(device, iface);
        let mut m_total = 0.0;
        let mut t_total = 0.0;
        for id in self.net.device_rule_ids(device) {
            let rule = self.net.rule(id);
            if let Some(required) = rule.matches.in_iface {
                if required != iface {
                    continue;
                }
            }
            let m = self.ms.get(id);
            if m.is_false() {
                continue;
            }
            m_total += bdd.probability(m);
            // Inspected rules are fully covered regardless of ingress.
            if self.trace.rules.contains(&id) {
                t_total += bdd.probability(m);
            } else {
                let t = bdd.and(arrived, m);
                t_total += bdd.probability(t);
            }
        }
        if m_total == 0.0 {
            return None;
        }
        Some(t_total / m_total)
    }

    /// Config-level coverage: the analyzer's covered sets mapped
    /// through a control-plane provenance database (see
    /// [`crate::config`] for the attribution and metric definitions).
    pub fn config_coverage(&self, bdd: &mut Bdd, db: &ConfigDb) -> ConfigCoverage {
        ConfigCoverage::compute(self.net, self.ms, &self.covered, bdd, db)
    }

    // ----- aggregation (Equation 2) -----------------------------------------

    /// Aggregate rule coverage over rules passing `filter`.
    /// Shadowed rules are excluded. Returns `None` if nothing matches.
    pub fn aggregate_rules(
        &self,
        bdd: &mut Bdd,
        agg: Aggregator,
        filter: impl Fn(RuleId, &netmodel::Rule) -> bool,
    ) -> Option<f64> {
        let ids: Vec<RuleId> = self
            .net
            .rules()
            .filter(|(id, r)| filter(*id, r))
            .map(|(id, _)| id)
            .collect();
        let mut items = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(c) = self.rule_coverage(bdd, id) {
                let w = bdd.probability(self.ms.get(id));
                items.push((c, w));
            }
        }
        agg.fold(&items)
    }

    /// Aggregate device coverage over devices passing `filter`.
    pub fn aggregate_devices(
        &self,
        bdd: &mut Bdd,
        agg: Aggregator,
        filter: impl Fn(DeviceId, &netmodel::Device) -> bool,
    ) -> Option<f64> {
        let ids: Vec<DeviceId> = self
            .net
            .topology()
            .devices()
            .filter(|(id, d)| filter(*id, d))
            .map(|(id, _)| id)
            .collect();
        let mut items = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(c) = self.device_coverage(bdd, id) {
                let w = bdd.probability(self.ms.device_total(id));
                items.push((c, w));
            }
        }
        agg.fold(&items)
    }

    /// Aggregate outgoing-interface coverage over interfaces passing
    /// `filter`. Loopbacks are always excluded (they originate routes but
    /// never carry transit packets); interfaces that no rule forwards out
    /// of count as 0 — an installed but unused-and-untested port is a
    /// gap, not a vacuous component.
    pub fn aggregate_out_ifaces(
        &self,
        bdd: &mut Bdd,
        agg: Aggregator,
        filter: impl Fn(IfaceId, &netmodel::Iface) -> bool,
    ) -> Option<f64> {
        let ids: Vec<IfaceId> = self
            .net
            .topology()
            .ifaces()
            .filter(|(_, f)| f.kind != IfaceKind::Loopback)
            .filter(|(id, f)| filter(*id, f))
            .map(|(id, _)| id)
            .collect();
        let mut items = Vec::with_capacity(ids.len());
        for id in ids {
            let c = self.out_iface_coverage(bdd, id).unwrap_or(0.0);
            let w: f64 = self
                .net
                .rules_out_iface(id)
                .into_iter()
                .map(|r| bdd.probability(self.ms.get(r)))
                .sum();
            items.push((c, w));
        }
        agg.fold(&items)
    }

    /// Aggregate incoming-interface coverage over interfaces passing
    /// `filter`. Host/external edges and P2p links all count; loopbacks
    /// never receive transit packets and are excluded. Interfaces with no
    /// reachable rules are vacuous and skipped.
    pub fn aggregate_in_ifaces(
        &self,
        bdd: &mut Bdd,
        agg: Aggregator,
        filter: impl Fn(IfaceId, &netmodel::Iface) -> bool,
    ) -> Option<f64> {
        let ids: Vec<IfaceId> = self
            .net
            .topology()
            .ifaces()
            .filter(|(_, f)| f.kind != IfaceKind::Loopback)
            .filter(|(id, f)| filter(*id, f))
            .map(|(id, _)| id)
            .collect();
        let mut items = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(c) = self.in_iface_coverage(bdd, id) {
                let device = self.net.topology().iface(id).device;
                let w = bdd.probability(self.ms.device_total(device));
                items.push((c, w));
            }
        }
        agg.fold(&items)
    }

    /// Convenience: the four headline metrics for devices of one role,
    /// exactly the bars of Figure 6: (device fractional, interface
    /// fractional, rule fractional, rule weighted).
    pub fn role_metrics(&self, bdd: &mut Bdd, role: Role) -> RoleMetrics {
        let dev = self.aggregate_devices(bdd, Aggregator::Fractional, |_, d| d.role == role);
        let topo = self.net.topology();
        let ifc = self.aggregate_out_ifaces(bdd, Aggregator::Fractional, |_, f| {
            topo.device(f.device).role == role
        });
        let rule_frac = self.aggregate_rules(bdd, Aggregator::Fractional, |id, _| {
            topo.device(id.device).role == role
        });
        let rule_weighted = self.aggregate_rules(bdd, Aggregator::Weighted, |id, _| {
            topo.device(id.device).role == role
        });
        RoleMetrics {
            role,
            device_fractional: dev,
            iface_fractional: ifc,
            rule_fractional: rule_frac,
            rule_weighted,
        }
    }
}

/// The four headline metrics for one router role (one group of bars in
/// Figure 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoleMetrics {
    /// The router role the metrics are aggregated over.
    pub role: Role,
    /// Mean fractional device coverage (`None` if the role is absent).
    pub device_fractional: Option<f64>,
    /// Mean fractional incoming-interface coverage.
    pub iface_fractional: Option<f64>,
    /// Mean fractional rule coverage.
    pub rule_fractional: Option<f64>,
    /// Mean probability-weighted rule coverage.
    pub rule_weighted: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;
    use crate::framework::{Combinator, Measure};
    use netmodel::addr::Prefix;
    use netmodel::header;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::Topology;
    use netmodel::Location;

    fn build() -> (Network, DeviceId, DeviceId) {
        let mut t = Topology::new();
        let tor = t.add_device("tor", Role::Tor);
        let spine = t.add_device("spine", Role::Spine);
        let h = t.add_iface(tor, "hosts", IfaceKind::Host);
        let (ts, st) = t.add_link(tor, spine);
        let mut n = Network::new(t);
        n.add_rule(
            tor,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![h],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            tor,
            Rule::forward(Prefix::v4_default(), vec![ts], RouteClass::StaticDefault),
        );
        n.add_rule(
            spine,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![st],
                RouteClass::HostSubnet,
            ),
        );
        n.finalize();
        (n, tor, spine)
    }

    #[test]
    fn empty_trace_means_zero_everywhere() {
        let (n, tor, _) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        assert_eq!(a.device_coverage(&mut bdd, tor), Some(0.0));
        assert_eq!(
            a.aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true),
            Some(0.0)
        );
    }

    #[test]
    fn marking_everything_gives_full_coverage() {
        let (n, _, _) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let full = bdd.full();
        for (d, _) in n.topology().devices() {
            trace.add_packets(&mut bdd, Location::device(d), full);
        }
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        for agg in [
            Aggregator::Mean,
            Aggregator::Weighted,
            Aggregator::Fractional,
        ] {
            assert_eq!(a.aggregate_rules(&mut bdd, agg, |_, _| true), Some(1.0));
            assert_eq!(a.aggregate_devices(&mut bdd, agg, |_, _| true), Some(1.0));
        }
    }

    #[test]
    fn monotonicity_adding_marks_never_decreases_metrics() {
        let (n, tor, _) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let p25 = header::dst_in(&mut bdd, &"10.0.0.0/25".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(tor), p25);
        let before = {
            let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
            (
                a.aggregate_rules(&mut bdd, Aggregator::Weighted, |_, _| true)
                    .unwrap(),
                a.aggregate_devices(&mut bdd, Aggregator::Fractional, |_, _| true)
                    .unwrap(),
            )
        };
        // Add more marks (a superset situation).
        let deflt = header::dst_in(&mut bdd, &"64.0.0.0/2".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(tor), deflt);
        let after = {
            let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
            (
                a.aggregate_rules(&mut bdd, Aggregator::Weighted, |_, _| true)
                    .unwrap(),
                a.aggregate_devices(&mut bdd, Aggregator::Fractional, |_, _| true)
                    .unwrap(),
            )
        };
        assert!(after.0 >= before.0);
        assert!(after.1 >= before.1);
    }

    #[test]
    fn boundedness_all_metrics_in_unit_interval() {
        let (n, tor, spine) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let p = header::dst_in(&mut bdd, &"10.0.0.0/26".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(tor), p);
        trace.add_rule(RuleId {
            device: spine,
            index: 0,
        });
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        for (id, _) in n.rules() {
            if let Some(c) = a.rule_coverage(&mut bdd, id) {
                assert!((0.0..=1.0).contains(&c));
            }
        }
        for (d, _) in n.topology().devices() {
            if let Some(c) = a.device_coverage(&mut bdd, d) {
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    #[test]
    fn fused_device_coverage_agrees_with_framework_spec() {
        let (n, tor, _) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let p = header::dst_in(&mut bdd, &"10.0.0.0/25".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(tor), p);
        trace.add_rule(RuleId {
            device: tor,
            index: 1,
        });
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        let fused = a.device_coverage(&mut bdd, tor).unwrap();
        let spec = components::device_spec(&n, &ms, tor);
        let generic = spec.eval(&mut bdd, &n, &ms, a.covered_sets()).unwrap();
        assert!(
            (fused - generic).abs() < 1e-12,
            "fused={fused} generic={generic}"
        );
    }

    #[test]
    fn fused_rule_coverage_agrees_with_framework_spec() {
        let (n, tor, _) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let p = header::dst_in(&mut bdd, &"10.0.0.64/26".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(tor), p);
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        let id = RuleId {
            device: tor,
            index: 0,
        };
        let fused = a.rule_coverage(&mut bdd, id).unwrap();
        let spec = components::rule_spec(&ms, id);
        let generic = spec.eval(&mut bdd, &n, &ms, a.covered_sets()).unwrap();
        assert!((fused - generic).abs() < 1e-12);
    }

    #[test]
    fn out_iface_coverage_follows_its_rules() {
        let (n, tor, spine) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        trace.add_rule(RuleId {
            device: tor,
            index: 1,
        }); // default via uplink
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        // Uplink (iface 1 on tor): fully covered.
        let topo = n.topology();
        let uplink = topo
            .device_ifaces(tor)
            .find(|(_, f)| f.kind == IfaceKind::P2p)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(a.out_iface_coverage(&mut bdd, uplink), Some(1.0));
        // Spine's downlink: no coverage.
        let down = topo
            .device_ifaces(spine)
            .find(|(_, f)| f.kind == IfaceKind::P2p)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(a.out_iface_coverage(&mut bdd, down), Some(0.0));
    }

    #[test]
    fn in_iface_coverage_needs_ingress_marks() {
        let (n, tor, spine) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let topo = n.topology();
        let spine_in = topo
            .device_ifaces(spine)
            .find(|(_, f)| f.kind == IfaceKind::P2p)
            .map(|(id, _)| id)
            .unwrap();
        // Device-level marks at spine: in-iface coverage stays 0.
        let mut t1 = CoverageTrace::new();
        let full = bdd.full();
        t1.add_packets(&mut bdd, Location::device(spine), full);
        let a1 = Analyzer::new(&n, &ms, &t1, &mut bdd);
        assert_eq!(a1.in_iface_coverage(&mut bdd, spine_in), Some(0.0));
        // Ingress-tagged marks: covered.
        let mut t2 = CoverageTrace::new();
        t2.add_packets(&mut bdd, Location::at(spine, spine_in), full);
        let a2 = Analyzer::new(&n, &ms, &t2, &mut bdd);
        assert_eq!(a2.in_iface_coverage(&mut bdd, spine_in), Some(1.0));
        let _ = tor;
    }

    #[test]
    fn aggregate_in_ifaces_tracks_ingress_marks() {
        let (n, tor, spine) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let topo = n.topology();
        let spine_in = topo
            .device_ifaces(spine)
            .find(|(_, f)| f.kind == IfaceKind::P2p)
            .map(|(id, _)| id)
            .unwrap();
        // No ingress-tagged marks: all incoming coverage zero.
        let t0 = CoverageTrace::new();
        let a0 = Analyzer::new(&n, &ms, &t0, &mut bdd);
        assert_eq!(
            a0.aggregate_in_ifaces(&mut bdd, Aggregator::Fractional, |_, _| true),
            Some(0.0)
        );
        // Mark everything arriving on the spine's ingress: only that
        // iface becomes covered.
        let mut t1 = CoverageTrace::new();
        let full = bdd.full();
        t1.add_packets(&mut bdd, Location::at(spine, spine_in), full);
        let a1 = Analyzer::new(&n, &ms, &t1, &mut bdd);
        let frac = a1
            .aggregate_in_ifaces(&mut bdd, Aggregator::Fractional, |_, _| true)
            .unwrap();
        // Interfaces: tor hosts, tor uplink, spine downlink = 3; one hit.
        assert!((frac - 1.0 / 3.0).abs() < 1e-12, "got {frac}");
        assert_eq!(a1.in_iface_coverage(&mut bdd, spine_in), Some(1.0));
        let _ = tor;
    }

    #[test]
    fn role_metrics_group_by_role() {
        let (n, tor, _) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let full = bdd.full();
        trace.add_packets(&mut bdd, Location::device(tor), full);
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        let tor_m = a.role_metrics(&mut bdd, Role::Tor);
        let spine_m = a.role_metrics(&mut bdd, Role::Spine);
        assert_eq!(tor_m.device_fractional, Some(1.0));
        assert_eq!(tor_m.rule_fractional, Some(1.0));
        assert_eq!(spine_m.device_fractional, Some(0.0));
        // No Border devices at all: vacuous.
        let none = a.role_metrics(&mut bdd, Role::Border);
        assert_eq!(none.device_fractional, None);
    }

    #[test]
    fn filters_zoom_in_on_subsets() {
        let (n, tor, spine) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let full = bdd.full();
        trace.add_packets(&mut bdd, Location::device(tor), full);
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        // Filter to spine only: untested.
        let spine_only = a
            .aggregate_devices(&mut bdd, Aggregator::Fractional, |id, _| id == spine)
            .unwrap();
        assert_eq!(spine_only, 0.0);
        // Filter by class: default routes fully tested, host subnets too
        // (everything at tor was marked).
        let defaults = a
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, r| {
                r.class == RouteClass::StaticDefault
            })
            .unwrap();
        assert_eq!(defaults, 1.0);
    }

    #[test]
    fn measure_and_combinator_are_reexported_for_custom_metrics() {
        // Smoke-test that the programmable layer is usable from outside.
        let spec = crate::framework::ComponentSpec {
            strings: vec![],
            measure: Measure::HitOrMiss,
            combinator: Combinator::Mean,
        };
        assert!(spec.strings.is_empty());
    }
}
