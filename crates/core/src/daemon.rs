//! Synchronous HTTP/JSON front end for the [`CoverageEngine`].
//!
//! A deliberately small, dependency-free server: a blocking accept loop
//! over [`std::net::TcpListener`], one request per connection
//! (`Connection: close`), hand-rolled HTTP/1.1 framing, and
//! [`netobs::json`] for request bodies. No async runtime — coverage
//! queries are CPU-bound BDD work, so a thread pool would only add
//! contention on the single shared manager.
//!
//! Endpoints:
//!
//! | method | path | query/body | answer |
//! |--------|------|------------|--------|
//! | GET  | `/covers`      | `rule=<dev>.<idx>`          | coverage of one rule (LRU-cached) |
//! | GET  | `/config-coverage` | optional `construct=<wire id>` | config-level coverage summary, or one construct's drill-down |
//! | GET  | `/metrics`     | —                           | headline metrics, engine state, netobs snapshots |
//! | GET  | `/delta-since` | `trace=<version>`           | deltas applied after that engine version |
//! | POST | `/delta`       | JSON delta document         | applies a rule/test/topology delta |
//! | POST | `/autogen`     | optional `{"seed","budget"}` | runs one coverage-guided generation round |
//! | POST | `/shutdown`    | —                           | acknowledges, then the serve loop exits |
//!
//! The parsing and handling layers are pure functions over [`Request`]
//! and [`Response`] so they are testable without sockets; only
//! [`serve`] and the [`http_get`]/[`http_post`] client helpers touch
//! the network.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

use netbdd::PortableBdd;
use netmodel::provenance::Construct;
use netmodel::topology::DeviceId;
use netmodel::{Action, IfaceId, Location, MatchFields, Prefix, RouteClass, Rule, RuleId};
use netobs::json::{self, Json};

use crate::engine::{CoverageEngine, DeltaRecord, EngineError};
use crate::testgen::{autogen, GenConfig};
use crate::trace::PortableTrace;

/// A parsed HTTP request: method, path, decoded query pairs, body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The path without the query string.
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// The request body (empty when absent).
    pub body: String,
}

impl Request {
    /// Build a request from a method, a target (`/path?k=v`), and a body.
    pub fn new(method: &str, target: &str, body: &str) -> Request {
        let (path, qs) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let query = qs
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (percent_decode(k), percent_decode(v)),
                None => (percent_decode(kv), String::new()),
            })
            .collect();
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query,
            body: body.to_string(),
        }
    }

    /// First value of query parameter `name`.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response: status code plus a JSON body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl Response {
    fn ok(body: String) -> Response {
        Response { status: 200, body }
    }

    fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            body: format!("{{\"error\":{}}}", jstr(message)),
        }
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 3 <= bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

// ----- JSON emission (the parser in netobs::json is read-only) -----------

/// A JSON string literal (quoted, escaped).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number (`f64` displays as `1` for `1.0`, which is valid JSON).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// `null` for `None`.
fn jopt(x: Option<f64>) -> String {
    x.map(jnum).unwrap_or_else(|| "null".to_string())
}

// ----- wire decoding ------------------------------------------------------

fn num_u32(j: Option<&Json>, what: &str) -> Result<u32, String> {
    let n = j
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what} must be a number"))?;
    if !(0.0..=u32::MAX as f64).contains(&n) || n.fract() != 0.0 {
        return Err(format!("{what} out of range: {n}"));
    }
    Ok(n as u32)
}

/// Non-negative integer as u64. JSON numbers ride through f64, so only
/// values up to 2^53 round-trip exactly — plenty for a seed knob.
fn num_u64(j: Option<&Json>, what: &str) -> Result<u64, String> {
    let n = j
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what} must be a number"))?;
    if !(0.0..=(1u64 << 53) as f64).contains(&n) || n.fract() != 0.0 {
        return Err(format!("{what} out of range: {n}"));
    }
    Ok(n as u64)
}

/// Parse a rule id of the form `<device>.<index>` or `r<device>.<index>`.
pub fn parse_rule_id(s: &str) -> Option<RuleId> {
    let s = s.strip_prefix('r').unwrap_or(s);
    let (d, i) = s.split_once('.')?;
    Some(RuleId {
        device: DeviceId(d.parse().ok()?),
        index: i.parse().ok()?,
    })
}

/// Decode a rule from its JSON wire form:
/// `{"dst": "10.0.0.0/24", "out_ifaces": [3], "in_iface": 2, "class": "other"}`.
/// Every field is optional; empty `out_ifaces` means drop.
pub fn decode_rule(j: &Json) -> Result<Rule, String> {
    let dst = match j.get("dst") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let s = v.as_str().ok_or("dst must be a prefix string")?;
            Some(s.parse::<Prefix>().map_err(|e| format!("bad dst: {e}"))?)
        }
    };
    let in_iface = match j.get("in_iface") {
        None | Some(Json::Null) => None,
        v => Some(IfaceId(num_u32(v, "in_iface")?)),
    };
    let mut out_ifaces = Vec::new();
    if let Some(arr) = j.get("out_ifaces") {
        for v in arr.as_array().ok_or("out_ifaces must be an array")? {
            out_ifaces.push(IfaceId(num_u32(Some(v), "out_ifaces entry")?));
        }
    }
    let class = match j.get("class").and_then(Json::as_str) {
        None => RouteClass::Other,
        Some("static-default") => RouteClass::StaticDefault,
        Some("bgp-default") => RouteClass::BgpDefault,
        Some("host-subnet") => RouteClass::HostSubnet,
        Some("loopback") => RouteClass::Loopback,
        Some("connected") => RouteClass::Connected,
        Some("wan") => RouteClass::Wan,
        Some("other") => RouteClass::Other,
        Some(other) => return Err(format!("unknown route class {other:?}")),
    };
    Ok(Rule {
        matches: MatchFields {
            dst,
            in_iface,
            ..MatchFields::default()
        },
        action: if out_ifaces.is_empty() {
            Action::Drop
        } else {
            Action::Forward(out_ifaces)
        },
        class,
    })
}

/// Decode a portable trace from its JSON wire form (see
/// [`trace_to_json`] for the encoder). Structural validation of the
/// packet-set snapshots happens later, in
/// [`PortableTrace::try_import`] — this only checks JSON shape.
pub fn decode_trace(j: &Json) -> Result<PortableTrace, String> {
    let mut packets = Vec::new();
    if let Some(arr) = j.get("packets") {
        for p in arr.as_array().ok_or("packets must be an array")? {
            let device = DeviceId(num_u32(p.get("device"), "packet device")?);
            let loc = match p.get("iface") {
                None | Some(Json::Null) => Location::device(device),
                v => Location::at(device, IfaceId(num_u32(v, "packet iface")?)),
            };
            let mut nodes = Vec::new();
            if let Some(ns) = p.get("nodes") {
                for n in ns.as_array().ok_or("nodes must be an array")? {
                    let triple = n.as_array().ok_or("node must be [var, lo, hi]")?;
                    if triple.len() != 3 {
                        return Err("node must be [var, lo, hi]".into());
                    }
                    nodes.push((
                        num_u32(Some(&triple[0]), "node var")?,
                        num_u32(Some(&triple[1]), "node lo")?,
                        num_u32(Some(&triple[2]), "node hi")?,
                    ));
                }
            }
            let root = num_u32(p.get("root"), "packet root")?;
            packets.push((loc, PortableBdd::from_parts(nodes, root)));
        }
    }
    let mut rules = std::collections::BTreeSet::new();
    if let Some(arr) = j.get("rules") {
        for r in arr.as_array().ok_or("rules must be an array")? {
            let pair = r.as_array().ok_or("rule mark must be [device, index]")?;
            if pair.len() != 2 {
                return Err("rule mark must be [device, index]".into());
            }
            rules.insert(RuleId {
                device: DeviceId(num_u32(Some(&pair[0]), "rule mark device")?),
                index: num_u32(Some(&pair[1]), "rule mark index")?,
            });
        }
    }
    Ok(PortableTrace::from_parts(packets, rules))
}

/// Encode a portable trace as the JSON wire form [`decode_trace`] reads.
pub fn trace_to_json(t: &PortableTrace) -> String {
    let packets: Vec<String> = t
        .packets()
        .iter()
        .map(|(loc, p)| {
            let nodes: Vec<String> = p
                .nodes()
                .iter()
                .map(|&(v, lo, hi)| format!("[{v},{lo},{hi}]"))
                .collect();
            let iface = match loc.iface {
                Some(i) => i.0.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"device\":{},\"iface\":{},\"nodes\":[{}],\"root\":{}}}",
                loc.device.0,
                iface,
                nodes.join(","),
                p.root()
            )
        })
        .collect();
    let rules: Vec<String> = t
        .rules()
        .iter()
        .map(|id| format!("[{},{}]", id.device.0, id.index))
        .collect();
    format!(
        "{{\"packets\":[{}],\"rules\":[{}]}}",
        packets.join(","),
        rules.join(",")
    )
}

// ----- handlers -----------------------------------------------------------

fn engine_error_status(e: &EngineError) -> u16 {
    match e {
        EngineError::UnknownDevice { .. }
        | EngineError::UnknownTest { .. }
        | EngineError::BadRuleIndex { .. } => 404,
        EngineError::Routing(
            routing::RibError::UnknownDevice { .. } | routing::RibError::UnknownLink { .. },
        ) => 404,
        _ => 400,
    }
}

fn handle_covers(engine: &mut CoverageEngine, req: &Request) -> Response {
    let raw = match req.param("rule") {
        Some(r) => r,
        None => return Response::error(400, "missing query parameter: rule"),
    };
    let id = match parse_rule_id(raw) {
        Some(id) => id,
        None => return Response::error(400, "rule must look like <device>.<index>"),
    };
    let key = format!("covers:{}.{}", id.device.0, id.index);
    if let Some(cached) = engine.query_cache().get(&key) {
        return Response::ok(cached);
    }
    let c = match engine.rule_coverage(id) {
        Ok(c) => c,
        Err(e) => return Response::error(engine_error_status(&e), &e.to_string()),
    };
    let body = format!(
        "{{\"rule\":\"r{}.{}\",\"version\":{},\"match_probability\":{},\"covered_probability\":{},\"coverage\":{},\"exercised\":{}}}",
        id.device.0,
        id.index,
        engine.version(),
        jnum(c.match_probability),
        jnum(c.covered_probability),
        jopt(c.coverage),
        c.exercised
    );
    engine.query_cache().insert(key, body.clone());
    Response::ok(body)
}

/// `GET /config-coverage`: the headline config-level summary, or — with
/// `?construct=<wire id>` — one construct's drill-down including which
/// registered tests exercise it. Both forms ride the query LRU, keyed
/// like `/covers`, so deltas invalidate them automatically.
fn handle_config_coverage(engine: &mut CoverageEngine, req: &Request) -> Response {
    match req.param("construct") {
        None => {
            let key = "config-coverage".to_string();
            if let Some(cached) = engine.query_cache().get(&key) {
                return Response::ok(cached);
            }
            let cov = match engine.config_coverage() {
                Ok(c) => c,
                Err(e) => return Response::error(engine_error_status(&e), &e.to_string()),
            };
            let uncovered: Vec<String> = cov
                .uncovered()
                .map(|c| jstr(&c.construct.wire_id()))
                .collect();
            let unreferenced: Vec<String> = cov
                .unreferenced
                .iter()
                .map(|c| jstr(&c.wire_id()))
                .collect();
            let body = format!(
                "{{\"version\":{},\"coverable\":{},\"covered\":{},\"fractional\":{},\
                 \"uncovered\":[{}],\"unreferenced\":[{}]}}",
                engine.version(),
                cov.coverable(),
                cov.covered_count(),
                jopt(cov.fractional()),
                uncovered.join(","),
                unreferenced.join(",")
            );
            engine.query_cache().insert(key, body.clone());
            Response::ok(body)
        }
        Some(raw) => {
            let construct = match Construct::parse_wire_id(raw) {
                Some(c) => c,
                None => {
                    return Response::error(
                        400,
                        "construct must be a wire id like session:d0-d4 or orig:d3:10.0.1.0/24",
                    )
                }
            };
            let key = format!("config-coverage:{}", construct.wire_id());
            if let Some(cached) = engine.query_cache().get(&key) {
                return Response::ok(cached);
            }
            let cov = match engine.config_coverage() {
                Ok(c) => c,
                Err(e) => return Response::error(engine_error_status(&e), &e.to_string()),
            };
            let body = match cov.get(&construct) {
                Some(entry) => {
                    let rules: Vec<String> = entry
                        .rules
                        .iter()
                        .map(|id| jstr(&format!("r{}.{}", id.device.0, id.index)))
                        .collect();
                    let tests: Vec<String> = engine
                        .tests_exercising(&entry.rules)
                        .iter()
                        .map(|name| jstr(name))
                        .collect();
                    format!(
                        "{{\"construct\":{},\"version\":{},\"covered\":{},\
                         \"match_probability\":{},\"covered_probability\":{},\"weighted\":{},\
                         \"rules\":[{}],\"tests\":[{}]}}",
                        jstr(&construct.wire_id()),
                        engine.version(),
                        entry.covered,
                        jnum(entry.match_probability),
                        jnum(entry.covered_probability),
                        jopt(entry.weighted()),
                        rules.join(","),
                        tests.join(",")
                    )
                }
                None if cov.unreferenced.contains(&construct) => format!(
                    "{{\"construct\":{},\"version\":{},\"covered\":false,\
                     \"unreferenced\":true,\"rules\":[],\"tests\":[]}}",
                    jstr(&construct.wire_id()),
                    engine.version()
                ),
                None => {
                    return Response::error(
                        404,
                        &format!("no such construct in the current config: {raw}"),
                    )
                }
            };
            engine.query_cache().insert(key, body.clone());
            Response::ok(body)
        }
    }
}

fn handle_metrics(engine: &mut CoverageEngine) -> Response {
    let headline = engine.headline_metrics();
    engine.publish_gauges();
    let stats = engine.query_cache_stats();
    let gauges: Vec<String> = netobs::gauges_snapshot()
        .iter()
        .map(|(k, v)| format!("{}:{}", jstr(k), jnum(*v)))
        .collect();
    let counters: Vec<String> = netobs::counters_snapshot()
        .iter()
        .map(|(k, v)| format!("{}:{}", jstr(k), v))
        .collect();
    let body = format!(
        "{{\"version\":{},\"devices\":{},\"rules\":{},\"tests\":{},\
         \"headline\":{{\"rule_fractional\":{},\"rule_weighted\":{},\"device_fractional\":{}}},\
         \"query_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{},\"capacity\":{}}},\
         \"gauges\":{{{}}},\"counters\":{{{}}}}}",
        engine.version(),
        engine.network().topology().device_count(),
        engine.network().rule_count(),
        engine.test_names().count(),
        jopt(headline.rule_fractional),
        jopt(headline.rule_weighted),
        jopt(headline.device_fractional),
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.entries,
        stats.capacity,
        gauges.join(","),
        counters.join(",")
    );
    Response::ok(body)
}

fn record_json(r: &DeltaRecord) -> String {
    let devices: Vec<String> = r.devices.iter().map(|d| d.0.to_string()).collect();
    format!(
        "{{\"version\":{},\"kind\":{},\"detail\":{},\"devices\":[{}]}}",
        r.version,
        jstr(r.kind.as_str()),
        jstr(&r.detail),
        devices.join(",")
    )
}

fn handle_delta_since(engine: &mut CoverageEngine, req: &Request) -> Response {
    let since: u64 = match req.param("trace").map(str::parse) {
        Some(Ok(v)) => v,
        _ => return Response::error(400, "missing or non-numeric query parameter: trace"),
    };
    let deltas: Vec<String> = engine.deltas_since(since).iter().map(record_json).collect();
    Response::ok(format!(
        "{{\"since\":{},\"version\":{},\"deltas\":[{}]}}",
        since,
        engine.version(),
        deltas.join(",")
    ))
}

fn delta_applied(engine: &CoverageEngine, detail: &str, devices: &[DeviceId]) -> Response {
    let devices: Vec<String> = devices.iter().map(|d| d.0.to_string()).collect();
    Response::ok(format!(
        "{{\"ok\":true,\"version\":{},\"detail\":{},\"devices\":[{}]}}",
        engine.version(),
        jstr(detail),
        devices.join(",")
    ))
}

fn handle_delta(engine: &mut CoverageEngine, req: &Request) -> Response {
    let doc = match json::parse(&req.body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("malformed JSON body: {e}")),
    };
    let kind = match doc.get("kind").and_then(Json::as_str) {
        Some(k) => k,
        None => return Response::error(400, "missing delta kind"),
    };
    let outcome = match kind {
        "rule-insert" => {
            let device = match num_u32(doc.get("device"), "device") {
                Ok(d) => DeviceId(d),
                Err(e) => return Response::error(400, &e),
            };
            let rule = match doc.get("rule") {
                None => return Response::error(400, "missing rule"),
                Some(j) => match decode_rule(j) {
                    Ok(r) => r,
                    Err(e) => return Response::error(400, &e),
                },
            };
            engine
                .insert_rule(device, rule)
                .map(|id| (format!("r{}.{}", id.device.0, id.index), vec![device]))
        }
        "rule-withdraw" => {
            let id = match (
                num_u32(doc.get("device"), "device"),
                num_u32(doc.get("index"), "index"),
            ) {
                (Ok(d), Ok(i)) => RuleId {
                    device: DeviceId(d),
                    index: i,
                },
                (Err(e), _) | (_, Err(e)) => return Response::error(400, &e),
            };
            engine
                .withdraw_rule(id)
                .map(|_| (format!("r{}.{}", id.device.0, id.index), vec![id.device]))
        }
        "test-add" => {
            let name = match doc.get("name").and_then(Json::as_str) {
                Some(n) => n.to_string(),
                None => return Response::error(400, "missing test name"),
            };
            let trace = match doc
                .get("trace")
                .ok_or("missing trace".to_string())
                .and_then(decode_trace)
            {
                Ok(t) => t,
                Err(e) => return Response::error(400, &e),
            };
            engine
                .add_test(&name, &trace)
                .map(|devices| (name, devices))
        }
        "test-remove" => {
            let name = match doc.get("name").and_then(Json::as_str) {
                Some(n) => n.to_string(),
                None => return Response::error(400, "missing test name"),
            };
            engine.remove_test(&name).map(|devices| (name, devices))
        }
        "link-down" | "link-up" => {
            let (a, b) = match (num_u32(doc.get("a"), "a"), num_u32(doc.get("b"), "b")) {
                (Ok(a), Ok(b)) => (DeviceId(a), DeviceId(b)),
                (Err(e), _) | (_, Err(e)) => return Response::error(400, &e),
            };
            let delta = if kind == "link-down" {
                routing::TopologyDelta::LinkDown { a, b }
            } else {
                routing::TopologyDelta::LinkUp { a, b }
            };
            engine
                .apply_topology(&delta)
                .map(|devices| (format!("link:{}-{}", a.0, b.0), devices))
        }
        "device-down" | "device-up" => {
            let device = match num_u32(doc.get("device"), "device") {
                Ok(d) => DeviceId(d),
                Err(e) => return Response::error(400, &e),
            };
            let delta = if kind == "device-down" {
                routing::TopologyDelta::DeviceDown { device }
            } else {
                routing::TopologyDelta::DeviceUp { device }
            };
            engine
                .apply_topology(&delta)
                .map(|devices| (format!("device:{}", device.0), devices))
        }
        other => return Response::error(400, &format!("unknown delta kind {other:?}")),
    };
    match outcome {
        Ok((detail, devices)) => delta_applied(engine, &detail, &devices),
        Err(e) => Response::error(engine_error_status(&e), &e.to_string()),
    }
}

/// One round of coverage-guided generation ([`autogen`]), bounded so an
/// HTTP request stays an interactive operation: the caller re-posts to
/// iterate, observing the coverage delta between rounds. The optional
/// JSON body overrides the witness seed and test budget.
fn handle_autogen(engine: &mut CoverageEngine, req: &Request) -> Response {
    let mut cfg = GenConfig {
        budget: 64,
        max_rounds: 1,
        ..GenConfig::default()
    };
    if !req.body.trim().is_empty() {
        let doc = match json::parse(&req.body) {
            Ok(doc) => doc,
            Err(e) => return Response::error(400, &format!("malformed JSON body: {e}")),
        };
        if let Some(j) = doc.get("seed") {
            match num_u64(Some(j), "seed") {
                Ok(s) => cfg.seed = s,
                Err(e) => return Response::error(400, &e),
            }
        }
        if let Some(j) = doc.get("budget") {
            match num_u32(Some(j), "budget") {
                Ok(b) => cfg.budget = b as usize,
                Err(e) => return Response::error(400, &e),
            }
        }
    }
    let report = autogen(engine, &cfg);
    let tests: Vec<String> = report
        .tests
        .iter()
        .map(|t| {
            format!(
                "{{\"name\":{},\"kind\":{},\"spec\":{}}}",
                jstr(&t.name),
                jstr(t.spec.kind()),
                jstr(&t.spec.to_string())
            )
        })
        .collect();
    let gaps: Vec<String> = report
        .permanent_gaps
        .iter()
        .map(|id| jstr(&format!("r{}.{}", id.device.0, id.index)))
        .collect();
    Response::ok(format!(
        "{{\"ok\":true,\"version\":{},\"rounds\":{},\"converged\":{},\"budget_exhausted\":{},\
         \"tests\":[{}],\"permanent_gaps\":[{}],\
         \"coverage\":{{\"before\":{},\"after\":{}}}}}",
        engine.version(),
        report.rounds,
        report.converged,
        report.budget_exhausted,
        tests.join(","),
        gaps.join(","),
        headline_json(&report.before),
        headline_json(&report.after),
    ))
}

fn headline_json(h: &crate::engine::HeadlineMetrics) -> String {
    format!(
        "{{\"rule_fractional\":{},\"rule_weighted\":{},\"device_fractional\":{}}}",
        jopt(h.rule_fractional),
        jopt(h.rule_weighted),
        jopt(h.device_fractional)
    )
}

/// Dispatch one request against the engine. Pure with respect to I/O:
/// this is the function the daemon tests drive without sockets.
pub fn handle(engine: &mut CoverageEngine, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/covers") => handle_covers(engine, req),
        ("GET", "/config-coverage") => handle_config_coverage(engine, req),
        ("GET", "/metrics") => handle_metrics(engine),
        ("GET", "/delta-since") => handle_delta_since(engine, req),
        ("POST", "/delta") => handle_delta(engine, req),
        ("POST", "/autogen") => handle_autogen(engine, req),
        ("POST", "/shutdown") => {
            Response::ok(format!("{{\"ok\":true,\"version\":{}}}", engine.version()))
        }
        (
            _,
            "/covers" | "/config-coverage" | "/metrics" | "/delta-since" | "/delta" | "/autogen"
            | "/shutdown",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, &format!("no such endpoint: {}", req.path)),
    }
}

// ----- wire framing -------------------------------------------------------

/// Read one HTTP/1.1 request from a stream (request line, headers,
/// `Content-Length` body).
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("/").to_string();
    let mut content_len = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_len = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_len];
    reader.read_exact(&mut body)?;
    Ok(Request::new(
        &method,
        &target,
        &String::from_utf8_lossy(&body),
    ))
}

/// Write a [`Response`] as an HTTP/1.1 message.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        resp.status,
        reason,
        resp.body.len(),
        resp.body
    )?;
    stream.flush()
}

/// Serve requests until a `POST /shutdown` arrives (which is answered
/// before the loop exits). One request per connection, handled on the
/// accepting thread.
pub fn serve(engine: &mut CoverageEngine, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let req = match read_request(&mut stream) {
            Ok(r) => r,
            Err(_) => continue,
        };
        let shutdown = req.method == "POST" && req.path == "/shutdown";
        let resp = handle(engine, &req);
        let _ = write_response(&mut stream, &resp);
        if shutdown {
            return Ok(());
        }
    }
    Ok(())
}

// ----- built-in client ----------------------------------------------------

/// One HTTP round trip; returns `(status, body)`. The daemon's own
/// client, so scripts and CI never need `curl`.
pub fn http_request(
    addr: &str,
    method: &str,
    target: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// `GET` against a running daemon.
pub fn http_get(addr: &str, target: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "GET", target, "")
}

/// `POST` against a running daemon.
pub fn http_post(addr: &str, target: &str, body: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "POST", target, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use netbdd::Bdd;
    use netmodel::header;
    use netmodel::topology::{IfaceKind, Role, Topology};
    use netmodel::Network;

    fn build_engine() -> CoverageEngine {
        let mut t = Topology::new();
        let tor = t.add_device("tor", Role::Tor);
        let hosts = t.add_iface(tor, "hosts", IfaceKind::Host);
        let up = t.add_iface(tor, "up", IfaceKind::External);
        let mut n = Network::new(t);
        n.add_rule(
            tor,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![hosts],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            tor,
            Rule::forward(Prefix::v4_default(), vec![up], RouteClass::StaticDefault),
        );
        n.finalize();
        CoverageEngine::new(n, 1)
    }

    fn mark_trace_json(device: u32, prefix: &str) -> String {
        let mut bdd = Bdd::new();
        let mut t = CoverageTrace::new();
        let set = header::dst_in(&mut bdd, &prefix.parse().unwrap());
        t.add_packets(&mut bdd, Location::device(DeviceId(device)), set);
        trace_to_json(&t.export(&bdd))
    }

    /// A routed engine (provenance-capable): tor originates 10.0.0.0/24,
    /// spine learns it over the session; a dark null static sits on the
    /// spine.
    fn build_routed_engine() -> CoverageEngine {
        let mut topo = Topology::new();
        let tor = topo.add_device("tor", Role::Tor);
        let spine = topo.add_device("spine", Role::Spine);
        let hosts = topo.add_iface(tor, "hosts", IfaceKind::Host);
        topo.add_link(tor, spine);
        let mut rb = routing::RibBuilder::new(topo);
        rb.set_tier(tor, 0);
        rb.set_tier(spine, 1);
        rb.originate(routing::Origination::new(
            tor,
            "10.0.0.0/24".parse().unwrap(),
            RouteClass::HostSubnet,
            Some(hosts),
            routing::Scope::All,
        ));
        rb.add_static(routing::StaticRoute {
            device: spine,
            prefix: "192.0.2.0/24".parse().unwrap(),
            target: routing::StaticTarget::Null,
            class: RouteClass::Other,
        });
        let (rt, net) = rb.into_engine().unwrap();
        let mut engine = CoverageEngine::new(net, 1);
        engine.attach_routing(rt);
        engine
    }

    #[test]
    fn config_coverage_summary_and_drilldown() {
        let mut engine = build_routed_engine();
        // Unattached engines answer with a named error.
        let mut bare = build_engine();
        let resp = handle(&mut bare, &Request::new("GET", "/config-coverage", ""));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("no routing engine"), "{}", resp.body);

        // Empty suite: everything coverable, nothing covered.
        let resp = handle(&mut engine, &Request::new("GET", "/config-coverage", ""));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = json::parse(&resp.body).unwrap();
        let coverable = doc.get("coverable").unwrap().as_f64().unwrap();
        assert!(coverable >= 3.0, "{}", resp.body); // orig + session + static
        assert_eq!(doc.get("covered").unwrap().as_f64(), Some(0.0));
        assert_eq!(doc.get("fractional").unwrap().as_f64(), Some(0.0));

        // Register a probe at the spine: session + origination flip.
        let body = format!(
            "{{\"kind\":\"test-add\",\"name\":\"spine-probe\",\"trace\":{}}}",
            mark_trace_json(1, "10.0.0.0/24")
        );
        let resp = handle(&mut engine, &Request::new("POST", "/delta", &body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let resp = handle(&mut engine, &Request::new("GET", "/config-coverage", ""));
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("covered").unwrap().as_f64(), Some(2.0));
        let uncovered = doc.get("uncovered").unwrap().as_array().unwrap();
        assert!(uncovered
            .iter()
            .any(|u| u.as_str() == Some("static:d1:192.0.2.0/24")));

        // Drill-down: the session names its exercising test.
        let resp = handle(
            &mut engine,
            &Request::new("GET", "/config-coverage?construct=session:d0-d1", ""),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("covered").unwrap().as_bool(), Some(true));
        let tests = doc.get("tests").unwrap().as_array().unwrap();
        assert_eq!(tests.len(), 1);
        assert_eq!(tests[0].as_str(), Some("spine-probe"));

        // The dark static's drill-down is uncovered with no tests.
        let resp = handle(
            &mut engine,
            &Request::new(
                "GET",
                "/config-coverage?construct=static:d1:192.0.2.0%2F24",
                "",
            ),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("covered").unwrap().as_bool(), Some(false));
        assert!(doc.get("tests").unwrap().as_array().unwrap().is_empty());

        // Malformed and unknown constructs are named errors.
        assert_eq!(
            handle(
                &mut engine,
                &Request::new("GET", "/config-coverage?construct=nope", "")
            )
            .status,
            400
        );
        assert_eq!(
            handle(
                &mut engine,
                &Request::new("GET", "/config-coverage?construct=session:d7-d9", "")
            )
            .status,
            404
        );
        assert_eq!(
            handle(&mut engine, &Request::new("POST", "/config-coverage", "")).status,
            405
        );
    }

    #[test]
    fn config_coverage_is_cached_and_deltas_invalidate_it() {
        let mut engine = build_routed_engine();
        let req = Request::new("GET", "/config-coverage", "");
        let cold = handle(&mut engine, &req);
        assert_eq!(cold.status, 200, "{}", cold.body);
        let warm = handle(&mut engine, &req);
        assert_eq!(warm, cold);
        assert!(engine.query_cache_stats().hits >= 1);
        // A topology delta must flush the cached summary: the severed
        // session leaves the coverable universe.
        let resp = handle(
            &mut engine,
            &Request::new("POST", "/delta", r#"{"kind":"link-down","a":0,"b":1}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let degraded = handle(&mut engine, &req);
        assert_ne!(degraded.body, cold.body);
        assert!(
            !degraded.body.contains("session:d0-d1"),
            "{}",
            degraded.body
        );
    }

    #[test]
    fn request_parsing_splits_target_and_decodes() {
        let r = Request::new("GET", "/covers?rule=r0.1&x=a%20b+c", "");
        assert_eq!(r.path, "/covers");
        assert_eq!(r.param("rule"), Some("r0.1"));
        assert_eq!(r.param("x"), Some("a b c"));
        assert_eq!(r.param("missing"), None);
    }

    #[test]
    fn rule_id_parses_both_spellings() {
        let id = RuleId {
            device: DeviceId(3),
            index: 2,
        };
        assert_eq!(parse_rule_id("3.2"), Some(id));
        assert_eq!(parse_rule_id("r3.2"), Some(id));
        assert_eq!(parse_rule_id("r3"), None);
        assert_eq!(parse_rule_id("a.b"), None);
    }

    #[test]
    fn covers_is_cached_and_warm_answers_hit_the_lru() {
        let mut engine = build_engine();
        let req = Request::new("GET", "/covers?rule=0.0", "");
        let cold = handle(&mut engine, &req);
        assert_eq!(cold.status, 200);
        let stats = engine.query_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let warm = handle(&mut engine, &req);
        assert_eq!(warm, cold);
        let stats = engine.query_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn rule_delta_changes_the_covers_answer_and_flushes_the_cache() {
        let mut engine = build_engine();
        let covers = Request::new("GET", "/covers?rule=0.0", "");
        let before = handle(&mut engine, &covers);
        let delta = Request::new(
            "POST",
            "/delta",
            r#"{"kind":"rule-insert","device":0,"rule":{"dst":"10.0.0.7/32"}}"#,
        );
        let applied = handle(&mut engine, &delta);
        assert_eq!(applied.status, 200, "{}", applied.body);
        assert!(applied.body.contains("\"detail\":\"r0.0\""));
        // The /32 outranks the /24, so rule 0.0 now *is* the new rule:
        // the answer must change, and it must be a fresh (miss) compute.
        let after = handle(&mut engine, &covers);
        assert_ne!(after.body, before.body);
        let stats = engine.query_cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn test_delta_roundtrip_over_the_wire_format() {
        let mut engine = build_engine();
        let body = format!(
            "{{\"kind\":\"test-add\",\"name\":\"t1\",\"trace\":{}}}",
            mark_trace_json(0, "10.0.0.0/24")
        );
        let resp = handle(&mut engine, &Request::new("POST", "/delta", &body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"devices\":[0]"));
        let covers = handle(&mut engine, &Request::new("GET", "/covers?rule=0.0", ""));
        assert!(covers.body.contains("\"coverage\":1,"), "{}", covers.body);
        let resp = handle(
            &mut engine,
            &Request::new("POST", "/delta", r#"{"kind":"test-remove","name":"t1"}"#),
        );
        assert_eq!(resp.status, 200);
        let covers = handle(&mut engine, &Request::new("GET", "/covers?rule=0.0", ""));
        assert!(covers.body.contains("\"coverage\":0,"), "{}", covers.body);
    }

    #[test]
    fn test_remove_delta_flushes_the_cache_like_rule_deltas_do() {
        // Regression guard: every delta kind must flush the query cache,
        // not just rule inserts. A stale cached /covers after test-remove
        // would keep reporting coverage the departed test provided.
        let mut engine = build_engine();
        let body = format!(
            "{{\"kind\":\"test-add\",\"name\":\"t1\",\"trace\":{}}}",
            mark_trace_json(0, "10.0.0.0/24")
        );
        handle(&mut engine, &Request::new("POST", "/delta", &body));
        let covers = Request::new("GET", "/covers?rule=0.0", "");
        let with_test = handle(&mut engine, &covers);
        assert!(with_test.body.contains("\"exercised\":true"));
        assert_eq!(engine.query_cache_stats().entries, 1);
        let resp = handle(
            &mut engine,
            &Request::new("POST", "/delta", r#"{"kind":"test-remove","name":"t1"}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        // The delta must have emptied the cache wholesale...
        assert_eq!(engine.query_cache_stats().entries, 0);
        // ...so the next query is a fresh miss with the test's coverage
        // gone, not a stale hit.
        let without_test = handle(&mut engine, &covers);
        assert!(
            without_test.body.contains("\"exercised\":false"),
            "{}",
            without_test.body
        );
        let stats = engine.query_cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn gc_flushes_the_cache_and_preserves_covers_answers() {
        // Regression guard for the GC arm: a collection relocates every
        // live ref, so cached responses must be dropped — but the
        // recomputed answer over relocated refs must come out identical.
        let mut engine = build_engine();
        let body = format!(
            "{{\"kind\":\"test-add\",\"name\":\"t1\",\"trace\":{}}}",
            mark_trace_json(0, "10.0.0.0/24")
        );
        handle(&mut engine, &Request::new("POST", "/delta", &body));
        let covers = Request::new("GET", "/covers?rule=0.0", "");
        let before = handle(&mut engine, &covers);
        assert_eq!(engine.query_cache_stats().entries, 1);
        let stats = engine.gc();
        assert!(stats.nodes_after <= stats.nodes_before);
        assert_eq!(
            engine.query_cache_stats().entries,
            0,
            "GC must flush the query cache"
        );
        let after = handle(&mut engine, &covers);
        assert_eq!(after, before, "GC relocation changed a /covers answer");
        let stats = engine.query_cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn autogen_endpoint_closes_the_gaps_in_one_round() {
        let mut engine = build_engine();
        let resp = handle(&mut engine, &Request::new("POST", "/autogen", ""));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("converged").unwrap().as_bool(), Some(true));
        // Both FIB rules get their own traceroute (the /24 delivers to
        // hosts, the default exits upstream), registered as deltas.
        let tests = doc.get("tests").unwrap().as_array().unwrap();
        assert_eq!(tests.len(), 2);
        for t in tests {
            assert_eq!(t.get("kind").unwrap().as_str(), Some("traceroute"));
        }
        assert_eq!(
            doc.get("coverage")
                .unwrap()
                .get("after")
                .unwrap()
                .get("rule_fractional")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(engine.version(), 2);
        // A second round finds nothing left to do.
        let resp = handle(&mut engine, &Request::new("POST", "/autogen", ""));
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("converged").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("rounds").unwrap().as_f64(), Some(0.0));
        assert!(doc.get("tests").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn autogen_body_knobs_are_validated() {
        let mut engine = build_engine();
        let resp = handle(
            &mut engine,
            &Request::new("POST", "/autogen", r#"{"budget":1}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("budget_exhausted").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("tests").unwrap().as_array().unwrap().len(), 1);
        let bad = handle(&mut engine, &Request::new("POST", "/autogen", "{nope"));
        assert_eq!(bad.status, 400);
        let bad = handle(
            &mut engine,
            &Request::new("POST", "/autogen", r#"{"seed":-1}"#),
        );
        assert_eq!(bad.status, 400, "{}", bad.body);
        assert_eq!(
            handle(&mut engine, &Request::new("GET", "/autogen", "")).status,
            405
        );
    }

    #[test]
    fn malformed_trace_snapshot_is_a_400_not_a_panic() {
        let mut engine = build_engine();
        // `root` points past the (empty) node array — exactly the kind of
        // truncated snapshot `try_import` exists to reject.
        let body = r#"{"kind":"test-add","name":"bad","trace":{"packets":[{"device":0,"iface":null,"nodes":[],"root":4}],"rules":[]}}"#;
        let resp = handle(&mut engine, &Request::new("POST", "/delta", body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("malformed trace"), "{}", resp.body);
        assert_eq!(engine.version(), 0);
    }

    #[test]
    fn delta_since_reports_the_tail() {
        let mut engine = build_engine();
        let body = format!(
            "{{\"kind\":\"test-add\",\"name\":\"t1\",\"trace\":{}}}",
            mark_trace_json(0, "10.0.0.0/25")
        );
        handle(&mut engine, &Request::new("POST", "/delta", &body));
        handle(
            &mut engine,
            &Request::new(
                "POST",
                "/delta",
                r#"{"kind":"rule-insert","device":0,"rule":{"dst":"10.1.0.0/16"}}"#,
            ),
        );
        let resp = handle(
            &mut engine,
            &Request::new("GET", "/delta-since?trace=1", ""),
        );
        assert_eq!(resp.status, 200);
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("version").unwrap().as_f64(), Some(2.0));
        let deltas = doc.get("deltas").unwrap().as_array().unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(
            deltas[0].get("kind").unwrap().as_str(),
            Some("rule-inserted")
        );
        let missing = handle(&mut engine, &Request::new("GET", "/delta-since", ""));
        assert_eq!(missing.status, 400);
    }

    #[test]
    fn metrics_body_is_valid_json_with_engine_state() {
        let mut engine = build_engine();
        let resp = handle(&mut engine, &Request::new("GET", "/metrics", ""));
        assert_eq!(resp.status, 200);
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("rules").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            doc.get("headline")
                .unwrap()
                .get("rule_fractional")
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
        assert!(doc.get("query_cache").unwrap().get("capacity").is_some());
    }

    #[test]
    fn unknown_routes_and_methods_are_named() {
        let mut engine = build_engine();
        assert_eq!(
            handle(&mut engine, &Request::new("GET", "/nope", "")).status,
            404
        );
        assert_eq!(
            handle(&mut engine, &Request::new("POST", "/covers", "")).status,
            405
        );
        assert_eq!(
            handle(&mut engine, &Request::new("GET", "/covers?rule=9.0", "")).status,
            404
        );
        assert_eq!(
            handle(&mut engine, &Request::new("GET", "/covers", "")).status,
            400
        );
    }

    #[test]
    fn serve_loop_answers_over_a_real_socket_and_shuts_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let mut engine = build_engine();
            serve(&mut engine, listener).unwrap();
        });
        let (status, body) = http_get(&addr, "/covers?rule=0.1").unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"rule\":\"r0.1\""));
        let (status, _) = http_post(
            &addr,
            "/delta",
            r#"{"kind":"rule-insert","device":0,"rule":{"dst":"10.9.0.0/16"}}"#,
        )
        .unwrap();
        assert_eq!(status, 200);
        let (status, body) = http_post(&addr, "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\":true"));
        server.join().unwrap();
    }
}
