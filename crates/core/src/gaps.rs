//! Gap reports: from "coverage is 62%" to "here is what to test next".
//!
//! The case study's value came from *acting* on coverage data: engineers
//! looked at which rules were untested, recognised the route categories,
//! and wrote tests (§7.2–§7.3). This module automates the first half of
//! that loop: for every under-covered rule it renders the untested
//! packet space as readable header regions and proposes a concrete
//! witness packet that would exercise it — a ready-made traceroute
//! target.

use std::fmt;

use netbdd::Bdd;
use netmodel::header::Packet;
use netmodel::region::{describe_set, Region};
use netmodel::rule::RouteClass;
use netmodel::RuleId;

use crate::analyzer::Analyzer;
use crate::testgen::{rule_seed, seeded_witness, WITNESS_SEED};

/// One under-covered rule with its untested space described.
#[derive(Clone, Debug)]
pub struct GapEntry {
    /// The under-covered rule.
    pub rule: RuleId,
    /// Human-readable name of the rule's device.
    pub device_name: String,
    /// The rule's route class (§7.2 phrases gaps in these terms).
    pub class: RouteClass,
    /// The rule's current coverage in `[0, 1)`.
    pub coverage: f64,
    /// Untested share of the whole packet space (the sort weight).
    pub untested_weight: f64,
    /// The untested packet space, as disjoint regions (bounded).
    pub regions: Vec<Region>,
    /// Whether `regions` covers the untested space completely.
    pub regions_complete: bool,
    /// A concrete packet inside the untested space — inject this at the
    /// rule's device and the rule gets exercised.
    pub witness: Option<Packet>,
}

impl fmt::Display for GapEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {:?} ({:?}, covered {:.1}%)",
            self.device_name,
            self.rule,
            self.class,
            self.coverage * 100.0
        )?;
        for r in &self.regions {
            writeln!(f, "    untested: {r}")?;
        }
        if !self.regions_complete {
            writeln!(f, "    … more regions omitted")?;
        }
        if let Some(w) = &self.witness {
            writeln!(f, "    try: packet {w}")?;
        }
        Ok(())
    }
}

/// A ranked list of testing gaps.
#[derive(Clone, Debug, Default)]
pub struct GapReport {
    /// Gap entries, sorted by descending untested weight.
    pub entries: Vec<GapEntry>,
    /// Number of under-covered rules beyond the report limit.
    pub omitted: usize,
}

impl fmt::Display for GapReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            write!(f, "{e}")?;
        }
        if self.omitted > 0 {
            writeln!(f, "({} further under-covered rules omitted)", self.omitted)?;
        }
        Ok(())
    }
}

impl Analyzer<'_> {
    /// Build a gap report: the `limit` most under-covered rules (ranked
    /// by untested packet-space weight), each described by at most
    /// `regions_per_rule` regions, restricted to rules passing `filter`.
    pub fn gap_report(
        &self,
        bdd: &mut Bdd,
        limit: usize,
        regions_per_rule: usize,
        filter: impl Fn(RuleId, &netmodel::Rule) -> bool,
    ) -> GapReport {
        // Collect (rule, untested set, weights).
        let mut gaps: Vec<(RuleId, netbdd::Ref, f64, f64)> = Vec::new();
        let ids: Vec<(RuleId, RouteClass)> = self
            .network()
            .rules()
            .filter(|(id, r)| filter(*id, r))
            .map(|(id, r)| (id, r.class))
            .collect();
        for (id, _class) in ids {
            let m = self.match_sets().get(id);
            if m.is_false() {
                continue; // shadowed: untestable, not a gap
            }
            let t = self.covered_sets().get(id);
            let untested = bdd.diff(m, t);
            if untested.is_false() {
                continue;
            }
            let m_w = bdd.probability(m);
            let u_w = bdd.probability(untested);
            let coverage = 1.0 - u_w / m_w;
            gaps.push((id, untested, coverage, u_w));
        }
        // Most untested weight first; ties by id for determinism.
        gaps.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap().then(a.0.cmp(&b.0)));
        let omitted = gaps.len().saturating_sub(limit);
        let entries = gaps
            .into_iter()
            .take(limit)
            .map(|(id, untested, coverage, u_w)| {
                let (regions, regions_complete) = describe_set(bdd, untested, regions_per_rule);
                GapEntry {
                    rule: id,
                    device_name: self.network().topology().device(id.device).name.clone(),
                    class: self.network().rule(id).class,
                    coverage,
                    untested_weight: u_w,
                    regions,
                    regions_complete,
                    // Seeded per rule: the witness is a pure function of
                    // the rule's identity and the untested set, never of
                    // report order, thread count, or manager backend.
                    witness: seeded_witness(bdd, untested, rule_seed(WITNESS_SEED, id)),
                }
            })
            .collect();
        GapReport { entries, omitted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use netmodel::header;
    use netmodel::{Location, MatchSets};
    use topogen::{fattree, FatTreeParams};

    fn setup() -> (topogen::FatTree, Bdd, MatchSets) {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        (ft, bdd, ms)
    }

    #[test]
    fn untested_network_reports_everything_ranked_by_weight() {
        let (ft, mut bdd, ms) = setup();
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let report = a.gap_report(&mut bdd, 5, 3, |_, _| true);
        assert_eq!(report.entries.len(), 5);
        assert_eq!(report.omitted, ft.net.rule_count() - 5);
        // Default routes carry the most weight, so they rank first.
        assert!(ft
            .net
            .rule(report.entries[0].rule)
            .matches
            .dst
            .unwrap()
            .is_default());
        // Weights are non-increasing.
        for w in report.entries.windows(2) {
            assert!(w[0].untested_weight >= w[1].untested_weight);
        }
    }

    #[test]
    fn witnesses_actually_exercise_their_rules() {
        let (ft, mut bdd, ms) = setup();
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let report = a.gap_report(&mut bdd, 10, 2, |_, _| true);
        for entry in &report.entries {
            let w = entry.witness.expect("uncovered rules must have witnesses");
            assert!(
                w.matches(&bdd, ms.get(entry.rule)),
                "witness misses its rule"
            );
        }
    }

    #[test]
    fn partially_tested_rule_reports_the_residue() {
        let (ft, mut bdd, ms) = setup();
        let (tor, prefix, _) = ft.tors[0];
        // Test the low half of the /24.
        let mut trace = CoverageTrace::new();
        let low = header::dst_in(&mut bdd, &netmodel::Prefix::v4(prefix.bits() as u32, 25));
        trace.add_packets(&mut bdd, Location::device(tor), low);
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let report = a.gap_report(&mut bdd, 100, 4, |id, _| id.device == tor);
        let entry = report
            .entries
            .iter()
            .find(|e| ft.net.rule(e.rule).matches.dst == Some(prefix))
            .expect("the half-tested rule is a gap");
        assert!((entry.coverage - 0.5).abs() < 1e-9);
        // The untested region is exactly the high /25.
        assert!(entry.regions_complete);
        let rendered: Vec<String> = entry.regions.iter().map(|r| r.to_string()).collect();
        assert_eq!(rendered, vec![format!("v4 dst 10.0.0.128/25")]);
    }

    #[test]
    fn fully_covered_rules_never_appear() {
        let (ft, mut bdd, ms) = setup();
        let mut trace = CoverageTrace::new();
        let full = bdd.full();
        for (d, _) in ft.net.topology().devices() {
            trace.add_packets(&mut bdd, Location::device(d), full);
        }
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let report = a.gap_report(&mut bdd, 100, 3, |_, _| true);
        assert!(report.entries.is_empty());
        assert_eq!(report.omitted, 0);
    }

    #[test]
    fn display_renders_usable_text() {
        let (ft, mut bdd, ms) = setup();
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let report = a.gap_report(&mut bdd, 2, 2, |_, _| true);
        let text = report.to_string();
        assert!(text.contains("untested:"));
        assert!(text.contains("try: packet"));
        assert!(text.contains("further under-covered rules omitted"));
    }
}
