//! Config-level coverage via control-plane provenance (NetCov-style).
//!
//! Rule coverage answers "which FIB entries did the tests exercise?"
//! but operators reason in terms of *configuration*: BGP sessions,
//! route originations, static routes. This module maps the Algorithm-1
//! covered sets through the provenance layer of the `routing` crate
//! ([`netmodel::provenance::ConfigDb`]) and reports, per configuration
//! construct, whether any FIB rule it contributed to was exercised —
//! so an untested construct reads as "no test ever depended on this
//! line of config", the actionable gap NetCov surfaces for IGP/BGP
//! networks.
//!
//! ## Attribution
//!
//! A FIB rule belongs to a construct's *footprint* when the rule is a
//! destination-prefix route (its match is dst-only) and the provenance
//! database attributes its `(device, prefix)` key to the construct.
//! Shadowed rules (empty disjoint match set) are excluded — they cannot
//! carry packets, so they cannot witness coverage. Constructs whose
//! footprint ends up empty are reported separately as *unreferenced*:
//! config that never produced a testable FIB entry (dead config, or
//! config fully shadowed by more-preferred routes).
//!
//! ## Metrics
//!
//! A construct is **covered** iff some footprint rule has a non-empty
//! covered set `T[r]`. The per-construct **weighted** metric refines
//! the bit: `Σ P(T[r]) / Σ P(M[r])` over the footprint — how much of
//! the construct's forwarding behaviour the tests actually swept. The
//! headline **fractional** metric is covered ÷ coverable, the direct
//! analogue of the paper's fractional rule coverage one level up the
//! provenance chain.

use std::collections::BTreeMap;

use netbdd::Bdd;
use netmodel::provenance::{ConfigDb, Construct};
use netmodel::{MatchSets, Network, RuleId};

use crate::covered::CoveredSets;

/// Coverage of one configuration construct: its FIB-rule footprint and
/// the covered/match probability mass accumulated over it.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstructCoverage {
    /// The construct this entry describes.
    pub construct: Construct,
    /// The footprint: every non-shadowed FIB rule attributed to the
    /// construct, in rule-id order.
    pub rules: Vec<RuleId>,
    /// Whether any footprint rule has a non-empty covered set.
    pub covered: bool,
    /// `Σ P(M[r])` over the footprint (total testable mass).
    pub match_probability: f64,
    /// `Σ P(T[r])` over the footprint (mass the tests swept).
    pub covered_probability: f64,
}

impl ConstructCoverage {
    /// The weighted metric `Σ P(T[r]) / Σ P(M[r])`, or `None` when the
    /// footprint carries no probability mass at all.
    pub fn weighted(&self) -> Option<f64> {
        if self.match_probability == 0.0 {
            None
        } else {
            Some(self.covered_probability / self.match_probability)
        }
    }
}

/// Config-level coverage: the Algorithm-1 covered sets mapped through
/// control-plane provenance onto configuration constructs.
///
/// # Examples
///
/// ```
/// use netbdd::Bdd;
/// use netmodel::{MatchSets, Location};
/// use routing::{Origination, RibBuilder, Scope};
/// use yardstick::config::ConfigCoverage;
/// use yardstick::{CoveredSets, Tracker};
/// # use netmodel::{Role, IfaceKind};
///
/// // A one-link fabric: tor originates a host prefix, spine learns it
/// // over the session.
/// let mut topo = netmodel::topology::Topology::new();
/// let tor = topo.add_device("tor", Role::Tor);
/// let spine = topo.add_device("spine", Role::Spine);
/// topo.add_iface(tor, "hosts", IfaceKind::Host);
/// topo.add_link(tor, spine);
/// let mut rb = RibBuilder::new(topo);
/// rb.set_tier(tor, 0);
/// rb.set_tier(spine, 1);
/// let p: netmodel::Prefix = "10.0.0.0/24".parse().unwrap();
/// let hosts = netmodel::IfaceId(0);
/// rb.originate(Origination::new(
///     tor,
///     p,
///     netmodel::rule::RouteClass::HostSubnet,
///     Some(hosts),
///     Scope::All,
/// ));
/// let (net, db) = rb.try_build_with_provenance().unwrap();
///
/// let mut bdd = Bdd::new();
/// let ms = MatchSets::compute(&net, &mut bdd);
///
/// // No tests yet: both constructs are coverable, none covered.
/// let mut tracker = Tracker::new();
/// let covered = CoveredSets::compute(&net, &ms, tracker.trace(), &mut bdd);
/// let cov = ConfigCoverage::compute(&net, &ms, &covered, &mut bdd, &db);
/// assert_eq!(cov.coverable(), 2);
/// assert_eq!(cov.covered_count(), 0);
///
/// // A probe observed at the spine exercises the session AND the
/// // origination behind it.
/// let probe = netmodel::header::dst_in(&mut bdd, &p);
/// tracker.mark_packet(&mut bdd, Location::device(spine), probe);
/// let covered = CoveredSets::compute(&net, &ms, tracker.trace(), &mut bdd);
/// let cov = ConfigCoverage::compute(&net, &ms, &covered, &mut bdd, &db);
/// assert_eq!(cov.covered_count(), 2);
/// assert_eq!(cov.fractional(), Some(1.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigCoverage {
    /// Per-construct coverage for every construct with a non-empty
    /// footprint, in construct order.
    pub constructs: Vec<ConstructCoverage>,
    /// Constructs with an empty footprint — config that never produced
    /// a testable FIB entry. Excluded from every metric.
    pub unreferenced: Vec<Construct>,
}

impl ConfigCoverage {
    /// Map covered sets through the provenance database.
    ///
    /// Walks every FIB rule once: destination-only rules with a
    /// non-empty match set contribute their `P(M[r])` / `P(T[r])` mass
    /// to each construct the database attributes their key to.
    pub fn compute(
        net: &Network,
        ms: &MatchSets,
        covered: &CoveredSets,
        bdd: &mut Bdd,
        db: &ConfigDb,
    ) -> ConfigCoverage {
        let _span = netobs::span!("config_coverage");
        let mut acc: BTreeMap<Construct, ConstructCoverage> = BTreeMap::new();
        for (id, rule) in net.rules() {
            let f = &rule.matches;
            let dst = match (f.dst, f.src, f.proto, f.dport, f.sport, f.in_iface) {
                (Some(dst), None, None, None, None, None) => dst,
                _ => continue, // not a destination-prefix route
            };
            let Some(via) = db.attribution(id.device, dst) else {
                continue; // outside the provenance layer (connected, ACL, ...)
            };
            let m = ms.get(id);
            if m.is_false() {
                continue; // shadowed: untestable, no footprint
            }
            let pm = bdd.probability(m);
            let t = covered.get(id);
            let pt = bdd.probability(t);
            for c in via {
                let e = acc.entry(*c).or_insert_with(|| ConstructCoverage {
                    construct: *c,
                    rules: Vec::new(),
                    covered: false,
                    match_probability: 0.0,
                    covered_probability: 0.0,
                });
                e.rules.push(id);
                e.match_probability += pm;
                e.covered_probability += pt;
                e.covered |= !t.is_false();
            }
        }
        let unreferenced = db
            .constructs
            .iter()
            .filter(|c| !acc.contains_key(c))
            .copied()
            .collect();
        ConfigCoverage {
            constructs: acc.into_values().collect(),
            unreferenced,
        }
    }

    /// Number of coverable constructs (non-empty footprint).
    pub fn coverable(&self) -> usize {
        self.constructs.len()
    }

    /// Number of covered constructs.
    pub fn covered_count(&self) -> usize {
        self.constructs.iter().filter(|c| c.covered).count()
    }

    /// The headline fractional metric: covered ÷ coverable. `None` when
    /// nothing is coverable.
    pub fn fractional(&self) -> Option<f64> {
        if self.constructs.is_empty() {
            None
        } else {
            Some(self.covered_count() as f64 / self.coverable() as f64)
        }
    }

    /// The coverable-but-uncovered constructs — the actionable gap list.
    pub fn uncovered(&self) -> impl Iterator<Item = &ConstructCoverage> {
        self.constructs.iter().filter(|c| !c.covered)
    }

    /// Look up one construct's entry by identity.
    pub fn get(&self, construct: &Construct) -> Option<&ConstructCoverage> {
        self.constructs.iter().find(|c| &c.construct == construct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use netmodel::topology::Topology;
    use netmodel::topology::{DeviceId, IfaceKind, Role};
    use netmodel::{header, Location};
    use routing::{Origination, RibBuilder, Scope, StaticRoute, StaticTarget};

    /// tor—spine with an origination at the tor and a null static on
    /// the spine for a dark prefix nothing probes.
    fn build() -> (netmodel::Network, ConfigDb, DeviceId, DeviceId) {
        let mut topo = Topology::new();
        let tor = topo.add_device("tor", Role::Tor);
        let spine = topo.add_device("spine", Role::Spine);
        let hosts = topo.add_iface(tor, "hosts", IfaceKind::Host);
        topo.add_link(tor, spine);
        let mut rb = RibBuilder::new(topo);
        rb.set_tier(tor, 0);
        rb.set_tier(spine, 1);
        rb.originate(Origination::new(
            tor,
            "10.0.0.0/24".parse().unwrap(),
            netmodel::rule::RouteClass::HostSubnet,
            Some(hosts),
            Scope::All,
        ));
        rb.add_static(StaticRoute {
            device: spine,
            prefix: "192.0.2.0/24".parse().unwrap(),
            target: StaticTarget::Null,
            class: netmodel::rule::RouteClass::Other,
        });
        let (net, db) = rb.try_build_with_provenance().unwrap();
        (net, db, tor, spine)
    }

    fn analyse(
        net: &netmodel::Network,
        db: &ConfigDb,
        trace: &CoverageTrace,
    ) -> (ConfigCoverage, CoveredSets, MatchSets, Bdd) {
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(net, &mut bdd);
        let covered = CoveredSets::compute(net, &ms, trace, &mut bdd);
        let cov = ConfigCoverage::compute(net, &ms, &covered, &mut bdd, db);
        (cov, covered, ms, bdd)
    }

    #[test]
    fn construct_covered_iff_some_footprint_rule_is_covered() {
        // The counting-oracle cross-check: for every coverable
        // construct, the covered bit equals "∃ footprint rule with a
        // non-empty covered set", recomputed here independently.
        let (net, db, _tor, spine) = build();
        let mut trace = CoverageTrace::new();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let p = header::dst_in(&mut bdd, &"10.0.0.0/24".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(spine), p);
        let covered = CoveredSets::compute(&net, &ms, &trace, &mut bdd);
        let cov = ConfigCoverage::compute(&net, &ms, &covered, &mut bdd, &db);
        for entry in &cov.constructs {
            let oracle = entry.rules.iter().any(|&id| covered.is_exercised(id));
            assert_eq!(
                entry.covered, oracle,
                "covered bit disagrees with the oracle for {}",
                entry.construct
            );
        }
        // And the specific content: session + origination covered, the
        // dark null static not.
        assert_eq!(cov.covered_count(), 2);
        let dark = Construct::Static {
            device: spine,
            prefix: "192.0.2.0/24".parse().unwrap(),
        };
        assert!(!cov.get(&dark).unwrap().covered);
        assert_eq!(cov.uncovered().count(), 1);
    }

    #[test]
    fn empty_trace_covers_nothing_and_metrics_are_bounded() {
        let (net, db, _, _) = build();
        let (cov, _, _, _) = analyse(&net, &db, &CoverageTrace::new());
        assert_eq!(cov.covered_count(), 0);
        assert_eq!(cov.fractional(), Some(0.0));
        for c in &cov.constructs {
            if let Some(w) = c.weighted() {
                assert!((0.0..=1.0).contains(&w));
            }
            assert_eq!(c.covered_probability, 0.0);
        }
    }

    #[test]
    fn every_provenance_construct_is_accounted_for() {
        // Coverable ∪ unreferenced == the database universe, disjointly.
        let (net, db, _, _) = build();
        let (cov, _, _, _) = analyse(&net, &db, &CoverageTrace::new());
        let mut seen: Vec<Construct> = cov.constructs.iter().map(|c| c.construct).collect();
        seen.extend(cov.unreferenced.iter().copied());
        seen.sort();
        let universe: Vec<Construct> = db.constructs.iter().copied().collect();
        assert_eq!(seen, universe);
    }

    #[test]
    fn partial_sweep_shows_in_weighted_not_in_the_bit() {
        // Probing half the /24 covers the origination (bit set) but
        // the weighted metric reports the partial sweep.
        let (net, db, tor, spine) = build();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let mut trace = CoverageTrace::new();
        let half = header::dst_in(&mut bdd, &"10.0.0.0/25".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(spine), half);
        let covered = CoveredSets::compute(&net, &ms, &trace, &mut bdd);
        let cov = ConfigCoverage::compute(&net, &ms, &covered, &mut bdd, &db);
        let orig = Construct::Origination {
            device: tor,
            prefix: "10.0.0.0/24".parse().unwrap(),
        };
        let entry = cov.get(&orig).unwrap();
        assert!(entry.covered);
        let w = entry.weighted().unwrap();
        assert!(w > 0.0 && w < 1.0, "weighted should be partial, got {w}");
    }

    #[test]
    fn shadowed_rules_do_not_create_footprint() {
        // A static for the SAME prefix a more-preferred connected route
        // would shadow still shows up attributed; here we instead check
        // the simpler invariant that every footprint rule has a
        // non-empty match set.
        let (net, db, _, _) = build();
        let (cov, _, ms, _) = analyse(&net, &db, &CoverageTrace::new());
        let mut bdd = Bdd::new();
        let ms2 = MatchSets::compute(&net, &mut bdd);
        let _ = ms;
        for c in &cov.constructs {
            assert!(!c.rules.is_empty());
            for &id in &c.rules {
                assert!(!ms2.get(id).is_false());
            }
        }
    }
}
