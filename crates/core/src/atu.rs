//! Atomic testable units — the paper's foundational concept, first-class.
//!
//! An **ATU** is a pair of one forwarding rule and one packet: "the
//! minimal unit that any test can exercise" (§1). Everything in this
//! library is defined in terms of ATU *sets*:
//!
//! * a test's impact is the set of ATUs it exercised — represented
//!   compactly as the coverage trace `(P_T, R_T)` rather than pair by
//!   pair;
//! * a component's dependencies are the ATUs that must be exercised to
//!   test it — rule coverage needs `{(r, p) | p ∈ M[r]}`, device
//!   coverage the union over the device's rules, and so on;
//! * covered sets `T[r]` (Algorithm 1) are the per-rule slices of the
//!   suite's ATU set.
//!
//! Materialising individual ATUs is only useful at the edges — sampling
//! witnesses, explaining results to humans, property-testing the
//! machinery — which is what this module provides. The sets themselves
//! always stay symbolic.

use netbdd::Bdd;
use netmodel::header::{sample_packet, Packet};
use netmodel::RuleId;

use crate::analyzer::Analyzer;

/// One atomic testable unit: rule `r` exercised by packet `p`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Atu {
    /// The rule being exercised.
    pub rule: RuleId,
    /// The concrete packet exercising it.
    pub packet: Packet,
}

impl std::fmt::Display for Atu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:?}, {})", self.rule, self.packet)
    }
}

impl Analyzer<'_> {
    /// Whether the suite exercised this exact ATU.
    ///
    /// `None` if the pair is not an ATU at all (the packet is outside
    /// the rule's match set — no test could ever exercise it).
    pub fn atu_covered(&self, bdd: &mut Bdd, atu: Atu) -> Option<bool> {
        let m = self.match_sets().get(atu.rule);
        if !atu.packet.matches(bdd, m) {
            return None;
        }
        let t = self.covered_sets().get(atu.rule);
        Some(atu.packet.matches(bdd, t))
    }

    /// A covered ATU of this rule, if any — a concrete example of what
    /// the suite already exercises.
    pub fn sample_covered_atu(&self, bdd: &mut Bdd, rule: RuleId) -> Option<Atu> {
        let t = self.covered_sets().get(rule);
        sample_packet(bdd, t).map(|packet| Atu { rule, packet })
    }

    /// An uncovered ATU of this rule, if any — a concrete example of
    /// what a new test should exercise (the gap report's witness).
    pub fn sample_uncovered_atu(&self, bdd: &mut Bdd, rule: RuleId) -> Option<Atu> {
        let m = self.match_sets().get(rule);
        let t = self.covered_sets().get(rule);
        let untested = bdd.diff(m, t);
        sample_packet(bdd, untested).map(|packet| Atu { rule, packet })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use netmodel::header;
    use netmodel::{Location, MatchSets};
    use topogen::{fattree, FatTreeParams};

    fn setup() -> (topogen::FatTree, Bdd, MatchSets, CoverageTrace) {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let mut trace = CoverageTrace::new();
        // Cover half of tor0's own prefix.
        let (tor, prefix, _) = ft.tors[0];
        let half = header::dst_in(&mut bdd, &netmodel::Prefix::v4(prefix.bits() as u32, 25));
        trace.add_packets(&mut bdd, Location::device(tor), half);
        (ft, bdd, ms, trace)
    }

    #[test]
    fn atu_covered_distinguishes_three_cases() {
        let (ft, mut bdd, ms, trace) = setup();
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let (tor, prefix, _) = ft.tors[0];
        let rule = ft
            .net
            .device_rule_ids(tor)
            .find(|&id| ft.net.rule(id).matches.dst == Some(prefix))
            .unwrap();
        // Covered: an address in the low /25.
        let covered = Atu {
            rule,
            packet: Packet::v4_to(prefix.nth_addr(1) as u32),
        };
        assert_eq!(a.atu_covered(&mut bdd, covered), Some(true));
        // Uncovered: an address in the high /25.
        let uncovered = Atu {
            rule,
            packet: Packet::v4_to(prefix.nth_addr(200) as u32),
        };
        assert_eq!(a.atu_covered(&mut bdd, uncovered), Some(false));
        // Not an ATU: a packet the rule can never match.
        let alien = Atu {
            rule,
            packet: Packet::v4_to(1),
        };
        assert_eq!(a.atu_covered(&mut bdd, alien), None);
    }

    #[test]
    fn sampled_atus_are_consistent_with_atu_covered() {
        let (ft, mut bdd, ms, trace) = setup();
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let (tor, prefix, _) = ft.tors[0];
        let rule = ft
            .net
            .device_rule_ids(tor)
            .find(|&id| ft.net.rule(id).matches.dst == Some(prefix))
            .unwrap();
        let cov = a.sample_covered_atu(&mut bdd, rule).expect("half covered");
        assert_eq!(a.atu_covered(&mut bdd, cov), Some(true));
        let unc = a
            .sample_uncovered_atu(&mut bdd, rule)
            .expect("half uncovered");
        assert_eq!(a.atu_covered(&mut bdd, unc), Some(false));
    }

    #[test]
    fn fully_covered_rule_has_no_uncovered_atu() {
        let (ft, mut bdd, ms, _) = setup();
        let (tor, prefix, _) = ft.tors[0];
        let rule = ft
            .net
            .device_rule_ids(tor)
            .find(|&id| ft.net.rule(id).matches.dst == Some(prefix))
            .unwrap();
        let mut trace = CoverageTrace::new();
        trace.add_rule(rule);
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        assert!(a.sample_uncovered_atu(&mut bdd, rule).is_none());
        assert!(a.sample_covered_atu(&mut bdd, rule).is_some());
    }

    #[test]
    fn untested_rule_has_no_covered_atu() {
        let (ft, mut bdd, ms, _) = setup();
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let (tor, _, _) = ft.tors[1];
        let rule = ft.net.device_rule_ids(tor).next().unwrap();
        assert!(a.sample_covered_atu(&mut bdd, rule).is_none());
        assert!(a.sample_uncovered_atu(&mut bdd, rule).is_some());
    }

    #[test]
    fn display_is_compact() {
        let atu = Atu {
            rule: RuleId {
                device: netmodel::topology::DeviceId(3),
                index: 7,
            },
            packet: Packet::v4_to(netmodel::addr::ipv4(10, 0, 0, 1)),
        };
        let s = atu.to_string();
        assert!(s.contains("r3.7"));
        assert!(s.contains("10.0.0.1"));
    }
}
