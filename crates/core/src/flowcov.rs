//! Flow coverage (§4.3.2).
//!
//! A flow is a source location plus a header space. Injected into the
//! network it traverses one or more paths (multi-path routing, or
//! different headers routed differently); the flow's dependency
//! specification has one guarded string per path, each guarded by the
//! flow packets that take that path, combined by weighted average. A
//! flow coverage of 75% means state corresponding to 75% of the flow's
//! packet stream has been tested end-to-end.

use netbdd::{Bdd, Ref};
use netmodel::Location;

use dataplane::paths::{explore, ExploreOpts};
use dataplane::Forwarder;

use crate::analyzer::Analyzer;
use crate::framework::path_survival;
use crate::pathcov::path_guard;

/// A flow: where its packets enter and which headers belong to it.
#[derive(Clone, Copy, Debug)]
pub struct Flow {
    /// Where the flow's packets enter the network.
    pub start: Location,
    /// The header space belonging to the flow.
    pub headers: Ref,
}

/// Per-flow coverage result.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlowCoverage {
    /// Number of distinct paths the flow takes.
    pub paths: u64,
    /// Weighted-average end-to-end coverage across those paths.
    pub coverage: f64,
    /// Share of the flow's packet space that matched *no* rule at the
    /// source (unroutable portion; excluded from `coverage`).
    pub unrouted_weight: f64,
}

/// Compute coverage of one flow.
///
/// Returns `None` when the flow is empty or none of its packets match
/// any rule (there is no state to test).
pub fn flow_coverage(
    bdd: &mut Bdd,
    analyzer: &Analyzer<'_>,
    flow: Flow,
    opts: &ExploreOpts,
) -> Option<FlowCoverage> {
    if flow.headers.is_false() {
        return None;
    }
    let net = analyzer.network();
    let ms = analyzer.match_sets();
    let covered = analyzer.covered_sets();
    let fwd = Forwarder::new(net, ms);

    let mut paths = 0u64;
    let mut wsum = 0.0f64;
    let mut wtotal = 0.0f64;
    let mut unrouted = 0.0f64;
    let flow_weight = bdd.probability(flow.headers);

    explore(
        bdd,
        &fwd,
        &[(flow.start, flow.headers)],
        &ExploreOpts {
            emit_empty_paths: true,
            ..opts.clone()
        },
        |bdd, ev| {
            if ev.rules.is_empty() {
                unrouted += bdd.probability(ev.final_set);
                return;
            }
            let guard = path_guard(bdd, net, ms, ev.rules, ev.final_set);
            // Restrict the guard to this flow's packets.
            let guard = bdd.and(guard, flow.headers);
            if guard.is_false() {
                return;
            }
            let m = path_survival(bdd, net, ms, covered, guard, ev.rules);
            let w = bdd.probability(guard);
            paths += 1;
            wsum += m * w;
            wtotal += w;
        },
    );

    if wtotal == 0.0 {
        return None;
    }
    Some(FlowCoverage {
        paths,
        coverage: wsum / wtotal,
        unrouted_weight: if flow_weight == 0.0 {
            0.0
        } else {
            unrouted / flow_weight
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use netmodel::addr::Prefix;
    use netmodel::header;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{DeviceId, IfaceKind, Role, Topology};
    use netmodel::{MatchSets, Network};

    /// Diamond with ECMP: a → {b,c} → d.
    fn diamond() -> (Network, DeviceId, Vec<DeviceId>) {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let c = t.add_device("c", Role::Spine);
        let d = t.add_device("d", Role::Tor);
        let _in = t.add_iface(a, "in", IfaceKind::Host);
        let out = t.add_iface(d, "out", IfaceKind::Host);
        let (ab, _) = t.add_link(a, b);
        let (ac, _) = t.add_link(a, c);
        let (bd, _) = t.add_link(b, d);
        let (cd, _) = t.add_link(c, d);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut net = Network::new(t);
        net.add_rule(a, Rule::forward(p, vec![ab, ac], RouteClass::HostSubnet));
        net.add_rule(b, Rule::forward(p, vec![bd], RouteClass::HostSubnet));
        net.add_rule(c, Rule::forward(p, vec![cd], RouteClass::HostSubnet));
        net.add_rule(d, Rule::forward(p, vec![out], RouteClass::HostSubnet));
        net.finalize();
        (net, a, vec![a, b, c, d])
    }

    fn flow_of(bdd: &mut Bdd, a: DeviceId) -> Flow {
        let headers = header::dst_in(bdd, &"10.0.0.0/24".parse().unwrap());
        Flow {
            start: Location::device(a),
            headers,
        }
    }

    #[test]
    fn untested_flow_scores_zero() {
        let (net, a, _) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let trace = CoverageTrace::new();
        let an = Analyzer::new(&net, &ms, &trace, &mut bdd);
        let flow = flow_of(&mut bdd, a);
        let fc = flow_coverage(&mut bdd, &an, flow, &ExploreOpts::default()).unwrap();
        assert_eq!(fc.paths, 2); // two ECMP paths
        assert_eq!(fc.coverage, 0.0);
    }

    #[test]
    fn fully_tested_flow_scores_one() {
        let (net, a, devs) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let mut trace = CoverageTrace::new();
        let full = bdd.full();
        for &d in &devs {
            trace.add_packets(&mut bdd, Location::device(d), full);
        }
        let an = Analyzer::new(&net, &ms, &trace, &mut bdd);
        let flow = flow_of(&mut bdd, a);
        let fc = flow_coverage(&mut bdd, &an, flow, &ExploreOpts::default()).unwrap();
        assert!((fc.coverage - 1.0).abs() < 1e-12);
        assert_eq!(fc.unrouted_weight, 0.0);
    }

    #[test]
    fn covering_one_ecmp_branch_gives_full_weighted_coverage_of_that_path() {
        let (net, a, devs) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let mut trace = CoverageTrace::new();
        // Mark everything except device c: the a→b→d path is tested, the
        // a→c→d path is not.
        let full = bdd.full();
        for &d in &devs {
            if net.topology().device(d).name != "c" {
                trace.add_packets(&mut bdd, Location::device(d), full);
            }
        }
        let an = Analyzer::new(&net, &ms, &trace, &mut bdd);
        let flow = flow_of(&mut bdd, a);
        let fc = flow_coverage(&mut bdd, &an, flow, &ExploreOpts::default()).unwrap();
        // Both ECMP paths carry the same guard (the whole flow), so the
        // weighted average is (1 + 0) / 2.
        assert!((fc.coverage - 0.5).abs() < 1e-12, "got {}", fc.coverage);
    }

    #[test]
    fn unrouted_portion_is_reported() {
        let (net, a, devs) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let mut trace = CoverageTrace::new();
        let full = bdd.full();
        for &d in &devs {
            trace.add_packets(&mut bdd, Location::device(d), full);
        }
        let an = Analyzer::new(&net, &ms, &trace, &mut bdd);
        // Flow: the /23 containing the routed /24 plus an unrouted /24.
        let headers = header::dst_in(&mut bdd, &"10.0.0.0/23".parse().unwrap());
        let flow = Flow {
            start: Location::device(a),
            headers,
        };
        let fc = flow_coverage(&mut bdd, &an, flow, &ExploreOpts::default()).unwrap();
        assert!((fc.unrouted_weight - 0.5).abs() < 1e-12);
        assert!((fc.coverage - 1.0).abs() < 1e-12); // the routed half is fully tested
    }

    #[test]
    fn empty_flow_is_none() {
        let (net, a, _) = diamond();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let trace = CoverageTrace::new();
        let an = Analyzer::new(&net, &ms, &trace, &mut bdd);
        let flow = Flow {
            start: Location::device(a),
            headers: netbdd::Ref::FALSE,
        };
        assert!(flow_coverage(&mut bdd, &an, flow, &ExploreOpts::default()).is_none());
        // A flow whose packets match nothing is also None.
        let junk = header::dst_in(&mut bdd, &"99.0.0.0/8".parse().unwrap());
        let flow2 = Flow {
            start: Location::device(a),
            headers: junk,
        };
        assert!(flow_coverage(&mut bdd, &an, flow2, &ExploreOpts::default()).is_none());
    }
}
