//! Coverage reports: the Figure-6-style per-role breakdown, rendered as a
//! text table or CSV.
//!
//! The report view — fractional device / interface / rule coverage plus
//! weighted rule coverage, grouped by router role — is the one the paper
//! found "particularly useful toward understanding testing effectiveness
//! and gaps" (§7.2).

use std::fmt;

use netbdd::Bdd;
use netmodel::topology::Role;

use crate::analyzer::{Analyzer, RoleMetrics};

/// One row of the report (one router role).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReportRow {
    /// The role's aggregated coverage metrics.
    pub metrics: RoleMetrics,
    /// Number of devices with this role.
    pub devices: usize,
    /// Total rules installed on those devices.
    pub rules: usize,
}

/// A per-role coverage report.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// One row per router role present in the network.
    pub rows: Vec<ReportRow>,
    /// Network-wide metrics (all roles together).
    pub overall: RoleMetricsOverall,
}

/// Network-wide aggregate metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoleMetricsOverall {
    /// Mean fractional device coverage over all devices.
    pub device_fractional: Option<f64>,
    /// Mean fractional incoming-interface coverage.
    pub iface_fractional: Option<f64>,
    /// Mean fractional rule coverage.
    pub rule_fractional: Option<f64>,
    /// Mean probability-weighted rule coverage.
    pub rule_weighted: Option<f64>,
}

impl CoverageReport {
    /// Build the standard per-role report over the roles present in the
    /// network, in fixed display order.
    pub fn by_role(bdd: &mut Bdd, analyzer: &Analyzer<'_>) -> CoverageReport {
        use crate::framework::Aggregator;
        let topo = analyzer.network().topology();
        let mut rows = Vec::new();
        const ORDER: [Role; 7] = [
            Role::Tor,
            Role::Aggregation,
            Role::Spine,
            Role::RegionalHub,
            Role::Border,
            Role::Wan,
            Role::Other,
        ];
        for role in ORDER {
            let devices = topo.devices_with_role(role);
            if devices.is_empty() {
                continue;
            }
            let rules: usize = devices
                .iter()
                .map(|&d| analyzer.network().device_rules(d).len())
                .sum();
            rows.push(ReportRow {
                metrics: analyzer.role_metrics(bdd, role),
                devices: devices.len(),
                rules,
            });
        }
        let overall = RoleMetricsOverall {
            device_fractional: analyzer.aggregate_devices(bdd, Aggregator::Fractional, |_, _| true),
            iface_fractional: analyzer
                .aggregate_out_ifaces(bdd, Aggregator::Fractional, |_, _| true),
            rule_fractional: analyzer.aggregate_rules(bdd, Aggregator::Fractional, |_, _| true),
            rule_weighted: analyzer.aggregate_rules(bdd, Aggregator::Weighted, |_, _| true),
        };
        CoverageReport { rows, overall }
    }

    /// CSV rendering (`role,devices,rules,device_frac,iface_frac,
    /// rule_frac,rule_weighted`), suitable for the figure harnesses.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "role,devices,rules,device_fractional,iface_fractional,rule_fractional,rule_weighted\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                row.metrics.role.label(),
                row.devices,
                row.rules,
                fmt_opt(row.metrics.device_fractional),
                fmt_opt(row.metrics.iface_fractional),
                fmt_opt(row.metrics.rule_fractional),
                fmt_opt(row.metrics.rule_weighted),
            ));
        }
        out.push_str(&format!(
            "ALL,,,{},{},{},{}\n",
            fmt_opt(self.overall.device_fractional),
            fmt_opt(self.overall.iface_fractional),
            fmt_opt(self.overall.rule_fractional),
            fmt_opt(self.overall.rule_weighted),
        ));
        out
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "-".to_string(),
    }
}

fn fmt_pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:>6.1}%", x * 100.0),
        None => "     -".to_string(),
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<20} {:>7} {:>9} | {:>7} {:>7} {:>7} {:>7}",
            "role", "devices", "rules", "dev(f)", "ifc(f)", "rul(f)", "rul(w)"
        )?;
        writeln!(f, "{}", "-".repeat(78))?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<20} {:>7} {:>9} | {} {} {} {}",
                row.metrics.role.label(),
                row.devices,
                row.rules,
                fmt_pct(row.metrics.device_fractional),
                fmt_pct(row.metrics.iface_fractional),
                fmt_pct(row.metrics.rule_fractional),
                fmt_pct(row.metrics.rule_weighted),
            )?;
        }
        writeln!(f, "{}", "-".repeat(78))?;
        writeln!(
            f,
            "{:<20} {:>7} {:>9} | {} {} {} {}",
            "ALL",
            "",
            "",
            fmt_pct(self.overall.device_fractional),
            fmt_pct(self.overall.iface_fractional),
            fmt_pct(self.overall.rule_fractional),
            fmt_pct(self.overall.rule_weighted),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use netmodel::addr::Prefix;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{IfaceKind, Topology};
    use netmodel::{Location, MatchSets, Network};

    fn net() -> Network {
        let mut t = Topology::new();
        let tor = t.add_device("tor", Role::Tor);
        let spine = t.add_device("spine", Role::Spine);
        let h = t.add_iface(tor, "hosts", IfaceKind::Host);
        let (ts, st) = t.add_link(tor, spine);
        let mut n = Network::new(t);
        n.add_rule(
            tor,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![h],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            tor,
            Rule::forward(Prefix::v4_default(), vec![ts], RouteClass::StaticDefault),
        );
        n.add_rule(
            spine,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![st],
                RouteClass::HostSubnet,
            ),
        );
        n.finalize();
        n
    }

    #[test]
    fn report_has_one_row_per_present_role() {
        let n = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        let r = CoverageReport::by_role(&mut bdd, &a);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].metrics.role, Role::Tor);
        assert_eq!(r.rows[1].metrics.role, Role::Spine);
        assert_eq!(r.rows[0].devices, 1);
        assert_eq!(r.rows[0].rules, 2);
    }

    #[test]
    fn csv_and_display_render() {
        let n = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let tor = n.topology().device_by_name("tor").unwrap();
        let full = bdd.full();
        trace.add_packets(&mut bdd, Location::device(tor), full);
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        let r = CoverageReport::by_role(&mut bdd, &a);
        let csv = r.to_csv();
        assert!(csv.starts_with("role,"));
        assert!(csv.lines().count() == 4); // header + 2 roles + ALL
        let text = r.to_string();
        assert!(text.contains("ToR Router"));
        assert!(text.contains("100.0%"));
    }

    #[test]
    fn overall_row_spans_roles() {
        let n = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let full = bdd.full();
        for (d, _) in n.topology().devices() {
            trace.add_packets(&mut bdd, Location::device(d), full);
        }
        let a = Analyzer::new(&n, &ms, &trace, &mut bdd);
        let r = CoverageReport::by_role(&mut bdd, &a);
        assert_eq!(r.overall.device_fractional, Some(1.0));
        assert_eq!(r.overall.rule_fractional, Some(1.0));
    }
}

/// One row of the per-route-class breakdown (§7.2's categorization of
/// untested rules: internal, connected, wide-area, ...).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassRow {
    /// The route class this row aggregates.
    pub class: netmodel::RouteClass,
    /// Number of rules in the class.
    pub rules: usize,
    /// Mean fractional rule coverage over the class.
    pub rule_fractional: Option<f64>,
    /// Mean probability-weighted rule coverage over the class.
    pub rule_weighted: Option<f64>,
}

/// Per-route-class coverage report — the lens that surfaced the case
/// study's three testing gaps.
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// One row per route class present in the network.
    pub rows: Vec<ClassRow>,
}

impl ClassReport {
    /// Build the breakdown over every route class present in the network.
    pub fn by_class(bdd: &mut Bdd, analyzer: &Analyzer<'_>) -> ClassReport {
        use crate::framework::Aggregator;
        use netmodel::RouteClass;
        const ORDER: [RouteClass; 7] = [
            RouteClass::StaticDefault,
            RouteClass::BgpDefault,
            RouteClass::HostSubnet,
            RouteClass::Loopback,
            RouteClass::Connected,
            RouteClass::Wan,
            RouteClass::Other,
        ];
        let mut rows = Vec::new();
        for class in ORDER {
            let rules = analyzer
                .network()
                .rules()
                .filter(|(_, r)| r.class == class)
                .count();
            if rules == 0 {
                continue;
            }
            rows.push(ClassRow {
                class,
                rules,
                rule_fractional: analyzer
                    .aggregate_rules(bdd, Aggregator::Fractional, |_, r| r.class == class),
                rule_weighted: analyzer
                    .aggregate_rules(bdd, Aggregator::Weighted, |_, r| r.class == class),
            });
        }
        ClassReport { rows }
    }
}

impl fmt::Display for ClassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>8} | {:>8} {:>8}",
            "route class", "rules", "rul(f)", "rul(w)"
        )?;
        writeln!(f, "{}", "-".repeat(46))?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<16} {:>8} | {} {}",
                format!("{:?}", row.class),
                row.rules,
                fmt_pct(row.rule_fractional),
                fmt_pct(row.rule_weighted),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod class_tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use netmodel::rule::RouteClass;
    use netmodel::{MatchSets, RuleId};
    use topogen::{fattree, FatTreeParams};

    #[test]
    fn class_report_partitions_the_rules() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = netbdd::Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let trace = CoverageTrace::new();
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let report = ClassReport::by_class(&mut bdd, &a);
        let total: usize = report.rows.iter().map(|r| r.rules).sum();
        assert_eq!(total, ft.net.rule_count());
        // Paper fat-trees have host subnets + static defaults only.
        let classes: Vec<RouteClass> = report.rows.iter().map(|r| r.class).collect();
        assert_eq!(
            classes,
            vec![RouteClass::StaticDefault, RouteClass::HostSubnet]
        );
    }

    #[test]
    fn class_report_reflects_targeted_coverage() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = netbdd::Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let mut trace = CoverageTrace::new();
        // Inspect every default route, nothing else.
        for (id, rule) in ft.net.rules() {
            if rule.class == RouteClass::StaticDefault {
                trace.add_rule(id);
            }
        }
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let report = ClassReport::by_class(&mut bdd, &a);
        let by = |c: RouteClass| report.rows.iter().find(|r| r.class == c).unwrap();
        assert_eq!(by(RouteClass::StaticDefault).rule_fractional, Some(1.0));
        assert_eq!(by(RouteClass::HostSubnet).rule_fractional, Some(0.0));
        let _ = RuleId {
            device: netmodel::topology::DeviceId(0),
            index: 0,
        };
        let text = report.to_string();
        assert!(text.contains("StaticDefault"));
        assert!(text.contains("100.0%"));
    }
}
