//! The programmable coverage framework of §4.3.1.
//!
//! The coverage of one component is specified by three parts:
//!
//! * a **dependency specification** `G` — a set of [`GuardedString`]s
//!   `P ▷ r₁,…,rⱼ`: a packet-set guard and a rule path whose testing the
//!   component depends on;
//! * a **measure** µ — how well a test suite covers one guarded string,
//!   a number in `[0, 1]`;
//! * a **combinator** κ — how per-string measures fold into the
//!   component's coverage.
//!
//! Collections of components aggregate with an **aggregator** α
//! (Equation 2). All three knobs are plain enums here (plus an escape
//! hatch for custom weighting), so new metrics are data, not code.

use netbdd::{Bdd, Ref};
use netmodel::{MatchSets, Network, RuleId};

use crate::covered::CoveredSets;

/// A guarded string `P ▷ r₁,…,rⱼ`: the flow of packet set `P` along a
/// valid rule path. Single-rule strings (`j = 1`) describe local
/// components; longer strings describe paths.
#[derive(Clone, Debug)]
pub struct GuardedString {
    /// The guard: packets whose handling the component depends on.
    pub guard: Ref,
    /// The rule path, in forwarding order. Must be non-empty.
    pub rules: Vec<RuleId>,
}

impl GuardedString {
    /// A single-rule string, the common case for local components.
    pub fn rule(guard: Ref, rule: RuleId) -> GuardedString {
        GuardedString {
            guard,
            rules: vec![rule],
        }
    }
}

/// The measure µ: how thoroughly one guarded string is covered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Measure {
    /// Fraction of the guard covered: `|T[r] ∩ P| / |P|` for single-rule
    /// strings; for multi-rule strings, the end-to-end survival fraction
    /// of Equation (3) with the footnote-2 min-ratio refinement.
    Fraction,
    /// 1 if any packet of the guard exercises the string, else 0.
    HitOrMiss,
}

/// The combinator κ: fold per-string measures into component coverage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combinator {
    /// The component has exactly one guarded string; take it.
    Only,
    /// Unweighted mean of the measures.
    Mean,
    /// Mean weighted by each string's guard size (rules matching more
    /// packets weigh more) — used by device and interface coverage.
    WeightedByGuard,
    /// The weakest link: minimum across strings.
    Min,
    /// The best case: maximum across strings.
    Max,
}

/// The aggregator α over a collection of component coverages (Equation 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregator {
    /// Simple (unweighted) average.
    Mean,
    /// Average weighted by each component's packet-space size; the weight
    /// is supplied alongside the coverage value.
    Weighted,
    /// Fraction of components with non-zero coverage ("tested at all").
    Fractional,
}

impl Aggregator {
    /// Fold `(coverage, weight)` pairs. Weights are ignored except by
    /// [`Aggregator::Weighted`]. Returns `None` on an empty collection
    /// (coverage of nothing is undefined, not 0 or 1).
    pub fn fold(self, items: &[(f64, f64)]) -> Option<f64> {
        if items.is_empty() {
            return None;
        }
        Some(match self {
            Aggregator::Mean => items.iter().map(|&(c, _)| c).sum::<f64>() / items.len() as f64,
            Aggregator::Weighted => {
                let total_w: f64 = items.iter().map(|&(_, w)| w).sum();
                if total_w == 0.0 {
                    0.0
                } else {
                    items.iter().map(|&(c, w)| c * w).sum::<f64>() / total_w
                }
            }
            Aggregator::Fractional => {
                items.iter().filter(|&&(c, _)| c > 0.0).count() as f64 / items.len() as f64
            }
        })
    }
}

/// A component's coverage specification `(κ, µ, G)`.
#[derive(Clone, Debug)]
pub struct ComponentSpec {
    /// The guarded strings κ enumerates for this component.
    pub strings: Vec<GuardedString>,
    /// The measure µ applied to each string's covered portion.
    pub measure: Measure,
    /// The combinator G folding per-string measures into one number.
    pub combinator: Combinator,
}

impl ComponentSpec {
    /// Evaluate Equation (1): `CompCov[T](κ, µ, G) = κ (map (µ[T]) G)`.
    ///
    /// Returns `None` when the specification is vacuous — no strings, or
    /// every guard empty — since such a component cannot be tested and
    /// must not drag aggregate metrics (a fully-shadowed rule is not a
    /// testing gap).
    pub fn eval(
        &self,
        bdd: &mut Bdd,
        net: &Network,
        ms: &MatchSets,
        covered: &CoveredSets,
    ) -> Option<f64> {
        let mut measures: Vec<(f64, f64)> = Vec::with_capacity(self.strings.len());
        for g in &self.strings {
            if g.guard.is_false() {
                continue;
            }
            let m = measure_string(bdd, net, ms, covered, self.measure, g);
            let w = bdd.probability(g.guard);
            measures.push((m, w));
        }
        if measures.is_empty() {
            return None;
        }
        Some(match self.combinator {
            Combinator::Only => {
                debug_assert_eq!(measures.len(), 1, "Only expects a singleton G");
                measures[0].0
            }
            Combinator::Mean => {
                measures.iter().map(|&(m, _)| m).sum::<f64>() / measures.len() as f64
            }
            Combinator::WeightedByGuard => {
                let total: f64 = measures.iter().map(|&(_, w)| w).sum();
                if total == 0.0 {
                    0.0
                } else {
                    measures.iter().map(|&(m, w)| m * w).sum::<f64>() / total
                }
            }
            Combinator::Min => measures
                .iter()
                .map(|&(m, _)| m)
                .fold(f64::INFINITY, f64::min),
            Combinator::Max => measures.iter().map(|&(m, _)| m).fold(0.0, f64::max),
        })
    }
}

/// µ for one guarded string.
fn measure_string(
    bdd: &mut Bdd,
    net: &Network,
    ms: &MatchSets,
    covered: &CoveredSets,
    measure: Measure,
    g: &GuardedString,
) -> f64 {
    debug_assert!(
        !g.rules.is_empty(),
        "guarded strings must name at least one rule"
    );
    let frac = path_survival(bdd, net, ms, covered, g.guard, &g.rules);
    match measure {
        Measure::Fraction => frac,
        Measure::HitOrMiss => {
            if frac > 0.0 {
                1.0
            } else {
                0.0
            }
        }
    }
}

/// Equation (3) with the footnote-2 refinement.
///
/// Walk the rule path twice in lockstep: the *tested* chain `Pᵢ`
/// (constrained by covered sets `T[rᵢ]`) and the *unconstrained* chain
/// `P'ᵢ` (constrained only by match sets `M[rᵢ]`). At each hop take the
/// ratio `|Pᵢ|/|P'ᵢ|`; the string's measure is the minimum ratio, which
/// equals `|P_k|/|P'_k|` when every transformation is one-to-one but
/// stays meaningful for many-to-one rewrites.
pub fn path_survival(
    bdd: &mut Bdd,
    net: &Network,
    ms: &MatchSets,
    covered: &CoveredSets,
    guard: Ref,
    rules: &[RuleId],
) -> f64 {
    let mut tested = guard;
    let mut unconstrained = guard;
    let mut min_ratio = f64::INFINITY;
    for &rid in rules {
        // Tested chain: Pᵢ = F[rᵢ](Pᵢ₋₁ ∩ T[rᵢ]); T[r] ⊆ M[r] already.
        let t = covered.get(rid);
        tested = bdd.and(tested, t);
        // Unconstrained chain: restricted by match sets only. For guards
        // built from real forwarding the intersection is a no-op, but
        // hand-written specs may pass wider guards.
        let m = ms.get(rid);
        unconstrained = bdd.and(unconstrained, m);
        let rule = net.rule(rid);
        let ratio = {
            let pu = bdd.probability(unconstrained);
            if pu == 0.0 {
                // The guard cannot traverse this path at all: vacuous.
                return 0.0;
            }
            bdd.probability(tested) / pu
        };
        min_ratio = min_ratio.min(ratio);
        if min_ratio == 0.0 {
            return 0.0;
        }
        // Apply the rule's transformation (if any) to both chains.
        if let netmodel::Action::Rewrite(rw, _) = &rule.action {
            tested = rw.apply(bdd, tested);
            unconstrained = rw.apply(bdd, unconstrained);
        }
    }
    min_ratio.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CoverageTrace;
    use netmodel::addr::Prefix;
    use netmodel::header;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{DeviceId, IfaceId, IfaceKind, Role, Topology};
    use netmodel::{Location, MatchSets};

    fn one_rule_net() -> (Network, RuleId) {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "h", IfaceKind::Host);
        let mut n = Network::new(t);
        n.add_rule(
            d,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![IfaceId(0)],
                RouteClass::HostSubnet,
            ),
        );
        n.finalize();
        (
            n,
            RuleId {
                device: d,
                index: 0,
            },
        )
    }

    fn covered_with(n: &Network, bdd: &mut Bdd, mark: Option<Ref>) -> (MatchSets, CoveredSets) {
        let ms = MatchSets::compute(n, bdd);
        let mut trace = CoverageTrace::new();
        if let Some(p) = mark {
            trace.add_packets(bdd, Location::device(DeviceId(0)), p);
        }
        let cov = CoveredSets::compute(n, &ms, &trace, bdd);
        (ms, cov)
    }

    #[test]
    fn fraction_measure_is_the_covered_ratio() {
        let (n, rid) = one_rule_net();
        let mut bdd = Bdd::new();
        let p25 = header::dst_in(&mut bdd, &"10.0.0.0/25".parse().unwrap());
        let (ms, cov) = covered_with(&n, &mut bdd, Some(p25));
        let spec = ComponentSpec {
            strings: vec![GuardedString::rule(ms.get(rid), rid)],
            measure: Measure::Fraction,
            combinator: Combinator::Only,
        };
        let got = spec.eval(&mut bdd, &n, &ms, &cov).unwrap();
        assert!((got - 0.5).abs() < 1e-12, "half the /24 marked, got {got}");
    }

    #[test]
    fn hit_or_miss_flattens_partial_coverage() {
        let (n, rid) = one_rule_net();
        let mut bdd = Bdd::new();
        let one = header::Packet::v4_to(netmodel::addr::ipv4(10, 0, 0, 1)).to_bdd(&mut bdd);
        let (ms, cov) = covered_with(&n, &mut bdd, Some(one));
        let spec = ComponentSpec {
            strings: vec![GuardedString::rule(ms.get(rid), rid)],
            measure: Measure::HitOrMiss,
            combinator: Combinator::Only,
        };
        assert_eq!(spec.eval(&mut bdd, &n, &ms, &cov), Some(1.0));
    }

    #[test]
    fn vacuous_specs_evaluate_to_none() {
        let (n, rid) = one_rule_net();
        let mut bdd = Bdd::new();
        let (ms, cov) = covered_with(&n, &mut bdd, None);
        let empty_guard = ComponentSpec {
            strings: vec![GuardedString::rule(netbdd::Ref::FALSE, rid)],
            measure: Measure::Fraction,
            combinator: Combinator::Only,
        };
        assert_eq!(empty_guard.eval(&mut bdd, &n, &ms, &cov), None);
        let no_strings = ComponentSpec {
            strings: vec![],
            measure: Measure::Fraction,
            combinator: Combinator::Mean,
        };
        assert_eq!(no_strings.eval(&mut bdd, &n, &ms, &cov), None);
    }

    #[test]
    fn combinators_fold_as_documented() {
        let (n, rid) = one_rule_net();
        let mut bdd = Bdd::new();
        // Cover the /25 half of the /24.
        let p25 = header::dst_in(&mut bdd, &"10.0.0.0/25".parse().unwrap());
        let (ms, cov) = covered_with(&n, &mut bdd, Some(p25));
        // Two strings over the same rule: the fully-covered /25 guard and
        // the untouched other /25.
        let other = header::dst_in(&mut bdd, &"10.0.0.128/25".parse().unwrap());
        let m = ms.get(rid);
        let g_hit = bdd.and(m, p25);
        let g_miss = bdd.and(m, other);
        let mk = |comb| ComponentSpec {
            strings: vec![
                GuardedString::rule(g_hit, rid),
                GuardedString::rule(g_miss, rid),
            ],
            measure: Measure::Fraction,
            combinator: comb,
        };
        assert_eq!(mk(Combinator::Min).eval(&mut bdd, &n, &ms, &cov), Some(0.0));
        assert_eq!(mk(Combinator::Max).eval(&mut bdd, &n, &ms, &cov), Some(1.0));
        assert_eq!(
            mk(Combinator::Mean).eval(&mut bdd, &n, &ms, &cov),
            Some(0.5)
        );
        // Equal guard sizes: weighted == mean here.
        assert_eq!(
            mk(Combinator::WeightedByGuard).eval(&mut bdd, &n, &ms, &cov),
            Some(0.5)
        );
    }

    #[test]
    fn aggregators_fold_as_documented() {
        let items = vec![(1.0, 1.0), (0.0, 3.0)];
        assert_eq!(Aggregator::Mean.fold(&items), Some(0.5));
        assert_eq!(Aggregator::Weighted.fold(&items), Some(0.25));
        assert_eq!(Aggregator::Fractional.fold(&items), Some(0.5));
        assert_eq!(Aggregator::Mean.fold(&[]), None);
    }

    #[test]
    fn aggregator_fractional_counts_any_nonzero() {
        let items = vec![(0.001, 1.0), (0.0, 1.0), (1.0, 1.0), (0.5, 1.0)];
        assert_eq!(Aggregator::Fractional.fold(&items), Some(0.75));
    }

    /// Two-hop path: covered on hop 1 only with a disjoint set from hop 2
    /// → path coverage 0 (the paper's "if different rules of the path
    /// were tested using disjoint sets of packets, the coverage will be
    /// zero").
    #[test]
    fn disjoint_per_hop_coverage_yields_zero_path_coverage() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let h = t.add_iface(b, "h", IfaceKind::Host);
        let (ab, _) = t.add_link(a, b);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut n = Network::new(t);
        n.add_rule(a, Rule::forward(p, vec![ab], RouteClass::HostSubnet));
        n.add_rule(b, Rule::forward(p, vec![h], RouteClass::HostSubnet));
        n.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let lo = header::dst_in(&mut bdd, &"10.0.0.0/25".parse().unwrap());
        let hi = header::dst_in(&mut bdd, &"10.0.0.128/25".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(a), lo);
        trace.add_packets(&mut bdd, Location::device(b), hi);
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        let r_a = RuleId {
            device: a,
            index: 0,
        };
        let r_b = RuleId {
            device: b,
            index: 0,
        };
        let guard = ms.get(r_a);
        let s = path_survival(&mut bdd, &n, &ms, &cov, guard, &[r_a, r_b]);
        assert_eq!(s, 0.0);
        // But each rule individually is half covered.
        let m = bdd.probability(cov.get(r_a)) / bdd.probability(ms.get(r_a));
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aligned_per_hop_coverage_survives() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let h = t.add_iface(b, "h", IfaceKind::Host);
        let (ab, _) = t.add_link(a, b);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut n = Network::new(t);
        n.add_rule(a, Rule::forward(p, vec![ab], RouteClass::HostSubnet));
        n.add_rule(b, Rule::forward(p, vec![h], RouteClass::HostSubnet));
        n.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let lo = header::dst_in(&mut bdd, &"10.0.0.0/25".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(a), lo);
        trace.add_packets(&mut bdd, Location::device(b), lo);
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        let r_a = RuleId {
            device: a,
            index: 0,
        };
        let r_b = RuleId {
            device: b,
            index: 0,
        };
        let guard = ms.get(r_a);
        let s = path_survival(&mut bdd, &n, &ms, &cov, guard, &[r_a, r_b]);
        assert!(
            (s - 0.5).abs() < 1e-12,
            "half the guard survives end-to-end, got {s}"
        );
    }

    /// Many-to-one rewrite: the min-ratio refinement keeps the measure
    /// meaningful where the plain Equation (3) would report 100%.
    #[test]
    fn min_ratio_handles_many_to_one_rewrites() {
        use netmodel::{HeaderField, MatchFields, Rewrite};
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let h = t.add_iface(b, "h", IfaceKind::Host);
        let (ab, _) = t.add_link(a, b);
        let target = netmodel::addr::ipv4(10, 0, 0, 1);
        let mut n = Network::new(t);
        // a: rewrite everything in 10.0.0.0/24 to one address, forward.
        n.add_rule(
            a,
            Rule {
                matches: MatchFields::dst_prefix("10.0.0.0/24".parse().unwrap()),
                action: netmodel::Action::Rewrite(
                    Rewrite {
                        set: vec![(HeaderField::Dst4, target as u128)],
                    },
                    vec![ab],
                ),
                class: RouteClass::Other,
            },
        );
        n.add_rule(
            b,
            Rule::forward(Prefix::host_v4(target), vec![h], RouteClass::HostSubnet),
        );
        n.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        // Test only 1/4 of the /24 at a, but at b the rewritten packets
        // all collapse to `target`, which the b-hop test fully covers.
        let mut trace = CoverageTrace::new();
        let quarter = header::dst_in(&mut bdd, &"10.0.0.0/26".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(a), quarter);
        let t_dst = header::dst_in(&mut bdd, &Prefix::host_v4(target));
        trace.add_packets(&mut bdd, Location::device(b), t_dst);
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        let r_a = RuleId {
            device: a,
            index: 0,
        };
        let r_b = RuleId {
            device: b,
            index: 0,
        };
        let guard = ms.get(r_a);
        let s = path_survival(&mut bdd, &n, &ms, &cov, guard, &[r_a, r_b]);
        // Hop a ratio = 1/4; after the rewrite both chains collapse to the
        // single target address, hop b ratio = 1. Min = 1/4 — not the 100%
        // naive Equation (3) would give.
        assert!((s - 0.25).abs() < 1e-12, "got {s}");
    }
}
