//! Covered-set computation — Algorithm 1 of the paper (§5.2, step 2).
//!
//! From the coverage trace `(P_T, R_T)` and the disjoint match sets
//! `M[r]`, compute each rule's covered set `T[r]`:
//!
//! * if `r ∈ R_T` (a state-inspection test examined it), the rule is
//!   fully covered: `T[r] = M[r]` — the compositionality requirement of
//!   §3.2 (inspecting state counts as analysing every packet that state
//!   can affect);
//! * otherwise `T[r] = P_T|v ∩ M[r]`, the tested packets present at the
//!   rule's device that fall inside its match set.
//!
//! Rules scoped to an ingress interface only intersect packets recorded
//! on that interface, matching the forwarding engine's semantics.

use std::collections::HashMap;

use netbdd::{Bdd, PortableBdd, Ref};
use netmodel::topology::DeviceId;
use netmodel::{IfaceId, MatchSets, Network, RuleId};

use crate::parallel::ParallelRunner;
use crate::trace::CoverageTrace;

/// The covered sets `T[r]` of every rule in the network.
#[derive(Clone, Debug)]
pub struct CoveredSets {
    /// `covered[device][rule_index]`.
    covered: Vec<Vec<Ref>>,
}

impl CoveredSets {
    /// Run Algorithm 1 over every rule in the network.
    pub fn compute(
        net: &Network,
        ms: &MatchSets,
        trace: &CoverageTrace,
        bdd: &mut Bdd,
    ) -> CoveredSets {
        let _span = netobs::span!("covered_sets");
        let mut covered = Vec::with_capacity(net.topology().device_count());
        for (device, _) in net.topology().devices() {
            covered.push(device_covered(net, ms, trace, bdd, device));
        }
        CoveredSets { covered }
    }

    /// Re-run Algorithm 1 for one device in place, leaving every other
    /// device's shard untouched — the unit of invalidation a long-lived
    /// engine uses after a rule or test delta confined to `device`.
    /// Identical math to the per-device body of [`CoveredSets::compute`],
    /// so the refreshed shard is bit-identical to a from-scratch batch
    /// recompute in the same manager.
    pub fn recompute_device(
        &mut self,
        net: &Network,
        ms: &MatchSets,
        trace: &CoverageTrace,
        bdd: &mut Bdd,
        device: DeviceId,
    ) {
        self.covered[device.0 as usize] = device_covered(net, ms, trace, bdd, device);
    }

    /// Algorithm 1 sharded by device across `threads` worker threads.
    ///
    /// Bit-identical to [`CoveredSets::compute`] on either backend. On a
    /// private manager the main thread exports each device's inputs (the
    /// trace's packets at the device, plus every rule's match set),
    /// workers intersect them in private managers, and the results
    /// import back — in device order — onto the same canonical `Ref`s
    /// the sequential pass would produce. On a shared manager
    /// (`Bdd::new_shared`) each worker runs the sequential per-device
    /// body through its own [`Bdd::handle`] directly: match sets and
    /// trace refs are already valid in the shared arena, results come
    /// back as canonical refs, and the `PortableBdd` round-trip
    /// disappears.
    pub fn compute_parallel(
        net: &Network,
        ms: &MatchSets,
        trace: &CoverageTrace,
        bdd: &mut Bdd,
        threads: usize,
    ) -> CoveredSets {
        if threads <= 1 {
            return Self::compute(net, ms, trace, bdd);
        }
        if bdd.is_shared() {
            let _span = netobs::span!("covered_sets_parallel");
            let devices: Vec<DeviceId> = net.topology().devices().map(|(d, _)| d).collect();
            let ranges = ParallelRunner::chunk_ranges(devices.len(), threads);
            let seeds: Vec<Bdd> = ranges.iter().map(|_| bdd.handle()).collect();
            let shards: Vec<Vec<Vec<Ref>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .zip(seeds)
                    .map(|(range, mut local)| {
                        let chunk = &devices[range];
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|&device| device_covered(net, ms, trace, &mut local, device))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("covered-set worker panicked"))
                    .collect()
            });
            // Ranges are contiguous and in device order, so flattening
            // restores `covered[device]` indexing.
            return CoveredSets {
                covered: shards.into_iter().flatten().collect(),
            };
        }
        let _span = netobs::span!("covered_sets_parallel");

        /// `applicable` slot per rule: `None` for inspected rules (the
        /// covered set is the match set, no intersection needed).
        struct RuleJob {
            m: PortableBdd,
            applicable: Option<usize>,
        }
        /// One device's shard: slot 0 of `applicable` is the device-wide
        /// packet set, further slots are per-ingress-interface sets.
        struct DeviceJob {
            applicable: Vec<PortableBdd>,
            rules: Vec<RuleJob>,
        }

        let mut device_jobs: Vec<DeviceJob> = Vec::with_capacity(net.topology().device_count());
        for (device, _) in net.topology().devices() {
            let at_device = trace.packets.at_device(bdd, device);
            let mut applicable = vec![bdd.export(at_device)];
            let mut iface_slot: HashMap<IfaceId, usize> = HashMap::new();
            let mut rules = Vec::with_capacity(net.device_rules(device).len());
            for id in net.device_rule_ids(device) {
                let slot = if trace.rules.contains(&id) {
                    None
                } else {
                    Some(match net.rule(id).matches.in_iface {
                        None => 0,
                        Some(iface) => *iface_slot.entry(iface).or_insert_with(|| {
                            let at_iface = trace.packets.at_device_iface(device, iface);
                            applicable.push(bdd.export(at_iface));
                            applicable.len() - 1
                        }),
                    })
                };
                rules.push(RuleJob {
                    m: bdd.export(ms.get(id)),
                    applicable: slot,
                });
            }
            device_jobs.push(DeviceJob { applicable, rules });
        }

        let ranges = ParallelRunner::chunk_ranges(device_jobs.len(), threads);
        let shards: Vec<Vec<Vec<PortableBdd>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let chunk = &device_jobs[range];
                    scope.spawn(move || {
                        let mut local = Bdd::new();
                        chunk
                            .iter()
                            .map(|dev| {
                                let applicable: Vec<Ref> =
                                    dev.applicable.iter().map(|p| local.import(p)).collect();
                                dev.rules
                                    .iter()
                                    .map(|rule| {
                                        let m = local.import(&rule.m);
                                        let t = match rule.applicable {
                                            None => m,
                                            Some(slot) => local.and(applicable[slot], m),
                                        };
                                        local.export(t)
                                    })
                                    .collect()
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("covered-set worker panicked"))
                .collect()
        });

        let mut covered = Vec::with_capacity(device_jobs.len());
        for shard in shards {
            for dev in shard {
                covered.push(dev.iter().map(|p| bdd.import(p)).collect());
            }
        }
        CoveredSets { covered }
    }

    /// The covered set `T[r]` of one rule.
    pub fn get(&self, id: RuleId) -> Ref {
        self.covered[id.device.0 as usize][id.index as usize]
    }

    /// Whether the rule was exercised at all.
    pub fn is_exercised(&self, id: RuleId) -> bool {
        !self.get(id).is_false()
    }

    /// Whether any of the given rules was exercised — the cross-reference
    /// a mutation study needs: a mutant sits in covered territory iff some
    /// rule it perturbs has a non-empty covered set.
    pub fn any_exercised(&self, ids: impl IntoIterator<Item = RuleId>) -> bool {
        ids.into_iter().any(|id| self.is_exercised(id))
    }

    /// Append every covered-set ref to `roots` (GC root registration).
    pub fn collect_refs(&self, roots: &mut Vec<Ref>) {
        for dev in &self.covered {
            roots.extend(dev.iter().copied());
        }
    }

    /// Rewrite every held ref through `f` (a GC relocation map).
    pub fn remap_refs(&mut self, f: impl Fn(Ref) -> Ref) {
        for dev in &mut self.covered {
            for r in dev.iter_mut() {
                *r = f(*r);
            }
        }
    }
}

/// Algorithm 1 for one device: the shared body of
/// [`CoveredSets::compute`] and [`CoveredSets::recompute_device`].
fn device_covered(
    net: &Network,
    ms: &MatchSets,
    trace: &CoverageTrace,
    bdd: &mut Bdd,
    device: DeviceId,
) -> Vec<Ref> {
    // The packets the trace recorded anywhere at this device.
    let at_device = trace.packets.at_device(bdd, device);
    let mut dev = Vec::with_capacity(net.device_rules(device).len());
    for id in net.device_rule_ids(device) {
        let m = ms.get(id);
        let t = if trace.rules.contains(&id) {
            m
        } else {
            let applicable = match net.rule(id).matches.in_iface {
                None => at_device,
                Some(iface) => trace.packets.at_device_iface(device, iface),
            };
            bdd.and(applicable, m)
        };
        dev.push(t);
    }
    dev
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::Prefix;
    use netmodel::header;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{DeviceId, IfaceId, IfaceKind, Role, Topology};
    use netmodel::Location;

    /// One device: /24 to hosts, default up.
    fn net() -> (Network, DeviceId) {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "hosts", IfaceKind::Host);
        t.add_iface(d, "up", IfaceKind::External);
        let mut n = Network::new(t);
        n.add_rule(
            d,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![IfaceId(0)],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            d,
            Rule::forward(
                Prefix::v4_default(),
                vec![IfaceId(1)],
                RouteClass::StaticDefault,
            ),
        );
        n.finalize();
        (n, d)
    }

    #[test]
    fn untested_rules_have_empty_covered_sets() {
        let (n, _) = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let trace = CoverageTrace::new();
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        for (id, _) in n.rules() {
            assert!(!cov.is_exercised(id));
        }
    }

    #[test]
    fn inspected_rule_is_fully_covered() {
        let (n, d) = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let default_id = RuleId {
            device: d,
            index: 1,
        };
        trace.add_rule(default_id);
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        assert_eq!(cov.get(default_id), ms.get(default_id));
        assert!(!cov.is_exercised(RuleId {
            device: d,
            index: 0
        }));
    }

    #[test]
    fn marked_packets_cover_their_rule_portion() {
        let (n, d) = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        // Mark half of the /24 (a /25).
        let p25 = header::dst_in(&mut bdd, &"10.0.0.0/25".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(d), p25);
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        let specific = RuleId {
            device: d,
            index: 0,
        };
        let default = RuleId {
            device: d,
            index: 1,
        };
        assert_eq!(cov.get(specific), p25);
        assert!(!cov.is_exercised(default));
        // Covered sets never exceed match sets.
        assert!(bdd.subset(cov.get(specific), ms.get(specific)));
    }

    #[test]
    fn packets_crossing_rule_boundaries_split_correctly() {
        let (n, d) = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        // Mark a /8 that includes the /24: covers all of the /24 rule and
        // part of the default.
        let p8 = header::dst_in(&mut bdd, &"10.0.0.0/8".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(d), p8);
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        let specific = RuleId {
            device: d,
            index: 0,
        };
        let default = RuleId {
            device: d,
            index: 1,
        };
        assert_eq!(cov.get(specific), ms.get(specific)); // /24 fully covered
                                                         // Default covered exactly on p8 minus the /24.
        let expect = bdd.diff(p8, ms.get(specific));
        assert_eq!(cov.get(default), expect);
    }

    #[test]
    fn compositionality_symbolic_equals_union_of_concrete() {
        // §3.2: a symbolic test's coverage must equal the combined
        // coverage of concrete tests that collectively cover the same
        // packets. Here: marking a /30 at once vs. marking its 4
        // addresses individually.
        let (n, d) = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);

        let mut sym = CoverageTrace::new();
        let p30 = header::dst_in(&mut bdd, &"10.0.0.4/30".parse().unwrap());
        sym.add_packets(&mut bdd, Location::device(d), p30);

        let mut conc = CoverageTrace::new();
        for a in 4..8u32 {
            let pkt = header::Packet::v4_to(netmodel::addr::ipv4(10, 0, 0, a as u8));
            // A concrete mark constrains every header field; union over
            // the full cross product of the remaining fields is what the
            // /30 symbolic mark represents, so mark dst-only cubes here.
            let dst = header::dst_in(
                &mut bdd,
                &Prefix::v4(netmodel::addr::ipv4(10, 0, 0, a as u8), 32),
            );
            let _ = pkt;
            conc.add_packets(&mut bdd, Location::device(d), dst);
        }
        let cov_sym = CoveredSets::compute(&n, &ms, &sym, &mut bdd);
        let cov_conc = CoveredSets::compute(&n, &ms, &conc, &mut bdd);
        for (id, _) in n.rules() {
            assert_eq!(cov_sym.get(id), cov_conc.get(id));
        }
    }

    #[test]
    fn compositionality_inspection_equals_full_symbolic() {
        // §3.2: inspecting a rule must equal a symbolic test over every
        // packet the rule can affect.
        let (n, d) = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let id = RuleId {
            device: d,
            index: 0,
        };

        let mut inspect = CoverageTrace::new();
        inspect.add_rule(id);

        let mut sym = CoverageTrace::new();
        let m = ms.get(id);
        sym.add_packets(&mut bdd, Location::device(d), m);

        let a = CoveredSets::compute(&n, &ms, &inspect, &mut bdd);
        let b = CoveredSets::compute(&n, &ms, &sym, &mut bdd);
        assert_eq!(a.get(id), b.get(id));
    }

    #[test]
    fn parallel_covered_sets_match_sequential_bit_for_bit() {
        let (n, d) = net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let p8 = header::dst_in(&mut bdd, &"10.0.0.0/8".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(d), p8);
        trace.add_rule(RuleId {
            device: d,
            index: 1,
        });
        let seq = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        for threads in [1, 2, 3, 8] {
            let par = CoveredSets::compute_parallel(&n, &ms, &trace, &mut bdd, threads);
            for (id, _) in n.rules() {
                assert_eq!(par.get(id), seq.get(id), "threads={threads} id={id:?}");
            }
        }
    }

    #[test]
    fn parallel_covered_sets_respect_ingress_scoping() {
        use netmodel::MatchFields;
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        let i0 = t.add_iface(d, "i0", IfaceKind::Host);
        let _i1 = t.add_iface(d, "i1", IfaceKind::Host);
        let mut n = Network::new(t);
        n.add_rule(
            d,
            Rule {
                matches: MatchFields {
                    in_iface: Some(i0),
                    ..MatchFields::default()
                },
                action: netmodel::Action::Drop,
                class: RouteClass::Other,
            },
        );
        n.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let half = header::dst_in(&mut bdd, &"10.0.0.0/8".parse().unwrap());
        trace.add_packets(&mut bdd, Location::at(d, i0), half);
        let seq = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        let par = CoveredSets::compute_parallel(&n, &ms, &trace, &mut bdd, 2);
        let id = RuleId {
            device: d,
            index: 0,
        };
        assert_eq!(par.get(id), seq.get(id));
        assert!(par.is_exercised(id));
    }

    #[test]
    fn ingress_scoped_rules_only_see_their_interface() {
        use netmodel::MatchFields;
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        let i0 = t.add_iface(d, "i0", IfaceKind::Host);
        let i1 = t.add_iface(d, "i1", IfaceKind::Host);
        let mut n = Network::new(t);
        n.add_rule(
            d,
            Rule {
                matches: MatchFields {
                    in_iface: Some(i0),
                    ..MatchFields::default()
                },
                action: netmodel::Action::Drop,
                class: RouteClass::Other,
            },
        );
        n.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let id = RuleId {
            device: d,
            index: 0,
        };

        // Packets marked on the other interface do not cover the rule.
        let mut t1 = CoverageTrace::new();
        let full = bdd.full();
        t1.add_packets(&mut bdd, Location::at(d, i1), full);
        let c1 = CoveredSets::compute(&n, &ms, &t1, &mut bdd);
        assert!(!c1.is_exercised(id));

        // Packets marked on the scoped interface do.
        let mut t2 = CoverageTrace::new();
        t2.add_packets(&mut bdd, Location::at(d, i0), full);
        let c2 = CoveredSets::compute(&n, &ms, &t2, &mut bdd);
        assert_eq!(c2.get(id), ms.get(id));
    }
}
