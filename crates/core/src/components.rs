//! Dependency specifications for the common network components (§4.3.2):
//! rules, devices, outgoing interfaces, paths, and flows.
//!
//! Each function builds the `(κ, µ, G)` triple for one component; the
//! [`crate::Analyzer`] evaluates them (and provides the faster fused
//! implementations used by the standard reports, which are tested to
//! agree with these specifications).

use netbdd::Ref;
use netmodel::topology::DeviceId;
use netmodel::{IfaceId, MatchSets, Network, RuleId};

use crate::framework::{Combinator, ComponentSpec, GuardedString, Measure};

/// Rule coverage: `G = {M[r] ▷ r}`, µ = fraction of the match set
/// covered, κ picks the only element.
pub fn rule_spec(ms: &MatchSets, rule: RuleId) -> ComponentSpec {
    ComponentSpec {
        strings: vec![GuardedString::rule(ms.get(rule), rule)],
        measure: Measure::Fraction,
        combinator: Combinator::Only,
    }
}

/// Device coverage: one guarded string per rule, weighted-average
/// combinator — the fraction of the device's total handled packet space
/// that has been tested.
pub fn device_spec(net: &Network, ms: &MatchSets, device: DeviceId) -> ComponentSpec {
    let strings = net
        .device_rule_ids(device)
        .map(|id| GuardedString::rule(ms.get(id), id))
        .collect();
    ComponentSpec {
        strings,
        measure: Measure::Fraction,
        combinator: Combinator::WeightedByGuard,
    }
}

/// Outgoing-interface coverage: like device coverage but restricted to
/// the rules that forward packets out of `iface`.
pub fn out_iface_spec(net: &Network, ms: &MatchSets, iface: IfaceId) -> ComponentSpec {
    let strings = net
        .rules_out_iface(iface)
        .into_iter()
        .map(|id| GuardedString::rule(ms.get(id), id))
        .collect();
    ComponentSpec {
        strings,
        measure: Measure::Fraction,
        combinator: Combinator::WeightedByGuard,
    }
}

/// Path coverage for one path: `G = {P ▷ r₁,…,r_k}`, κ = only.
pub fn path_spec(guard: Ref, rules: Vec<RuleId>) -> ComponentSpec {
    ComponentSpec {
        strings: vec![GuardedString { guard, rules }],
        measure: Measure::Fraction,
        combinator: Combinator::Only,
    }
}

/// Flow coverage: one guarded string per path the flow takes, weighted
/// by the share of the flow's packets using each path.
pub fn flow_spec(strings: Vec<GuardedString>) -> ComponentSpec {
    ComponentSpec {
        strings,
        measure: Measure::Fraction,
        combinator: Combinator::WeightedByGuard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covered::CoveredSets;
    use crate::trace::CoverageTrace;
    use netbdd::Bdd;
    use netmodel::addr::Prefix;
    use netmodel::header;
    use netmodel::rule::{RouteClass, Rule};
    use netmodel::topology::{IfaceKind, Role, Topology};
    use netmodel::Location;

    fn two_rule_net() -> (Network, DeviceId, IfaceId, IfaceId) {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        let h = t.add_iface(d, "hosts", IfaceKind::Host);
        let up = t.add_iface(d, "up", IfaceKind::External);
        let mut n = Network::new(t);
        n.add_rule(
            d,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![h],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            d,
            Rule::forward(Prefix::v4_default(), vec![up], RouteClass::StaticDefault),
        );
        n.finalize();
        (n, d, h, up)
    }

    #[test]
    fn device_spec_weights_by_match_set_size() {
        let (n, d, _, _) = two_rule_net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        // Cover only the /24 (tiny next to the default's residual space).
        let mut trace = CoverageTrace::new();
        let p24 = header::dst_in(&mut bdd, &"10.0.0.0/24".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(d), p24);
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        let got = device_spec(&n, &ms, d)
            .eval(&mut bdd, &n, &ms, &cov)
            .unwrap();
        // Weighted coverage ≈ |/24| / |v4 plane| — essentially zero.
        assert!(got > 0.0 && got < 1e-4, "got {got}");
        // Whereas covering the default dominates.
        let mut trace2 = CoverageTrace::new();
        trace2.add_rule(RuleId {
            device: d,
            index: 1,
        });
        let cov2 = CoveredSets::compute(&n, &ms, &trace2, &mut bdd);
        let got2 = device_spec(&n, &ms, d)
            .eval(&mut bdd, &n, &ms, &cov2)
            .unwrap();
        assert!(got2 > 0.99, "got {got2}");
    }

    #[test]
    fn out_iface_spec_sees_only_its_rules() {
        let (n, d, h, up) = two_rule_net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        trace.add_rule(RuleId {
            device: d,
            index: 1,
        }); // the default route
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        // The uplink iface (default route) is fully covered.
        let up_cov = out_iface_spec(&n, &ms, up)
            .eval(&mut bdd, &n, &ms, &cov)
            .unwrap();
        assert_eq!(up_cov, 1.0);
        // The host iface (the /24) is untouched.
        let h_cov = out_iface_spec(&n, &ms, h)
            .eval(&mut bdd, &n, &ms, &cov)
            .unwrap();
        assert_eq!(h_cov, 0.0);
    }

    #[test]
    fn iface_with_no_rules_is_vacuous() {
        let (n, _, _, _) = two_rule_net();
        let mut t2 = Topology::new();
        let d2 = t2.add_device("r2", Role::Tor);
        let lonely = t2.add_iface(d2, "unused", IfaceKind::Host);
        let mut n2 = Network::new(t2);
        n2.finalize();
        let mut bdd = Bdd::new();
        let ms2 = MatchSets::compute(&n2, &mut bdd);
        let trace = CoverageTrace::new();
        let cov2 = CoveredSets::compute(&n2, &ms2, &trace, &mut bdd);
        assert_eq!(
            out_iface_spec(&n2, &ms2, lonely).eval(&mut bdd, &n2, &ms2, &cov2),
            None
        );
        let _ = n;
    }

    #[test]
    fn rule_spec_matches_direct_ratio() {
        let (n, d, _, _) = two_rule_net();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let mut trace = CoverageTrace::new();
        let p25 = header::dst_in(&mut bdd, &"10.0.0.128/25".parse().unwrap());
        trace.add_packets(&mut bdd, Location::device(d), p25);
        let cov = CoveredSets::compute(&n, &ms, &trace, &mut bdd);
        let id = RuleId {
            device: d,
            index: 0,
        };
        let got = rule_spec(&ms, id).eval(&mut bdd, &n, &ms, &cov).unwrap();
        assert!((got - 0.5).abs() < 1e-12);
    }
}
