//! Sharded test execution: one `Bdd` manager per worker thread.
//!
//! The [`netbdd::Bdd`] manager is deliberately single-threaded — every
//! operation takes `&mut self` — so parallelism comes from *sharding*,
//! not sharing: a [`ParallelRunner`] partitions a job list into
//! contiguous chunks, runs each chunk on its own OS thread with a
//! private manager and [`Tracker`], and merges the per-worker
//! [`crate::trace::PortableTrace`]s back into the caller's manager.
//!
//! The merged result is **bit-identical** to running the same jobs
//! sequentially against the caller's manager:
//!
//! * per-location packet sets are unions; unions are associative and
//!   commutative *as functions*, and the manager is canonical, so any
//!   union order lands on the same `Ref`;
//! * rule marks live in a `BTreeSet`, which is order-independent by
//!   construction;
//! * the merge itself happens on one thread in worker-index order, so
//!   even arena allocation order is deterministic run to run.
//!
//! Threads are plain `std::thread::scope` workers — no external runtime
//! — and job closures see borrowed network state (`&Network` etc. are
//! `Sync`; only the BDD state is thread-private).

use std::ops::Range;
use std::time::{Duration, Instant};

use netbdd::{Bdd, Stats};

use crate::trace::{CoverageTrace, PortableTrace};
use crate::tracker::Tracker;

/// What one worker did, for bench output and cache diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct WorkerReport {
    /// Worker index (also its position in the deterministic merge).
    pub worker: usize,
    /// Jobs the worker executed.
    pub jobs: usize,
    /// Wall-clock time from thread start to trace export.
    pub elapsed: Duration,
    /// Final statistics of the worker's private manager.
    pub stats: Stats,
}

/// Runs coverage jobs across worker threads, one private manager each.
#[derive(Clone, Copy, Debug)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner that shards work over `threads` workers (≥ 1).
    pub fn new(threads: usize) -> ParallelRunner {
        assert!(threads > 0, "a runner needs at least one worker");
        ParallelRunner { threads }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Deterministic balanced partition of `0..n` into `parts` contiguous
    /// ranges whose lengths differ by at most one (front-loaded).
    pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
        let parts = parts.max(1);
        let base = n / parts;
        let extra = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Run `jobs` across the workers and merge the traces into `bdd`.
    ///
    /// Each worker gets a fresh manager, calls `setup` once to derive its
    /// per-manager state (typically `MatchSets::compute` — match sets are
    /// `Ref`s and cannot be shared across managers), then feeds every job
    /// in its chunk through `job` with a private tracker. The merged
    /// trace is bit-identical to a sequential run of the same jobs (see
    /// the module docs for why).
    pub fn run<J, S>(
        &self,
        bdd: &mut Bdd,
        jobs: &[J],
        setup: impl Fn(&mut Bdd) -> S + Sync,
        job: impl Fn(&mut Bdd, &mut S, &mut Tracker, &J) + Sync,
    ) -> (CoverageTrace, Vec<WorkerReport>)
    where
        J: Sync,
    {
        let ranges = Self::chunk_ranges(jobs.len(), self.threads);
        let results: Vec<(PortableTrace, WorkerReport)> = std::thread::scope(|scope| {
            let setup = &setup;
            let job = &job;
            let handles: Vec<_> = ranges
                .into_iter()
                .enumerate()
                .map(|(worker, range)| {
                    let chunk = &jobs[range];
                    scope.spawn(move || {
                        let start = Instant::now();
                        let mut local = Bdd::new();
                        let mut state = setup(&mut local);
                        let mut tracker = Tracker::new();
                        for j in chunk {
                            job(&mut local, &mut state, &mut tracker, j);
                        }
                        let trace = tracker.into_trace();
                        let portable = trace.export(&local);
                        let report = WorkerReport {
                            worker,
                            jobs: chunk.len(),
                            elapsed: start.elapsed(),
                            stats: local.stats(),
                        };
                        (portable, report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });

        let mut merged = CoverageTrace::new();
        let mut reports = Vec::with_capacity(results.len());
        for (portable, report) in results {
            let trace = portable.import(bdd);
            merged.merge(bdd, &trace);
            reports.push(report);
        }
        (merged, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::topology::DeviceId;
    use netmodel::Location;

    #[test]
    fn chunk_ranges_partition_exactly() {
        for n in 0..20 {
            for parts in 1..6 {
                let ranges = ParallelRunner::chunk_ranges(n, parts);
                assert_eq!(ranges.len(), parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                // Contiguous and balanced.
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start);
                    expect_start = r.end;
                }
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    /// One mark per job: device i gets the cube "var(j) for job j".
    fn mark_job(bdd: &mut Bdd, _s: &mut (), tracker: &mut Tracker, j: &u32) {
        let set = bdd.var(*j);
        tracker.mark_packet(bdd, Location::device(DeviceId(j % 3)), set);
    }

    #[test]
    fn parallel_trace_is_bit_identical_to_sequential() {
        let jobs: Vec<u32> = (0..17).collect();

        let mut bdd = Bdd::new();
        // Sequential reference on the shared manager.
        let mut tracker = Tracker::new();
        for j in &jobs {
            mark_job(&mut bdd, &mut (), &mut tracker, j);
        }
        let sequential = tracker.into_trace();

        for threads in [1, 2, 4, 7] {
            let runner = ParallelRunner::new(threads);
            let (merged, reports) = runner.run(&mut bdd, &jobs, |_| (), mark_job);
            assert_eq!(reports.len(), threads);
            assert_eq!(reports.iter().map(|r| r.jobs).sum::<usize>(), jobs.len());
            assert_eq!(merged.rules, sequential.rules);
            assert_eq!(merged.packets.len(), sequential.packets.len());
            for (loc, set) in sequential.packets.iter() {
                assert_eq!(merged.packets.at(loc), set, "{threads} threads, {loc:?}");
            }
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs: Vec<u32> = vec![1, 2];
        let mut bdd = Bdd::new();
        let runner = ParallelRunner::new(8);
        let (merged, reports) = runner.run(&mut bdd, &jobs, |_| (), mark_job);
        assert_eq!(reports.len(), 8);
        assert!(!merged.is_empty());
    }

    #[test]
    fn worker_reports_carry_manager_stats() {
        let jobs: Vec<u32> = (0..8).collect();
        let mut bdd = Bdd::new();
        let runner = ParallelRunner::new(2);
        let (_, reports) = runner.run(&mut bdd, &jobs, |_| (), mark_job);
        for r in &reports {
            assert!(r.stats.nodes > 2, "worker built something");
        }
    }
}
