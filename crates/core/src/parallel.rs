//! Sharded test execution: one `Bdd` manager (or handle) per worker.
//!
//! Every [`netbdd::Bdd`] operation takes `&mut self`, so parallelism
//! comes from giving each worker thread its own manager. Two backends:
//!
//! * **Private** (the default): a [`ParallelRunner`] partitions a job
//!   list into contiguous chunks, runs each chunk on its own OS thread
//!   with a private manager and [`Tracker`], and merges the per-worker
//!   [`crate::trace::PortableTrace`]s back into the caller's manager via
//!   export/import.
//! * **Shared** (`Bdd::new_shared`): each worker gets a
//!   [`netbdd::Bdd::handle`] onto the caller's shared arena instead.
//!   Hash-consing is global, so worker results are already canonical
//!   `Ref`s in the caller's manager and the merge skips the
//!   export/import round-trip entirely.
//!
//! The merged result is **bit-identical** to running the same jobs
//! sequentially against the caller's manager:
//!
//! * per-location packet sets are unions; unions are associative and
//!   commutative *as functions*, and the manager is canonical, so any
//!   union order lands on the same `Ref`;
//! * rule marks live in a `BTreeSet`, which is order-independent by
//!   construction;
//! * the merge itself happens on one thread in worker-index order, so
//!   even arena allocation order is deterministic run to run (shared
//!   arena *indices* vary run to run, but canonical structure — and
//!   thus every exported `PortableBdd` — does not).
//!
//! Threads are plain `std::thread::scope` workers — no external runtime
//! — and job closures see borrowed network state (`&Network` etc. are
//! `Sync`; only the BDD handle is thread-private).

use std::ops::Range;
use std::time::{Duration, Instant};

use netbdd::{Bdd, Stats};

use crate::trace::{CoverageTrace, PortableTrace};
use crate::tracker::Tracker;

/// What one worker did, for bench output and cache diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct WorkerReport {
    /// Worker index (also its position in the deterministic merge).
    pub worker: usize,
    /// Jobs the worker executed.
    pub jobs: usize,
    /// Wall-clock time from thread start to trace export.
    pub elapsed: Duration,
    /// Final statistics of the worker's private manager.
    pub stats: Stats,
}

/// Runs coverage jobs across worker threads, one private manager each.
///
/// # Examples
///
/// The sharding itself is exposed as [`ParallelRunner::chunk_ranges`]:
/// a deterministic balanced partition, so any worker count yields the
/// same job-to-range assignment on every run.
///
/// ```
/// use yardstick::ParallelRunner;
///
/// let runner = ParallelRunner::new(3);
/// assert_eq!(runner.threads(), 3);
/// assert_eq!(
///     ParallelRunner::chunk_ranges(10, 3),
///     vec![0..4, 4..7, 7..10],
/// );
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner that shards work over `threads` workers (≥ 1).
    pub fn new(threads: usize) -> ParallelRunner {
        assert!(threads > 0, "a runner needs at least one worker");
        ParallelRunner { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Deterministic balanced partition of `0..n` into at most `parts`
    /// contiguous *non-empty* ranges whose lengths differ by at most one
    /// (front-loaded). With more parts than items every item gets its own
    /// range and no empty trailing ranges are produced — [`Self::run`]
    /// spawns one worker per range, and a worker with no jobs would burn
    /// a thread (manager construction, setup, trace export) to contribute
    /// nothing to the merge.
    pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
        let parts = parts.clamp(1, n.max(1));
        if n == 0 {
            return Vec::new();
        }
        let base = n / parts;
        let extra = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Run `jobs` across the workers and merge the traces into `bdd`.
    ///
    /// On a private manager each worker gets a fresh manager, calls
    /// `setup` once to derive its per-manager state (typically
    /// `MatchSets::compute` — match sets are `Ref`s and cannot be shared
    /// across private managers), then feeds every job in its chunk
    /// through `job` with a private tracker. On a shared manager each
    /// worker gets a [`Bdd::handle`] instead, and worker traces carry
    /// already-canonical `Ref`s — the merge skips export/import. Either
    /// way the merged trace is bit-identical to a sequential run of the
    /// same jobs (see the module docs for why).
    pub fn run<J, S>(
        &self,
        bdd: &mut Bdd,
        jobs: &[J],
        setup: impl Fn(&mut Bdd) -> S + Sync,
        job: impl Fn(&mut Bdd, &mut S, &mut Tracker, &J) + Sync,
    ) -> (CoverageTrace, Vec<WorkerReport>)
    where
        J: Sync,
    {
        /// A worker's trace, in whichever form its backend hands back.
        enum TraceOut {
            /// Private manager: detached snapshot, import on merge.
            Portable(PortableTrace),
            /// Shared arena: refs are already canonical in the caller's
            /// manager.
            Direct(CoverageTrace),
        }
        let ranges = Self::chunk_ranges(jobs.len(), self.threads);
        // Shared backend: mint one handle per worker up front (handles
        // borrow `bdd` only here, before the scope takes the closures).
        let seeds: Vec<Option<Bdd>> = ranges
            .iter()
            .map(|_| bdd.is_shared().then(|| bdd.handle()))
            .collect();
        let results: Vec<(TraceOut, WorkerReport)> = std::thread::scope(|scope| {
            let setup = &setup;
            let job = &job;
            let handles: Vec<_> = ranges
                .into_iter()
                .zip(seeds)
                .enumerate()
                .map(|(worker, (range, seed))| {
                    let chunk = &jobs[range];
                    scope.spawn(move || {
                        let start = Instant::now();
                        let result = {
                            let _w = netobs::span!("worker-{worker}");
                            let mut local = seed.unwrap_or_else(Bdd::new);
                            let mut state = {
                                let _s = netobs::span!("worker_setup");
                                setup(&mut local)
                            };
                            let mut tracker = Tracker::new();
                            {
                                let _s = netobs::span!("worker_jobs");
                                for j in chunk {
                                    job(&mut local, &mut state, &mut tracker, j);
                                }
                            }
                            let trace = tracker.into_trace();
                            let out = if local.is_shared() {
                                TraceOut::Direct(trace)
                            } else {
                                let _s = netobs::span!("worker_export");
                                TraceOut::Portable(trace.export(&local))
                            };
                            let report = WorkerReport {
                                worker,
                                jobs: chunk.len(),
                                elapsed: start.elapsed(),
                                stats: local.stats(),
                            };
                            (out, report)
                        };
                        // The worker thread dies here; park its span tree
                        // in the global sink under its own label.
                        if netobs::enabled() {
                            netobs::flush(&format!("worker-{worker}"));
                        }
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });

        let _merge_span = netobs::span!("trace_merge");
        let mut merged = CoverageTrace::new();
        let mut reports = Vec::with_capacity(results.len());
        for (out, report) in results {
            match out {
                TraceOut::Portable(portable) => {
                    let trace = portable.import(bdd);
                    merged.merge(bdd, &trace);
                }
                TraceOut::Direct(trace) => merged.merge(bdd, &trace),
            }
            reports.push(report);
        }
        if netobs::enabled() {
            for r in &reports {
                publish_worker_gauges(r);
            }
        }
        (merged, reports)
    }
}

/// Snapshot one worker's report into the netobs gauge registry
/// (`worker.N.*`): wall-clock, job count, and the final size and cache
/// behaviour of its private manager.
pub fn publish_worker_gauges(r: &WorkerReport) {
    let w = r.worker;
    netobs::gauge(&format!("worker.{w}.elapsed_secs"), r.elapsed.as_secs_f64());
    netobs::gauge(&format!("worker.{w}.jobs"), r.jobs as f64);
    netobs::gauge(&format!("worker.{w}.bdd.nodes"), r.stats.nodes as f64);
    netobs::gauge(
        &format!("worker.{w}.bdd.ite_hit_rate"),
        r.stats.ite_hit_rate(),
    );
    netobs::gauge(
        &format!("worker.{w}.bdd.unique_hit_rate"),
        r.stats.unique_hit_rate(),
    );
    netobs::gauge(&format!("worker.{w}.bdd.ops"), r.stats.ops.total() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::topology::DeviceId;
    use netmodel::Location;

    #[test]
    fn chunk_ranges_partition_exactly() {
        for n in 0..20 {
            for parts in 1..6 {
                let ranges = ParallelRunner::chunk_ranges(n, parts);
                assert_eq!(ranges.len(), parts.min(n), "n={n} parts={parts}");
                assert!(
                    ranges.iter().all(|r| !r.is_empty()),
                    "no empty ranges: n={n} parts={parts} {ranges:?}"
                );
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                // Contiguous and balanced.
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start);
                    expect_start = r.end;
                }
                if n > 0 {
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    /// One mark per job: device i gets the cube "var(j) for job j".
    fn mark_job(bdd: &mut Bdd, _s: &mut (), tracker: &mut Tracker, j: &u32) {
        let set = bdd.var(*j);
        tracker.mark_packet(bdd, Location::device(DeviceId(j % 3)), set);
    }

    #[test]
    fn parallel_trace_is_bit_identical_to_sequential() {
        let jobs: Vec<u32> = (0..17).collect();

        let mut bdd = Bdd::new();
        // Sequential reference on the shared manager.
        let mut tracker = Tracker::new();
        for j in &jobs {
            mark_job(&mut bdd, &mut (), &mut tracker, j);
        }
        let sequential = tracker.into_trace();

        for threads in [1, 2, 4, 7] {
            let runner = ParallelRunner::new(threads);
            let (merged, reports) = runner.run(&mut bdd, &jobs, |_| (), mark_job);
            assert_eq!(reports.len(), threads);
            assert_eq!(reports.iter().map(|r| r.jobs).sum::<usize>(), jobs.len());
            assert_eq!(merged.rules, sequential.rules);
            assert_eq!(merged.packets.len(), sequential.packets.len());
            for (loc, set) in sequential.packets.iter() {
                assert_eq!(merged.packets.at(loc), set, "{threads} threads, {loc:?}");
            }
        }
    }

    #[test]
    fn more_workers_than_jobs_spawns_only_loaded_workers() {
        // Regression: `chunk_ranges` used to emit empty trailing ranges
        // when parts > n, so a runner with more threads than jobs spawned
        // workers that did nothing but still cost a manager + thread.
        let jobs: Vec<u32> = vec![1, 2, 3];
        // Sequential reference for the bit-identity half of the check.
        let mut bdd = Bdd::new();
        let mut tracker = Tracker::new();
        for j in &jobs {
            mark_job(&mut bdd, &mut (), &mut tracker, j);
        }
        let sequential = tracker.into_trace();

        for threads in [jobs.len() + 1, 2 * jobs.len()] {
            let runner = ParallelRunner::new(threads);
            let (merged, reports) = runner.run(&mut bdd, &jobs, |_| (), mark_job);
            // Exactly one worker per job, each loaded with one.
            assert_eq!(reports.len(), jobs.len(), "threads={threads}");
            assert!(reports.iter().all(|r| r.jobs == 1));
            // Oversubscription must not change the merged trace.
            assert_eq!(merged.rules, sequential.rules);
            for (loc, set) in sequential.packets.iter() {
                assert_eq!(merged.packets.at(loc), set, "threads={threads} {loc:?}");
            }
        }
    }

    #[test]
    fn zero_jobs_spawns_no_workers() {
        let jobs: Vec<u32> = Vec::new();
        let mut bdd = Bdd::new();
        let runner = ParallelRunner::new(4);
        let (merged, reports) = runner.run(&mut bdd, &jobs, |_| (), mark_job);
        assert!(reports.is_empty());
        assert!(merged.is_empty());
    }

    #[test]
    fn worker_reports_carry_manager_stats() {
        let jobs: Vec<u32> = (0..8).collect();
        let mut bdd = Bdd::new();
        let runner = ParallelRunner::new(2);
        let (_, reports) = runner.run(&mut bdd, &jobs, |_| (), mark_job);
        for r in &reports {
            assert!(r.stats.nodes > 2, "worker built something");
        }
    }
}
