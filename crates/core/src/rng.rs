//! Deterministic seed derivation — the workspace's one splitmix64.
//!
//! Several subsystems need reproducible, order-independent pseudo-random
//! streams: Pingmesh derives one RNG seed per ToR pair so concrete
//! sampling is chunking-invariant (PR 2), the mutation engine derives one
//! seed per mutant so operator parameters are a function of the mutant
//! alone, and the `netbdd_micro` workload generator synthesizes rules
//! from a fixed seed. All of them bottom out in the two functions here,
//! so the constants live in exactly one place.
//!
//! The algorithm is splitmix64 (Steele, Lea, Flood — public domain): a
//! 64-bit Weyl sequence step followed by a bijective finalizer. It is not
//! cryptographic; it is a *mixer*, chosen because every output bit
//! depends on every input bit, which is what makes per-key derived seeds
//! ([`seed_mix`]) statistically independent even for adjacent keys.

/// Advance a splitmix64 generator and return the next value.
///
/// `state` is the generator's whole state; seeding it is just assigning
/// the seed. The sequence for a fixed starting state is stable across
/// platforms and releases — benchmark workloads and committed baselines
/// depend on that.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent seed from a base seed and a per-unit key.
///
/// This is the splitmix64 finalizer applied to `seed ^ (key · γ)`: a pure
/// function of `(seed, key)`, so work units (ToR pairs, mutants) can be
/// executed in any order — or sharded across any number of threads — and
/// still see bit-identical pseudo-random choices. The exact bit pattern
/// is load-bearing: Pingmesh pair seeds recorded in committed parallel
/// baselines were produced by this function.
pub fn seed_mix(seed: u64, key: u64) -> u64 {
    let mut z = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs for seed 0 from the public-domain
        // implementation (Vigna's splitmix64.c).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn seed_mix_is_pure_and_key_sensitive() {
        assert_eq!(seed_mix(7, 42), seed_mix(7, 42));
        assert_ne!(seed_mix(7, 42), seed_mix(7, 43));
        assert_ne!(seed_mix(7, 42), seed_mix(8, 42));
        // Adjacent keys decorrelate: no shared high bits.
        let a = seed_mix(0xC0FFEE, 1);
        let b = seed_mix(0xC0FFEE, 2);
        assert!((a ^ b).count_ones() > 16);
    }
}
