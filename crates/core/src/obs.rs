//! netobs glue: snapshot [`netbdd::Stats`] into the gauge registry.
//!
//! The BDD manager is deliberately netobs-free — its operations are the
//! innermost hot loop and must not even test the enabled flag per call.
//! Instead the manager keeps its own plain counters ([`netbdd::Stats`],
//! [`netbdd::OpCounts`]) and pipeline code snapshots them into gauges at
//! phase boundaries with this helper.

use netbdd::Stats;

/// Publish a manager statistics snapshot under `prefix` (e.g. `bdd` →
/// `bdd.nodes`, `bdd.ops.or`, ...). No-op while netobs is disabled.
pub fn publish_bdd_gauges(prefix: &str, stats: &Stats) {
    if !netobs::enabled() {
        return;
    }
    netobs::gauge(&format!("{prefix}.nodes"), stats.nodes as f64);
    netobs::gauge(
        &format!("{prefix}.ite_cache_entries"),
        stats.ite_cache_entries as f64,
    );
    netobs::gauge(
        &format!("{prefix}.ite_cache_capacity"),
        stats.ite_cache_capacity as f64,
    );
    netobs::gauge(
        &format!("{prefix}.ite_cache_occupancy"),
        stats.ite_cache_occupancy(),
    );
    netobs::gauge(
        &format!("{prefix}.ite_evictions"),
        stats.ite_evictions as f64,
    );
    netobs::gauge(
        &format!("{prefix}.prob_cache_entries"),
        stats.prob_cache_entries as f64,
    );
    netobs::gauge(
        &format!("{prefix}.prob_evictions"),
        stats.prob_evictions as f64,
    );
    netobs::gauge(
        &format!("{prefix}.unique_hit_rate"),
        stats.unique_hit_rate(),
    );
    netobs::gauge(&format!("{prefix}.ite_hit_rate"), stats.ite_hit_rate());
    let ops = stats.ops;
    for (class, n) in [
        ("or", ops.or),
        ("and", ops.and),
        ("not", ops.not),
        ("diff", ops.diff),
        ("xor", ops.xor),
        ("restrict", ops.restrict),
        ("quantify", ops.quantify),
    ] {
        netobs::gauge(&format!("{prefix}.ops.{class}"), n as f64);
    }
    netobs::gauge(&format!("{prefix}.ops.total"), ops.total() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lands_in_the_registry() {
        netobs::enable();
        let mut bdd = netbdd::Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let _ = bdd.and(a, b);
        publish_bdd_gauges("bdd", &bdd.stats());
        let report = netobs::report();
        assert!(report.gauges["bdd.nodes"] > 2.0);
        assert_eq!(report.gauges["bdd.ops.and"], 1.0);
        assert_eq!(report.gauges["bdd.ops.total"], 1.0);
        // Bounded-cache telemetry from the complement-edge engine.
        assert!(report.gauges["bdd.ite_cache_capacity"] >= 16.0);
        assert!(report.gauges["bdd.ite_cache_occupancy"] >= 0.0);
        assert_eq!(report.gauges["bdd.ite_evictions"], 0.0);
        assert_eq!(report.gauges["bdd.prob_evictions"], 0.0);
        netobs::disable();
    }
}
