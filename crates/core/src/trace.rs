//! The coverage trace `(P_T, R_T)` — §5.2.
//!
//! During test execution Yardstick stores the union of everything the
//! testing tool reported: `P_T`, the located packets across all
//! `markPacket` calls, and `R_T`, the rules across all `markRule` calls.
//! Overlapping information is removed on the fly (packet sets are
//! unioned per location; rules are a set), so the trace stays compact no
//! matter how many tests run.

use std::collections::BTreeSet;

use netbdd::{Bdd, PortableBdd, PortableBddError, Ref};
use netmodel::{LocatedPacketSet, Location, RuleId};

/// The compact record of what a test suite exercised.
#[derive(Clone, Debug, Default)]
pub struct CoverageTrace {
    /// `P_T`: union of all packets reported by behavioural tests, per
    /// location.
    pub packets: LocatedPacketSet,
    /// `R_T`: rules reported by state-inspection tests.
    pub rules: BTreeSet<RuleId>,
}

impl CoverageTrace {
    /// An empty trace.
    pub fn new() -> CoverageTrace {
        CoverageTrace::default()
    }

    /// Record located packets (a `markPacket` call).
    pub fn add_packets(&mut self, bdd: &mut Bdd, loc: Location, packets: Ref) {
        self.packets.add(bdd, loc, packets);
    }

    /// Record an inspected rule (a `markRule` call).
    pub fn add_rule(&mut self, rule: RuleId) {
        self.rules.insert(rule);
    }

    /// Merge another trace into this one (e.g. traces collected by
    /// independently running test tools).
    pub fn merge(&mut self, bdd: &mut Bdd, other: &CoverageTrace) {
        self.packets.union(bdd, &other.packets);
        self.rules.extend(other.rules.iter().copied());
    }

    /// True when nothing at all was reported.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty() && self.rules.is_empty()
    }

    /// Append every packet-set ref held by the trace to `roots` (GC root
    /// registration; rule ids carry no refs).
    pub fn collect_refs(&self, roots: &mut Vec<Ref>) {
        self.packets.collect_refs(roots);
    }

    /// Rewrite every held ref through `f` (a GC relocation map).
    pub fn remap_refs(&mut self, f: impl Fn(Ref) -> Ref) {
        self.packets.remap_refs(f);
    }

    /// Snapshot the trace into a manager-independent form, so a trace
    /// collected in one thread's `Bdd` can be rebuilt in another's.
    pub fn export(&self, bdd: &Bdd) -> PortableTrace {
        PortableTrace {
            packets: self
                .packets
                .iter()
                .map(|(loc, set)| (loc, bdd.export(set)))
                .collect(),
            rules: self.rules.clone(),
        }
    }
}

/// A [`CoverageTrace`] detached from its manager: per-location
/// [`PortableBdd`] snapshots plus the (manager-free) rule-id set. Plain
/// data, so it can cross thread boundaries.
#[derive(Clone, Debug, Default)]
pub struct PortableTrace {
    packets: Vec<(Location, PortableBdd)>,
    rules: BTreeSet<RuleId>,
}

impl PortableTrace {
    /// Rebuild the trace inside `bdd`. Because imports are hash-consed,
    /// importing into the manager the trace was exported from restores
    /// exactly the original `Ref`s.
    ///
    /// Panics on malformed packet-set snapshots; use
    /// [`PortableTrace::try_import`] for traces received over the wire.
    pub fn import(&self, bdd: &mut Bdd) -> CoverageTrace {
        self.try_import(bdd)
            .expect("malformed PortableTrace snapshot")
    }

    /// [`PortableTrace::import`] for untrusted traces: validates every
    /// per-location snapshot and reports the first malformed one with
    /// its location instead of panicking.
    pub fn try_import(&self, bdd: &mut Bdd) -> Result<CoverageTrace, (Location, PortableBddError)> {
        let mut trace = CoverageTrace::new();
        for (loc, p) in &self.packets {
            let set = bdd.try_import(p).map_err(|e| (*loc, e))?;
            trace.packets.add(bdd, *loc, set);
        }
        trace.rules = self.rules.clone();
        Ok(trace)
    }

    /// Assemble a snapshot from raw parts — the decode half of a wire
    /// format. Validation happens in [`PortableTrace::try_import`].
    pub fn from_parts(
        packets: Vec<(Location, PortableBdd)>,
        rules: BTreeSet<RuleId>,
    ) -> PortableTrace {
        PortableTrace { packets, rules }
    }

    /// The per-location packet-set snapshots — the encode half of a wire
    /// format.
    pub fn packets(&self) -> &[(Location, PortableBdd)] {
        &self.packets
    }

    /// The marked rule ids.
    pub fn rules(&self) -> &BTreeSet<RuleId> {
        &self.rules
    }

    /// Number of marked locations in the snapshot.
    pub fn location_count(&self) -> usize {
        self.packets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::topology::DeviceId;

    fn rid(d: u32, i: u32) -> RuleId {
        RuleId {
            device: DeviceId(d),
            index: i,
        }
    }

    #[test]
    fn starts_empty() {
        assert!(CoverageTrace::new().is_empty());
    }

    #[test]
    fn duplicate_rule_marks_collapse() {
        let mut t = CoverageTrace::new();
        t.add_rule(rid(0, 0));
        t.add_rule(rid(0, 0));
        t.add_rule(rid(1, 2));
        assert_eq!(t.rules.len(), 2);
    }

    #[test]
    fn packet_marks_union_per_location() {
        let mut bdd = Bdd::new();
        let mut t = CoverageTrace::new();
        let loc = Location::device(DeviceId(0));
        let a = bdd.var(0);
        let b = bdd.var(1);
        t.add_packets(&mut bdd, loc, a);
        t.add_packets(&mut bdd, loc, b);
        let expect = bdd.or(a, b);
        assert_eq!(t.packets.at(loc), expect);
    }

    #[test]
    fn portable_roundtrip_restores_identical_refs() {
        let mut bdd = Bdd::new();
        let mut t = CoverageTrace::new();
        let a = bdd.var(0);
        let b = bdd.var(3);
        let ab = bdd.or(a, b);
        t.add_packets(&mut bdd, Location::device(DeviceId(0)), a);
        t.add_packets(&mut bdd, Location::device(DeviceId(1)), ab);
        t.add_rule(rid(2, 1));
        let p = t.export(&bdd);
        assert_eq!(p.location_count(), 2);
        let back = p.import(&mut bdd);
        assert_eq!(back.packets.at(Location::device(DeviceId(0))), a);
        assert_eq!(back.packets.at(Location::device(DeviceId(1))), ab);
        assert_eq!(back.rules, t.rules);
    }

    #[test]
    fn portable_trace_crosses_managers() {
        let mut src = Bdd::new();
        let mut t = CoverageTrace::new();
        let f = {
            let x = src.var(1);
            let y = src.nvar(2);
            src.and(x, y)
        };
        t.add_packets(&mut src, Location::device(DeviceId(7)), f);
        let p = t.export(&src);
        let mut dst = Bdd::new();
        let back = p.import(&mut dst);
        let got = back.packets.at(Location::device(DeviceId(7)));
        assert_eq!(dst.probability(got), src.probability(f));
    }

    #[test]
    fn malformed_portable_trace_reports_location() {
        // A trace whose only packet set references a node that does not
        // exist (truncated snapshot) must fail cleanly, naming where.
        let loc = Location::device(DeviceId(3));
        let bad_set = PortableBdd::from_parts(vec![(0, 0, 12)], 2);
        let p = PortableTrace::from_parts(vec![(loc, bad_set)], BTreeSet::new());
        let mut bdd = Bdd::new();
        let err = p.try_import(&mut bdd).unwrap_err();
        assert_eq!(err.0, loc);
        assert!(matches!(err.1, PortableBddError::SlotOutOfRange { .. }));
    }

    #[test]
    fn merge_combines_both_halves() {
        let mut bdd = Bdd::new();
        let loc = Location::device(DeviceId(0));
        let a = bdd.var(0);
        let b = bdd.var(1);
        let mut t1 = CoverageTrace::new();
        t1.add_packets(&mut bdd, loc, a);
        t1.add_rule(rid(0, 0));
        let mut t2 = CoverageTrace::new();
        t2.add_packets(&mut bdd, loc, b);
        t2.add_rule(rid(2, 0));
        t1.merge(&mut bdd, &t2);
        let expect = bdd.or(a, b);
        assert_eq!(t1.packets.at(loc), expect);
        assert_eq!(t1.rules.len(), 2);
    }
}
