//! Phase-1 coverage tracking: the two-call API of §5.
//!
//! Testing tools report coverage through exactly two entry points,
//! chosen because the information they need is *readily available* to
//! every kind of test (§5.1):
//!
//! * [`Tracker::mark_packet`] — behavioural tests report the located
//!   packet sets they analysed. Local tests call it once per injection;
//!   end-to-end tests call it once per hop with the packet set at that
//!   hop.
//! * [`Tracker::mark_rule`] — state-inspection tests report which rule
//!   they looked at. The expensive translation from "rule" to "match
//!   set" is deferred to phase 2, keeping the testing path fast.
//!
//! A tracker can be disabled, which makes both calls no-ops — that is how
//! the Figure-8 experiment measures tracking overhead (same tests, same
//! code path, tracking on/off).

use netbdd::{Bdd, Ref};
use netmodel::{LocatedPacketSet, Location, RuleId};

use crate::trace::CoverageTrace;

/// Collects the coverage trace while tests execute.
#[derive(Clone, Debug)]
pub struct Tracker {
    trace: CoverageTrace,
    enabled: bool,
    /// Number of `mark_packet` calls accepted (diagnostics).
    packet_calls: u64,
    /// Number of `mark_rule` calls accepted (diagnostics).
    rule_calls: u64,
}

impl Default for Tracker {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracker {
    /// An enabled tracker with an empty trace.
    pub fn new() -> Tracker {
        Tracker {
            trace: CoverageTrace::new(),
            enabled: true,
            packet_calls: 0,
            rule_calls: 0,
        }
    }

    /// A disabled tracker: both marking calls become no-ops. Used to
    /// measure baseline test time without coverage (§8.1).
    pub fn disabled() -> Tracker {
        Tracker {
            enabled: false,
            ..Tracker::new()
        }
    }

    /// Whether mark calls are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// `markPacket(P)`: record that a behavioural test analysed `packets`
    /// at `loc`.
    pub fn mark_packet(&mut self, bdd: &mut Bdd, loc: Location, packets: Ref) {
        if !self.enabled || packets.is_false() {
            return;
        }
        self.packet_calls += 1;
        self.trace.add_packets(bdd, loc, packets);
    }

    /// Bulk variant: record a whole located packet set (e.g. the per-hop
    /// trace of a symbolic reachability run).
    pub fn mark_packet_set(&mut self, bdd: &mut Bdd, packets: &LocatedPacketSet) {
        if !self.enabled {
            return;
        }
        for (loc, set) in packets.iter() {
            self.packet_calls += 1;
            self.trace.add_packets(bdd, loc, set);
        }
    }

    /// `markRule(r)`: record that a state-inspection test examined `rule`.
    pub fn mark_rule(&mut self, rule: RuleId) {
        if !self.enabled {
            return;
        }
        self.rule_calls += 1;
        self.trace.add_rule(rule);
    }

    /// The collected trace (phase-2 input).
    pub fn trace(&self) -> &CoverageTrace {
        &self.trace
    }

    /// Consume the tracker, returning its trace.
    pub fn into_trace(self) -> CoverageTrace {
        self.trace
    }

    /// `(mark_packet calls, mark_rule calls)` accepted so far.
    pub fn call_counts(&self) -> (u64, u64) {
        (self.packet_calls, self.rule_calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::topology::DeviceId;

    #[test]
    fn enabled_tracker_records() {
        let mut bdd = Bdd::new();
        let mut t = Tracker::new();
        let a = bdd.var(0);
        t.mark_packet(&mut bdd, Location::device(DeviceId(0)), a);
        t.mark_rule(RuleId {
            device: DeviceId(0),
            index: 0,
        });
        assert!(!t.trace().is_empty());
        assert_eq!(t.call_counts(), (1, 1));
    }

    #[test]
    fn disabled_tracker_is_a_noop() {
        let mut bdd = Bdd::new();
        let mut t = Tracker::disabled();
        let a = bdd.var(0);
        t.mark_packet(&mut bdd, Location::device(DeviceId(0)), a);
        t.mark_rule(RuleId {
            device: DeviceId(0),
            index: 0,
        });
        assert!(t.trace().is_empty());
        assert_eq!(t.call_counts(), (0, 0));
    }

    #[test]
    fn empty_packet_marks_are_ignored() {
        let mut bdd = Bdd::new();
        let mut t = Tracker::new();
        t.mark_packet(&mut bdd, Location::device(DeviceId(0)), netbdd::Ref::FALSE);
        assert!(t.trace().is_empty());
        assert_eq!(t.call_counts(), (0, 0));
    }

    #[test]
    fn bulk_marking_copies_every_location() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let mut set = LocatedPacketSet::new();
        set.add(&mut bdd, Location::device(DeviceId(0)), a);
        set.add(&mut bdd, Location::device(DeviceId(1)), a);
        let mut t = Tracker::new();
        t.mark_packet_set(&mut bdd, &set);
        assert_eq!(t.trace().packets.len(), 2);
    }
}
