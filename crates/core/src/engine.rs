//! The persistent coverage engine — incremental serving (long-lived
//! daemon mode).
//!
//! Batch operation computes everything once: match sets, a trace, covered
//! sets, metrics, exit. A serving deployment instead keeps the analysis
//! *alive* while the network underneath it changes: routes are programmed
//! and withdrawn, test suites run and are retired, and operators ask
//! coverage questions in between. [`CoverageEngine`] owns all of that
//! state — the routed FIBs, the per-device match-set and covered-set
//! shards, the per-test traces — and accepts deltas, recomputing only the
//! devices a delta touches:
//!
//! * **Rule deltas** ([`CoverageEngine::insert_rule`] /
//!   [`CoverageEngine::withdraw_rule`]) re-derive the one device's
//!   disjoint match sets ([`MatchSets::recompute_device`]) and re-run
//!   Algorithm 1 for that device ([`CoveredSets::recompute_device`]).
//!   Every other device's shard is untouched.
//! * **Test deltas** ([`CoverageEngine::add_test`] /
//!   [`CoverageEngine::remove_test`]) keep one isolated
//!   [`CoverageTrace`] per test. Adding a test unions its trace into the
//!   combined trace (traces are monotone, so a union suffices); removing
//!   one rebuilds the combined trace from the survivors — coverage is
//!   not subtractive, `P_T` is a union — and re-runs Algorithm 1 only at
//!   the devices the departed trace had marked.
//!
//! The invalidation unit is the *device*, not the rule: match sets are
//! first-match chains, so any rule change invalidates every later rule
//! on the same device anyway, and the device shard is exactly what the
//! parallel batch path ([`CoveredSets::compute_parallel`]) already
//! ships to workers. Because every recompute runs the same math in the
//! same hash-consed manager, incremental state is bit-identical to a
//! from-scratch batch recompute of the same network and trace.
//!
//! Rule identity is positional (`RuleId.index`): an insert or withdraw
//! renumbers later rules on that device. Rule marks in traces are
//! interpreted against the *current* table, exactly as a batch run over
//! the final state would.
//!
//! Query results are memoised in a capacity-bounded LRU [`QueryCache`]
//! that is flushed whole on every applied delta (the
//! [`netmodel::MatchSetCache`] policy: flush, never surgically patch,
//! and keep monotone hit/miss/eviction counters across flushes).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use netbdd::{Bdd, GcStats, PortableBddError};
use netmodel::topology::DeviceId;
use netmodel::{IfaceId, Location, MatchSetCache, MatchSets, Network, Rule, RuleId};

use crate::analyzer::Analyzer;
use crate::config::ConfigCoverage;
use crate::covered::CoveredSets;
use crate::framework::Aggregator;
use crate::trace::{CoverageTrace, PortableTrace};

/// Default capacity of the query-result LRU cache.
const DEFAULT_QUERY_CACHE_CAPACITY: usize = 128;

/// Why the engine refused a delta or a query. Deltas arrive over the
/// wire, so every malformed one must be a named error, never a panic —
/// the same discipline `routing::delta` applies to batch pipelines.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The device id is outside the topology.
    UnknownDevice {
        /// The offending device id.
        device: DeviceId,
        /// How many devices the topology has.
        device_count: usize,
    },
    /// A rule referenced an interface that is absent or belongs to a
    /// different device.
    BadIface {
        /// The offending interface id.
        iface: IfaceId,
        /// The device the rule was destined for.
        device: DeviceId,
    },
    /// The rule index is outside its device's table.
    BadRuleIndex {
        /// The offending rule id.
        id: RuleId,
        /// The device's current table length.
        table_len: usize,
    },
    /// A test with this name is already registered.
    DuplicateTest {
        /// The offending test name.
        name: String,
    },
    /// No test with this name is registered.
    UnknownTest {
        /// The offending test name.
        name: String,
    },
    /// A test's portable trace failed validation on import.
    MalformedTrace {
        /// The location whose packet-set snapshot is malformed.
        location: Location,
        /// What was wrong with the snapshot.
        error: PortableBddError,
    },
    /// A topology delta arrived but no routing engine is attached
    /// ([`CoverageEngine::attach_routing`] was never called).
    NoRoutingEngine,
    /// The attached routing engine refused the topology delta.
    Routing(routing::RibError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownDevice {
                device,
                device_count,
            } => write!(
                f,
                "unknown device {device:?} (topology has {device_count} devices)"
            ),
            EngineError::BadIface { iface, device } => {
                write!(f, "interface {iface:?} does not belong to {device:?}")
            }
            EngineError::BadRuleIndex { id, table_len } => write!(
                f,
                "rule r{}.{} is outside its device's table ({table_len} rules)",
                id.device.0, id.index
            ),
            EngineError::DuplicateTest { name } => {
                write!(f, "test {name:?} is already registered")
            }
            EngineError::UnknownTest { name } => write!(f, "no test named {name:?}"),
            EngineError::MalformedTrace { location, error } => {
                write!(f, "malformed trace at {location:?}: {error}")
            }
            EngineError::NoRoutingEngine => {
                write!(f, "no routing engine attached: topology deltas unavailable")
            }
            EngineError::Routing(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// What kind of delta a [`DeltaRecord`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// A rule was inserted on a device.
    RuleInserted,
    /// A rule was withdrawn from a device.
    RuleWithdrawn,
    /// A test's trace was registered.
    TestAdded,
    /// A test's trace was retired.
    TestRemoved,
    /// A link failed; the routing engine re-converged around it.
    LinkDown,
    /// A link recovered.
    LinkUp,
    /// A device failed; its FIB and routes through it are withdrawn.
    DeviceDown,
    /// A device recovered.
    DeviceUp,
}

impl DeltaKind {
    /// Stable wire name of the kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeltaKind::RuleInserted => "rule-inserted",
            DeltaKind::RuleWithdrawn => "rule-withdrawn",
            DeltaKind::TestAdded => "test-added",
            DeltaKind::TestRemoved => "test-removed",
            DeltaKind::LinkDown => "link-down",
            DeltaKind::LinkUp => "link-up",
            DeltaKind::DeviceDown => "device-down",
            DeltaKind::DeviceUp => "device-up",
        }
    }
}

/// One applied delta, as reported by `/delta-since`.
#[derive(Clone, Debug)]
pub struct DeltaRecord {
    /// The engine version this delta produced (versions start at 0 for
    /// the freshly built engine and increase by 1 per delta).
    pub version: u64,
    /// What happened.
    pub kind: DeltaKind,
    /// Human-readable subject: `r<device>.<index>` for rule deltas, the
    /// test name for test deltas.
    pub detail: String,
    /// The devices whose shards were recomputed.
    pub devices: Vec<DeviceId>,
}

/// Counters and occupancy of a [`QueryCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups answered from the cache (monotone).
    pub hits: u64,
    /// Lookups that missed (monotone).
    pub misses: u64,
    /// Entries dropped, by LRU pressure or delta flushes (monotone).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

/// A capacity-bounded LRU cache for query responses.
///
/// Capacity pressure evicts the least-recently-used entry; a delta
/// flushes the whole cache ([`QueryCache::flush`]) rather than patching
/// entries — the [`netmodel::MatchSetCache`] policy. Counters are
/// monotone across flushes so long-lived gauges stay meaningful.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, String)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl QueryCache {
    /// A cache holding at most `capacity` responses (minimum 1).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<String> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((tick, value)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a response, evicting the least-recently-used entry if the
    /// cache is full.
    pub fn insert(&mut self, key: String, value: String) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Drop every entry (the on-delta invalidation). Each dropped entry
    /// counts as an eviction; hit/miss counters are untouched.
    pub fn flush(&mut self) {
        self.evictions += self.map.len() as u64;
        self.map.clear();
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// Coverage of a single rule, as served by `/covers`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuleCoverage {
    /// The rule queried.
    pub id: RuleId,
    /// `P(M[r])` — probability mass of the rule's disjoint match set.
    pub match_probability: f64,
    /// `P(T[r])` — probability mass of the rule's covered set.
    pub covered_probability: f64,
    /// `P(T[r]) / P(M[r])`, or `None` for fully-shadowed rules.
    pub coverage: Option<f64>,
    /// Whether any test exercised the rule at all.
    pub exercised: bool,
}

/// The three headline aggregates served by `/metrics`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeadlineMetrics {
    /// Network-wide fractional rule coverage.
    pub rule_fractional: Option<f64>,
    /// Network-wide probability-weighted rule coverage.
    pub rule_weighted: Option<f64>,
    /// Network-wide fractional device coverage.
    pub device_fractional: Option<f64>,
}

/// Which BDD manager backend a [`CoverageEngine`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One private arena per manager (the default, and the differential
    /// oracle): parallel paths shard work into per-worker managers and
    /// merge by `PortableBdd` export/import.
    Private,
    /// One shared concurrent arena (`Bdd::new_shared`): parallel paths
    /// hand each worker a handle, skipping the export/import round-trip.
    Shared,
}

impl Backend {
    /// Stable wire/flag name of the backend.
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Private => "private",
            Backend::Shared => "shared",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "private" => Ok(Backend::Private),
            "shared" => Ok(Backend::Shared),
            other => Err(format!("unknown backend {other:?} (private|shared)")),
        }
    }
}

/// The long-lived incremental coverage engine (see the module docs for
/// the invalidation model).
pub struct CoverageEngine {
    net: Network,
    /// Resident incremental routing engine; `None` until
    /// [`CoverageEngine::attach_routing`], which arms topology deltas.
    routing: Option<routing::RoutingEngine>,
    bdd: Bdd,
    ms_cache: MatchSetCache,
    ms: MatchSets,
    tests: BTreeMap<String, CoverageTrace>,
    combined: CoverageTrace,
    covered: CoveredSets,
    threads: usize,
    version: u64,
    log: Vec<DeltaRecord>,
    query_cache: QueryCache,
    devices_invalidated: u64,
    /// Node-count watermark above which a delta triggers a collection
    /// (`None` disables automatic GC).
    gc_watermark: Option<usize>,
    gc_collections: u64,
    gc_reclaimed_total: u64,
}

impl CoverageEngine {
    /// Build an engine around a finalized network. The initial covered
    /// sets (of the empty trace) are computed with the device-sharded
    /// parallel path when `threads > 1`.
    pub fn new(net: Network, threads: usize) -> CoverageEngine {
        Self::new_with_backend(net, threads, Backend::Private)
    }

    /// [`CoverageEngine::new`] with an explicit manager [`Backend`]. The
    /// shared backend keeps one concurrent arena for the engine's whole
    /// life; covered sets it computes are bit-identical (as canonical
    /// `PortableBdd` exports) to the private backend's.
    pub fn new_with_backend(net: Network, threads: usize, backend: Backend) -> CoverageEngine {
        let threads = threads.max(1);
        let mut bdd = match backend {
            Backend::Private => Bdd::new(),
            Backend::Shared => Bdd::new_shared(),
        };
        let mut ms_cache = MatchSetCache::new();
        let ms = MatchSets::compute_cached(&net, &mut bdd, &mut ms_cache);
        let combined = CoverageTrace::new();
        let covered = CoveredSets::compute_parallel(&net, &ms, &combined, &mut bdd, threads);
        CoverageEngine {
            net,
            routing: None,
            bdd,
            ms_cache,
            ms,
            tests: BTreeMap::new(),
            combined,
            covered,
            threads,
            version: 0,
            log: Vec::new(),
            query_cache: QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY),
            devices_invalidated: 0,
            gc_watermark: None,
            gc_collections: 0,
            gc_reclaimed_total: 0,
        }
    }

    /// The network currently being served.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Attach a resident [`routing::RoutingEngine`], arming
    /// [`CoverageEngine::apply_topology`]. The engine must be the one
    /// whose control plane compiled this network
    /// ([`routing::RibBuilder::into_engine`]) — its FIB diffs are
    /// applied to the served network in place.
    pub fn attach_routing(&mut self, routing: routing::RoutingEngine) {
        debug_assert_eq!(
            routing.topology().device_count(),
            self.net.topology().device_count(),
            "routing engine built over a different topology"
        );
        self.routing = Some(routing);
    }

    /// The attached routing engine, if any.
    pub fn routing(&self) -> Option<&routing::RoutingEngine> {
        self.routing.as_ref()
    }

    /// Number of deltas applied so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Worker threads used for full (non-incremental) recomputes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Names of the registered tests, sorted.
    pub fn test_names(&self) -> impl Iterator<Item = &str> {
        self.tests.keys().map(String::as_str)
    }

    /// The query cache (the HTTP layer stores rendered responses here).
    pub fn query_cache(&mut self) -> &mut QueryCache {
        &mut self.query_cache
    }

    /// Query-cache counters without taking a mutable borrow.
    pub fn query_cache_stats(&self) -> QueryCacheStats {
        self.query_cache.stats()
    }

    /// The deltas applied after engine version `since`, oldest first.
    pub fn deltas_since(&self, since: u64) -> &[DeltaRecord] {
        let start = self.log.partition_point(|r| r.version <= since);
        &self.log[start..]
    }

    /// Run `f` against a read-only [`Analyzer`] view of the current
    /// state. The analyzer wraps the engine's incrementally maintained
    /// covered sets, so no Algorithm 1 pass runs here.
    pub fn with_analyzer<R>(&mut self, f: impl FnOnce(&Analyzer<'_>, &mut Bdd) -> R) -> R {
        let analyzer =
            Analyzer::with_covered(&self.net, &self.ms, &self.combined, self.covered.clone());
        f(&analyzer, &mut self.bdd)
    }

    /// Split borrow of the analysis state: the network, the resident
    /// match-set and covered-set shards, and the manager, all at once.
    ///
    /// [`CoverageEngine::with_analyzer`] clones the covered sets into a
    /// fresh [`Analyzer`]; callers that interleave dataplane queries
    /// (traceroute, witness sampling) with engine mutations — the
    /// coverage-guided generation loop — need the live shards and a
    /// mutable manager side by side instead.
    pub fn analysis_parts(&mut self) -> (&Network, &MatchSets, &CoveredSets, &mut Bdd) {
        (&self.net, &self.ms, &self.covered, &mut self.bdd)
    }

    /// Whether any registered test exercises rule `id` (its covered set
    /// is non-empty). `id` must name a current rule.
    pub fn is_exercised(&self, id: RuleId) -> bool {
        self.covered.is_exercised(id)
    }

    /// Coverage of one rule, straight from the resident shards.
    pub fn rule_coverage(&mut self, id: RuleId) -> Result<RuleCoverage, EngineError> {
        self.check_rule(id)?;
        let m = self.ms.get(id);
        let t = self.covered.get(id);
        let match_probability = self.bdd.probability(m);
        let covered_probability = self.bdd.probability(t);
        let coverage = if m.is_false() {
            None
        } else {
            Some(covered_probability / match_probability)
        };
        Ok(RuleCoverage {
            id,
            match_probability,
            covered_probability,
            coverage,
            exercised: !t.is_false(),
        })
    }

    /// Config-level coverage: the resident covered sets mapped through
    /// the attached routing engine's provenance database
    /// ([`routing::RoutingEngine::config_db`]). Requires
    /// [`CoverageEngine::attach_routing`] — without a control plane
    /// there is no configuration to attribute rules to. The database is
    /// read off the engine's *current* (possibly degraded) state, so
    /// the report tracks topology deltas automatically.
    pub fn config_coverage(&mut self) -> Result<ConfigCoverage, EngineError> {
        let routing = self.routing.as_ref().ok_or(EngineError::NoRoutingEngine)?;
        let db = routing.config_db();
        Ok(ConfigCoverage::compute(
            &self.net,
            &self.ms,
            &self.covered,
            &mut self.bdd,
            &db,
        ))
    }

    /// Names of the registered tests that exercise at least one of
    /// `rules` — the per-construct drill-down behind the daemon's
    /// `/config-coverage?construct=` query. A test exercises a rule if
    /// it inspected it directly, or if packets it recorded at the
    /// rule's device (on the rule's ingress interface, when scoped)
    /// intersect the rule's disjoint match set — per-test Algorithm 1.
    pub fn tests_exercising(&mut self, rules: &[RuleId]) -> Vec<String> {
        let mut out = Vec::new();
        for (name, trace) in &self.tests {
            let mut hit = false;
            for &id in rules {
                if trace.rules.contains(&id) {
                    hit = true;
                    break;
                }
                let applicable = match self.net.rule(id).matches.in_iface {
                    None => trace.packets.at_device(&mut self.bdd, id.device),
                    Some(iface) => trace.packets.at_device_iface(id.device, iface),
                };
                let t = self.bdd.and(applicable, self.ms.get(id));
                if !t.is_false() {
                    hit = true;
                    break;
                }
            }
            if hit {
                out.push(name.clone());
            }
        }
        out
    }

    /// The headline aggregates over the whole network.
    pub fn headline_metrics(&mut self) -> HeadlineMetrics {
        self.with_analyzer(|a, bdd| HeadlineMetrics {
            rule_fractional: a.aggregate_rules(bdd, Aggregator::Fractional, |_, _| true),
            rule_weighted: a.aggregate_rules(bdd, Aggregator::Weighted, |_, _| true),
            device_fractional: a.aggregate_devices(bdd, Aggregator::Fractional, |_, _| true),
        })
    }

    // ----- deltas ----------------------------------------------------------

    /// Insert `rule` on `device` (first-match position is derived from
    /// the rule, as [`netmodel::Table::insert_sorted`] does) and refresh
    /// that device's match-set and covered-set shards.
    pub fn insert_rule(&mut self, device: DeviceId, rule: Rule) -> Result<RuleId, EngineError> {
        self.check_device(device)?;
        for &iface in rule.action.out_ifaces() {
            self.check_iface(device, iface)?;
        }
        if let Some(iface) = rule.matches.in_iface {
            self.check_iface(device, iface)?;
        }
        let id = self.net.insert_rule(device, rule);
        self.refresh_device(device);
        self.record(
            DeltaKind::RuleInserted,
            format!("r{}.{}", id.device.0, id.index),
            vec![device],
        );
        Ok(id)
    }

    /// Withdraw the rule `id` and refresh its device's shards. Later
    /// rules on the device shift down one index.
    pub fn withdraw_rule(&mut self, id: RuleId) -> Result<Rule, EngineError> {
        self.check_rule(id)?;
        let rule = self.net.withdraw_rule(id);
        self.refresh_device(id.device);
        self.record(
            DeltaKind::RuleWithdrawn,
            format!("r{}.{}", id.device.0, id.index),
            vec![id.device],
        );
        Ok(rule)
    }

    /// Register a test's trace under `name`. The portable trace is
    /// validated on import ([`PortableTrace::try_import`]); covered sets
    /// are recomputed only at the devices the trace marks. Returns those
    /// devices.
    pub fn add_test(
        &mut self,
        name: &str,
        trace: &PortableTrace,
    ) -> Result<Vec<DeviceId>, EngineError> {
        if self.tests.contains_key(name) {
            return Err(EngineError::DuplicateTest { name: name.into() });
        }
        let trace = trace
            .try_import(&mut self.bdd)
            .map_err(|(location, error)| EngineError::MalformedTrace { location, error })?;
        let devices = trace_devices(&trace);
        for &device in &devices {
            self.check_device(device)?;
        }
        self.combined.merge(&mut self.bdd, &trace);
        for &device in &devices {
            self.covered.recompute_device(
                &self.net,
                &self.ms,
                &self.combined,
                &mut self.bdd,
                device,
            );
        }
        self.tests.insert(name.to_string(), trace);
        self.record(DeltaKind::TestAdded, name.to_string(), devices.clone());
        Ok(devices)
    }

    /// Retire the test registered under `name`. Coverage is a union, not
    /// a sum, so the combined trace is rebuilt from the surviving tests
    /// and Algorithm 1 re-runs only at the devices the departed trace
    /// had marked. Returns those devices.
    pub fn remove_test(&mut self, name: &str) -> Result<Vec<DeviceId>, EngineError> {
        let trace = self
            .tests
            .remove(name)
            .ok_or_else(|| EngineError::UnknownTest { name: name.into() })?;
        let devices = trace_devices(&trace);
        let mut combined = CoverageTrace::new();
        for t in self.tests.values() {
            combined.merge(&mut self.bdd, t);
        }
        self.combined = combined;
        for &device in &devices {
            self.covered.recompute_device(
                &self.net,
                &self.ms,
                &self.combined,
                &mut self.bdd,
                device,
            );
        }
        self.record(DeltaKind::TestRemoved, name.to_string(), devices.clone());
        Ok(devices)
    }

    /// Apply a topology failure/recovery delta through the attached
    /// routing engine. The FIB diff it emits drives device-sharded
    /// invalidation — only devices whose tables actually changed are
    /// recomputed — and the delta is versioned in the log like any rule
    /// or test delta. Returns the recomputed devices.
    pub fn apply_topology(
        &mut self,
        delta: &routing::TopologyDelta,
    ) -> Result<Vec<DeviceId>, EngineError> {
        let routing = self.routing.as_mut().ok_or(EngineError::NoRoutingEngine)?;
        let diff = routing
            .apply(&mut self.net, delta)
            .map_err(EngineError::Routing)?;
        let devices = diff.devices();
        for &device in &devices {
            self.refresh_device(device);
        }
        let (kind, detail) = match *delta {
            routing::TopologyDelta::LinkDown { a, b } => {
                (DeltaKind::LinkDown, format!("link:{}-{}", a.0, b.0))
            }
            routing::TopologyDelta::LinkUp { a, b } => {
                (DeltaKind::LinkUp, format!("link:{}-{}", a.0, b.0))
            }
            routing::TopologyDelta::DeviceDown { device } => {
                (DeltaKind::DeviceDown, format!("device:{}", device.0))
            }
            routing::TopologyDelta::DeviceUp { device } => {
                (DeltaKind::DeviceUp, format!("device:{}", device.0))
            }
        };
        self.record(kind, detail, devices.clone());
        Ok(devices)
    }

    /// Publish the engine's state as `netobs` gauges (`engine.*`).
    pub fn publish_gauges(&self) {
        netobs::gauge("engine.version", self.version as f64);
        netobs::gauge("engine.devices", self.net.topology().device_count() as f64);
        netobs::gauge("engine.rules", self.net.rule_count() as f64);
        netobs::gauge("engine.tests", self.tests.len() as f64);
        netobs::gauge(
            "engine.devices_invalidated_total",
            self.devices_invalidated as f64,
        );
        let s = self.query_cache.stats();
        netobs::gauge("engine.query_cache.hits", s.hits as f64);
        netobs::gauge("engine.query_cache.misses", s.misses as f64);
        netobs::gauge("engine.query_cache.evictions", s.evictions as f64);
        netobs::gauge("engine.query_cache.entries", s.entries as f64);
        netobs::gauge("bdd.nodes", self.bdd.node_count() as f64);
        netobs::gauge("bdd.gc.collections", self.gc_collections as f64);
        netobs::gauge("bdd.gc.reclaimed_total", self.gc_reclaimed_total as f64);
    }

    /// Arm (or, with `None`, disarm) automatic garbage collection: after
    /// any delta that leaves the manager above `watermark` live nodes,
    /// the engine runs [`CoverageEngine::gc`] before returning.
    pub fn set_gc_watermark(&mut self, watermark: Option<usize>) {
        self.gc_watermark = watermark;
    }

    /// Collect the BDD arena now, from the engine's registered roots
    /// (match sets, covered sets, the combined trace, and every resident
    /// test trace). Every held `Ref` is rewritten through the relocation
    /// map, so all subsequent queries see identical packet sets; the
    /// match-set and query caches are flushed. Publishes the `bdd.gc.*`
    /// gauges and returns the collection's stats.
    pub fn gc(&mut self) -> GcStats {
        let mut roots = Vec::new();
        self.ms.collect_refs(&mut roots);
        self.covered.collect_refs(&mut roots);
        self.combined.collect_refs(&mut roots);
        for trace in self.tests.values() {
            trace.collect_refs(&mut roots);
        }
        // The memo cache holds refs keyed by match fields; those refs die
        // with the old arena, so drop them rather than rooting them.
        self.ms_cache.clear();
        let (reloc, stats) = self.bdd.collect(&roots);
        self.ms.remap_refs(|r| reloc.relocate(r));
        self.covered.remap_refs(|r| reloc.relocate(r));
        self.combined.remap_refs(|r| reloc.relocate(r));
        for trace in self.tests.values_mut() {
            trace.remap_refs(|r| reloc.relocate(r));
        }
        self.query_cache.flush();
        self.gc_collections += 1;
        self.gc_reclaimed_total += stats.reclaimed() as u64;
        netobs::gauge("bdd.gc.collections", self.gc_collections as f64);
        netobs::gauge("bdd.gc.nodes_before", stats.nodes_before as f64);
        netobs::gauge("bdd.gc.nodes_after", stats.nodes_after as f64);
        netobs::gauge("bdd.gc.reclaimed_total", self.gc_reclaimed_total as f64);
        netobs::gauge("bdd.nodes", stats.nodes_after as f64);
        stats
    }

    /// Collections run so far (manual and watermark-triggered).
    pub fn gc_collections(&self) -> u64 {
        self.gc_collections
    }

    // ----- internals -------------------------------------------------------

    fn check_device(&self, device: DeviceId) -> Result<(), EngineError> {
        let count = self.net.topology().device_count();
        if device.0 as usize >= count {
            return Err(EngineError::UnknownDevice {
                device,
                device_count: count,
            });
        }
        Ok(())
    }

    fn check_iface(&self, device: DeviceId, iface: IfaceId) -> Result<(), EngineError> {
        let topo = self.net.topology();
        if iface.0 as usize >= topo.iface_count() || topo.iface(iface).device != device {
            return Err(EngineError::BadIface { iface, device });
        }
        Ok(())
    }

    fn check_rule(&self, id: RuleId) -> Result<(), EngineError> {
        self.check_device(id.device)?;
        let table_len = self.net.device_rules(id.device).len();
        if id.index as usize >= table_len {
            return Err(EngineError::BadRuleIndex { id, table_len });
        }
        Ok(())
    }

    /// Refresh one device's match-set and covered-set shards after its
    /// table changed.
    fn refresh_device(&mut self, device: DeviceId) {
        self.ms
            .recompute_device(&self.net, &mut self.bdd, &mut self.ms_cache, device);
        self.covered
            .recompute_device(&self.net, &self.ms, &self.combined, &mut self.bdd, device);
    }

    /// Log a delta, bump the version, and flush the query cache.
    fn record(&mut self, kind: DeltaKind, detail: String, devices: Vec<DeviceId>) {
        self.version += 1;
        self.devices_invalidated += devices.len() as u64;
        self.log.push(DeltaRecord {
            version: self.version,
            kind,
            detail,
            devices,
        });
        self.query_cache.flush();
        self.publish_gauges();
        self.maybe_gc();
    }

    /// Run a collection if the arena has grown past the armed watermark.
    fn maybe_gc(&mut self) {
        if let Some(mark) = self.gc_watermark {
            if self.bdd.node_count() > mark {
                self.gc();
            }
        }
    }
}

/// The distinct devices a trace marks, via packets or rule inspections.
fn trace_devices(trace: &CoverageTrace) -> Vec<DeviceId> {
    let mut out: BTreeSet<DeviceId> = trace.packets.devices().into_iter().collect();
    out.extend(trace.rules.iter().map(|id| id.device));
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::Prefix;
    use netmodel::header;
    use netmodel::rule::RouteClass;
    use netmodel::topology::{IfaceKind, Role, Topology};

    /// Two devices; the tor has a /24 to hosts plus a default up.
    fn build() -> (Network, DeviceId, DeviceId, IfaceId) {
        let mut t = Topology::new();
        let tor = t.add_device("tor", Role::Tor);
        let spine = t.add_device("spine", Role::Spine);
        let hosts = t.add_iface(tor, "hosts", IfaceKind::Host);
        let (up, down) = t.add_link(tor, spine);
        let mut n = Network::new(t);
        n.add_rule(
            tor,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![hosts],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            tor,
            Rule::forward(Prefix::v4_default(), vec![up], RouteClass::StaticDefault),
        );
        n.add_rule(
            spine,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![down],
                RouteClass::HostSubnet,
            ),
        );
        n.finalize();
        (n, tor, spine, hosts)
    }

    /// A portable trace marking `prefix` at `device`.
    fn mark_trace(device: DeviceId, prefix: &str) -> PortableTrace {
        let mut bdd = Bdd::new();
        let mut t = CoverageTrace::new();
        let set = header::dst_in(&mut bdd, &prefix.parse().unwrap());
        t.add_packets(&mut bdd, Location::device(device), set);
        t.export(&bdd)
    }

    /// Batch recompute of the engine's current state in the engine's own
    /// manager; `Ref`s must agree exactly (hash-consing).
    fn assert_matches_batch(engine: &mut CoverageEngine) {
        let net = engine.net.clone();
        let combined = engine.combined.clone();
        let batch_ms = MatchSets::compute(&net, &mut engine.bdd);
        let batch_cov = CoveredSets::compute(&net, &batch_ms, &combined, &mut engine.bdd);
        for (id, _) in net.rules() {
            assert_eq!(engine.ms.get(id), batch_ms.get(id), "match set at {id:?}");
            assert_eq!(
                engine.covered.get(id),
                batch_cov.get(id),
                "covered set at {id:?}"
            );
        }
    }

    #[test]
    fn rule_insert_refreshes_only_that_device_and_matches_batch() {
        let (n, tor, spine, hosts) = build();
        let mut engine = CoverageEngine::new(n, 1);
        engine
            .add_test("t", &mark_trace(tor, "10.0.0.0/8"))
            .unwrap();
        let spine_before = engine.covered.get(RuleId {
            device: spine,
            index: 0,
        });
        let id = engine
            .insert_rule(
                tor,
                Rule::forward(
                    "10.0.0.7/32".parse().unwrap(),
                    vec![hosts],
                    RouteClass::Other,
                ),
            )
            .unwrap();
        // The /32 outranks the /24: it lands at index 0.
        assert_eq!(
            id,
            RuleId {
                device: tor,
                index: 0
            }
        );
        // Spine shard untouched (same Ref, not just same function).
        assert_eq!(
            engine.covered.get(RuleId {
                device: spine,
                index: 0
            }),
            spine_before
        );
        assert_matches_batch(&mut engine);
    }

    #[test]
    fn rule_withdraw_matches_batch() {
        let (n, tor, _, hosts) = build();
        let mut engine = CoverageEngine::new(n, 1);
        engine
            .add_test("t", &mark_trace(tor, "10.0.0.0/8"))
            .unwrap();
        let id = engine
            .insert_rule(
                tor,
                Rule::forward(
                    "10.0.0.0/16".parse().unwrap(),
                    vec![hosts],
                    RouteClass::Other,
                ),
            )
            .unwrap();
        engine.withdraw_rule(id).unwrap();
        assert_matches_batch(&mut engine);
        assert_eq!(engine.version(), 3);
    }

    #[test]
    fn test_add_then_remove_restores_prior_coverage() {
        let (n, tor, _, _) = build();
        let mut engine = CoverageEngine::new(n, 1);
        engine
            .add_test("a", &mark_trace(tor, "10.0.0.0/25"))
            .unwrap();
        let before: Vec<_> = engine
            .net
            .rules()
            .map(|(id, _)| id)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|id| (id, engine.covered.get(id)))
            .collect();
        let devices = engine
            .add_test("b", &mark_trace(tor, "10.0.0.0/8"))
            .unwrap();
        assert_eq!(devices, vec![tor]);
        engine.remove_test("b").unwrap();
        for (id, r) in before {
            assert_eq!(engine.covered.get(id), r, "covered set at {id:?}");
        }
        assert_matches_batch(&mut engine);
    }

    #[test]
    fn rule_coverage_reports_exercised_fractions() {
        let (n, tor, _, _) = build();
        let mut engine = CoverageEngine::new(n, 1);
        engine
            .add_test("t", &mark_trace(tor, "10.0.0.0/24"))
            .unwrap();
        let c = engine
            .rule_coverage(RuleId {
                device: tor,
                index: 0,
            })
            .unwrap();
        assert!(c.exercised);
        assert!((c.coverage.unwrap() - 1.0).abs() < 1e-12);
        let d = engine
            .rule_coverage(RuleId {
                device: tor,
                index: 1,
            })
            .unwrap();
        assert!(!d.exercised);
        assert_eq!(d.coverage, Some(0.0));
    }

    #[test]
    fn deltas_are_validated_not_panicking() {
        let (n, tor, _, hosts) = build();
        let mut engine = CoverageEngine::new(n, 1);
        assert!(matches!(
            engine.insert_rule(
                DeviceId(99),
                Rule::null_route(Prefix::v4_default(), RouteClass::Other)
            ),
            Err(EngineError::UnknownDevice { .. })
        ));
        // `hosts` belongs to the tor, not the spine.
        assert!(matches!(
            engine.insert_rule(
                DeviceId(1),
                Rule::forward(Prefix::v4_default(), vec![hosts], RouteClass::Other)
            ),
            Err(EngineError::BadIface { .. })
        ));
        assert!(matches!(
            engine.withdraw_rule(RuleId {
                device: tor,
                index: 9
            }),
            Err(EngineError::BadRuleIndex { table_len: 2, .. })
        ));
        assert!(matches!(
            engine.remove_test("ghost"),
            Err(EngineError::UnknownTest { .. })
        ));
        engine
            .add_test("t", &mark_trace(tor, "10.0.0.0/8"))
            .unwrap();
        assert!(matches!(
            engine.add_test("t", &mark_trace(tor, "10.0.0.0/8")),
            Err(EngineError::DuplicateTest { .. })
        ));
        // No delta was applied by any of the rejected calls.
        assert_eq!(engine.version(), 1);
    }

    #[test]
    fn malformed_trace_is_rejected_with_location() {
        use netbdd::PortableBdd;
        let (n, tor, _, _) = build();
        let mut engine = CoverageEngine::new(n, 1);
        let loc = Location::device(tor);
        let bad = PortableTrace::from_parts(
            vec![(loc, PortableBdd::from_parts(vec![(0, 0, 12)], 2))],
            Default::default(),
        );
        match engine.add_test("bad", &bad) {
            Err(EngineError::MalformedTrace { location, .. }) => assert_eq!(location, loc),
            other => panic!("expected MalformedTrace, got {other:?}"),
        }
        assert_eq!(engine.version(), 0);
    }

    #[test]
    fn delta_log_slices_by_version() {
        let (n, tor, _, _) = build();
        let mut engine = CoverageEngine::new(n, 1);
        engine
            .add_test("a", &mark_trace(tor, "10.0.0.0/8"))
            .unwrap();
        engine.remove_test("a").unwrap();
        assert_eq!(engine.deltas_since(0).len(), 2);
        let tail = engine.deltas_since(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, DeltaKind::TestRemoved);
        assert_eq!(tail[0].detail, "a");
        assert!(engine.deltas_since(2).is_empty());
    }

    #[test]
    fn query_cache_is_lru_and_flushes_on_delta() {
        let mut c = QueryCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        assert_eq!(c.get("a").as_deref(), Some("1")); // refresh a
        c.insert("c".into(), "3".into()); // evicts b (LRU)
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a").as_deref(), Some("1"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (3, 1, 1, 2));
        c.flush();
        let s = c.stats();
        // Counters survive the flush; the two resident entries count as
        // evictions.
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (3, 1, 3, 0));

        // And the engine flushes on every applied delta.
        let (n, tor, _, _) = build();
        let mut engine = CoverageEngine::new(n, 1);
        engine.query_cache().insert("k".into(), "v".into());
        engine
            .add_test("t", &mark_trace(tor, "10.0.0.0/8"))
            .unwrap();
        assert_eq!(engine.query_cache().get("k"), None);
    }

    /// Replay the same delta sequence on both backends; every covered
    /// set must export byte-identically at every step (the canonical
    /// `PortableBdd` form erases arena layout, so this is the bit-level
    /// equivalence the shared backend promises).
    #[test]
    fn shared_backend_matches_private_bit_for_bit() {
        fn assert_same(a: &CoverageEngine, b: &CoverageEngine) {
            for (id, _) in a.net.rules() {
                assert_eq!(
                    a.bdd.export(a.covered.get(id)),
                    b.bdd.export(b.covered.get(id)),
                    "covered set diverged at {id:?}"
                );
            }
        }
        let (n, tor, spine, hosts) = build();
        let mut a = CoverageEngine::new_with_backend(n.clone(), 2, Backend::Private);
        let mut b = CoverageEngine::new_with_backend(n, 2, Backend::Shared);
        assert!(b.bdd.is_shared() && !a.bdd.is_shared());
        assert_same(&a, &b);
        for engine in [&mut a, &mut b] {
            engine
                .add_test("probe", &mark_trace(tor, "10.0.0.0/8"))
                .unwrap();
            engine
                .add_test("spine-probe", &mark_trace(spine, "10.0.0.128/25"))
                .unwrap();
            let rule = Rule::forward(
                "10.0.1.0/24".parse().unwrap(),
                vec![hosts],
                RouteClass::HostSubnet,
            );
            engine.insert_rule(tor, rule).unwrap();
            engine.remove_test("probe").unwrap();
        }
        assert_same(&a, &b);
        assert_matches_batch(&mut b);
    }

    /// Churn tests to strand garbage, collect, and check both halves of
    /// the GC contract: nodes are reclaimed, and every surviving covered
    /// set answers identically after relocation.
    #[test]
    fn gc_reclaims_garbage_and_preserves_answers() {
        use netbdd::PortableBdd;
        for backend in [Backend::Private, Backend::Shared] {
            let (n, tor, _, _) = build();
            let mut engine = CoverageEngine::new_with_backend(n, 1, backend);
            for i in 0..16 {
                engine
                    .add_test(
                        &format!("t{i}"),
                        &mark_trace(tor, &format!("10.{i}.0.0/16")),
                    )
                    .unwrap();
            }
            for i in 0..15 {
                engine.remove_test(&format!("t{i}")).unwrap();
            }
            let before: Vec<(RuleId, PortableBdd)> = engine
                .net
                .rules()
                .map(|(id, _)| (id, engine.bdd.export(engine.covered.get(id))))
                .collect();
            let stats = engine.gc();
            assert!(
                stats.reclaimed() > 0,
                "churn left no garbage to reclaim ({backend:?})"
            );
            assert_eq!(engine.bdd.node_count(), stats.nodes_after);
            assert_eq!(engine.gc_collections(), 1);
            for (id, p) in &before {
                assert_eq!(
                    &engine.bdd.export(engine.covered.get(*id)),
                    p,
                    "covered set changed across GC at {id:?} ({backend:?})"
                );
            }
            // The engine still computes correct fresh results in the
            // compacted arena.
            assert_matches_batch(&mut engine);
        }
    }

    /// An armed watermark runs the collector automatically once a delta
    /// leaves the arena above it.
    #[test]
    fn watermark_triggers_automatic_collection() {
        let (n, tor, _, _) = build();
        let mut engine = CoverageEngine::new_with_backend(n, 1, Backend::Shared);
        engine.set_gc_watermark(Some(engine.bdd.node_count()));
        engine
            .add_test("t", &mark_trace(tor, "10.1.2.0/24"))
            .unwrap();
        assert!(engine.gc_collections() >= 1, "watermark never fired");
        assert_matches_batch(&mut engine);
    }
}
