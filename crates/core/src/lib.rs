//! # yardstick — test coverage metrics for the network
//!
//! A from-scratch Rust implementation of the coverage framework from
//! *Test Coverage Metrics for the Network* (SIGCOMM 2021). The framework
//! rests on one observation: every network dataplane component decomposes
//! into forwarding rules, and every kind of test ultimately exercises
//! rules with packets. The **atomic testable unit (ATU)** is a pair of
//! one rule and one packet; tests, test suites, and components are all
//! described by the ATU sets they touch, which makes a single machinery
//! able to compute rule, device, interface, path, and flow coverage from
//! state-inspection tests, concrete probes, and symbolic analyses alike.
//!
//! ## Two-phase operation (§5)
//!
//! * **Phase 1 — tracking.** While tests run, a [`Tracker`] records what
//!   they report through two calls: [`Tracker::mark_packet`] (behavioural
//!   tests report the located packets they used, hop by hop) and
//!   [`Tracker::mark_rule`] (state-inspection tests report the rules they
//!   looked at). The trace is kept compact — one packet-set union per
//!   location plus a rule-id set — so tracking stays off the critical
//!   testing path.
//! * **Phase 2 — analysis.** After tests finish, an [`Analyzer`] combines
//!   the trace with the network state: it computes disjoint rule match
//!   sets, derives every rule's covered set (Algorithm 1), and evaluates
//!   whatever metrics are requested — including new ones, long after the
//!   tests ran.
//!
//! ## The metric framework (§4.3)
//!
//! A component's coverage is specified by a *dependency specification*
//! (a set of [`GuardedString`]s), a *measure* µ, and a *combinator* κ;
//! collections aggregate component coverage with an *aggregator* α. The
//! common components (rules, devices, interfaces, paths, flows) are
//! provided in [`components`]; the raw programmable layer is exported for
//! everything else (CoFlows, firewall cones, ...).
//!
//! ```
//! use netbdd::Bdd;
//! use netmodel::{Location, MatchSets};
//! use yardstick::{Analyzer, Tracker};
//! # use netmodel::{Network, Prefix, Role, rule::{Rule, RouteClass}, topology::Topology};
//! # let mut topo = Topology::new();
//! # let d = topo.add_device("r1", Role::Tor);
//! # let h = topo.add_iface(d, "hosts", netmodel::IfaceKind::Host);
//! # let mut net = Network::new(topo);
//! # net.add_rule(d, Rule::forward(Prefix::v4_default(), vec![h], RouteClass::StaticDefault));
//! # net.finalize();
//!
//! let mut bdd = Bdd::new();
//! let mut tracker = Tracker::new();
//! // ... a state-inspection test reports the rule it checked:
//! tracker.mark_rule(net.rules().next().unwrap().0);
//!
//! let ms = MatchSets::compute(&net, &mut bdd);
//! let analyzer = Analyzer::new(&net, &ms, tracker.trace(), &mut bdd);
//! let cov = analyzer.device_coverage(&mut bdd, d).unwrap();
//! assert_eq!(cov, 1.0); // the device's only rule is fully covered
//! ```

#![deny(missing_docs)]

pub mod analyzer;
pub mod atu;
pub mod components;
pub mod config;
pub mod covered;
pub mod daemon;
pub mod engine;
pub mod flowcov;
pub mod framework;
pub mod gaps;
pub mod obs;
pub mod parallel;
pub mod pathcov;
pub mod report;
pub mod rng;
pub mod testgen;
pub mod trace;
pub mod tracker;

pub use analyzer::Analyzer;
pub use atu::Atu;
pub use config::{ConfigCoverage, ConstructCoverage};
pub use covered::CoveredSets;
pub use engine::{
    Backend, CoverageEngine, DeltaKind, DeltaRecord, EngineError, HeadlineMetrics, QueryCache,
    QueryCacheStats, RuleCoverage,
};
pub use framework::{Aggregator, Combinator, ComponentSpec, GuardedString, Measure};
pub use gaps::{GapEntry, GapReport};
pub use obs::publish_bdd_gauges;
pub use parallel::{publish_worker_gauges, ParallelRunner, WorkerReport};
pub use report::{ClassReport, CoverageReport, ReportRow};
pub use testgen::{
    autogen, autogen_config, ConfigGenReport, GenConfig, GenReport, GeneratedTest, TestSpec,
};
pub use trace::{CoverageTrace, PortableTrace};
pub use tracker::Tracker;
