//! Figure 6: per-role coverage of the case study's test suites on the
//! regional network (§7.2–§7.3).
//!
//! Four panels, as in the paper:
//!   (a) the original suite — DefaultRouteCheck + AggCanReachTorLoopback
//!   (b) InternalRouteCheck alone
//!   (c) ConnectedRouteCheck alone
//!   (d) the final suite — original + both new tests
//!
//! For each panel we print fractional device / interface / rule coverage
//! and weighted rule coverage per router role, and write a CSV.
//!
//! Usage: `cargo run -p bench --bin fig6 --release [--scale N]`
//! where `--scale` multiplies the regional network's pod dimensions.

use netbdd::Bdd;
use netmodel::topology::Role;
use netmodel::MatchSets;
use topogen::{regional, RegionalParams};
use yardstick::{Analyzer, CoverageReport, Tracker};

use bench::{
    arg_flag, arg_present, bench_parallel_suite, regional_info, time_it, write_csv,
    write_parallel_json,
};
use testsuite::{
    agg_can_reach_tor_loopback, connected_route_check, default_route_check, internal_route_check,
    regional_suite_jobs, TestContext,
};

fn main() {
    let trace = bench::trace_arg();
    let scale = arg_flag("--scale", 1) as u32;
    let params = RegionalParams {
        datacenters: 2,
        pods_per_dc: 2 * scale,
        tors_per_pod: 4 * scale,
        aggs_per_pod: 2 * scale,
        spines_per_dc: 2 * scale,
        ..RegionalParams::default()
    };
    println!("== Figure 6: coverage per test suite on the regional network ==");
    let (r, build_time) = time_it(|| regional(params));
    println!(
        "network: {} devices, {} rules ({} links)  [built in {}s]",
        r.net.topology().device_count(),
        r.net.rule_count(),
        r.links.len(),
        bench::secs(build_time)
    );
    let info = regional_info(&r);
    let mut bdd = Bdd::new();
    let (ms, ms_time) = time_it(|| MatchSets::compute(&r.net, &mut bdd));
    println!("match sets computed in {}s", bench::secs(ms_time));

    // The DefaultRouteCheck in the case study excludes some regional hub
    // routers that legitimately lack the default; ours all have it, so
    // check every role.
    type Suite<'a> = (&'a str, &'a str, Vec<&'a str>);
    let panels: Vec<Suite> = vec![
        (
            "6a",
            "Original test suite",
            vec!["DefaultRouteCheck", "AggCanReachTorLoopback"],
        ),
        ("6b", "InternalRouteCheck test", vec!["InternalRouteCheck"]),
        (
            "6c",
            "ConnectedRouteCheck test",
            vec!["ConnectedRouteCheck"],
        ),
        (
            "6d",
            "Final test suite",
            vec![
                "DefaultRouteCheck",
                "AggCanReachTorLoopback",
                "InternalRouteCheck",
                "ConnectedRouteCheck",
            ],
        ),
    ];

    for (panel, title, tests) in panels {
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        for &t in &tests {
            let report = run_test(&mut bdd, &mut ctx, t);
            assert!(
                report.passed(),
                "{t} failed: {:?}",
                &report.failures[..3.min(report.failures.len())]
            );
        }
        let tracker: Tracker = std::mem::take(&mut ctx.tracker);
        let trace = tracker.into_trace();
        let analyzer = Analyzer::new(&r.net, &ms, &trace, &mut bdd);
        let report = CoverageReport::by_role(&mut bdd, &analyzer);
        println!("\n-- Figure {panel}: {title} --");
        print!("{report}");
        write_csv(&format!("fig{panel}.csv"), &report.to_csv());

        // The qualitative observations the paper calls out, checked on
        // panel (a):
        if panel == "6a" {
            let tor = analyzer.role_metrics(&mut bdd, Role::Tor);
            let agg = analyzer.role_metrics(&mut bdd, Role::Aggregation);
            println!(
                "observations: device coverage near-perfect everywhere; \
                 interface coverage high on aggs ({}) vs ToRs ({}); \
                 fractional rule coverage low everywhere while weighted is high",
                pct(agg.iface_fractional),
                pct(tor.iface_fractional),
            );
        }
    }

    // Sequential-vs-parallel timing of the final suite (§8-style wall
    // clock on the §7 workload), opt-in via --threads / --json.
    // Tracing implies it too: per-worker spans are the interesting part
    // of a fig6 trace.
    if arg_present("--threads") || arg_present("--json") || trace.is_some() {
        let threads = arg_flag("--threads", 4) as usize;
        let jobs = regional_suite_jobs(&r.net, &info);
        let pb = bench_parallel_suite(
            "fig6",
            &format!("regional-x{scale}"),
            &r.net,
            &info,
            &jobs,
            threads,
        );
        pb.print_table();
        if arg_present("--json") {
            write_parallel_json(&pb);
        }
    }
    if let Some(path) = trace {
        yardstick::publish_bdd_gauges("bdd", &bdd.stats());
        bench::write_trace(&path);
    }
}

fn pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:.0}%", x * 100.0),
        None => "-".into(),
    }
}

fn run_test(bdd: &mut Bdd, ctx: &mut TestContext<'_>, name: &str) -> testsuite::TestReport {
    match name {
        "DefaultRouteCheck" => default_route_check(bdd, ctx, |_| true),
        "AggCanReachTorLoopback" => agg_can_reach_tor_loopback(bdd, ctx),
        "InternalRouteCheck" => internal_route_check(bdd, ctx),
        "ConnectedRouteCheck" => connected_route_check(bdd, ctx),
        other => unreachable!("unknown test {other}"),
    }
}
