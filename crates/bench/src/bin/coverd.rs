//! `coverd` — the long-lived coverage daemon, plus its built-in client.
//!
//! Serve mode builds a fat-tree network, wraps it in a
//! [`yardstick::CoverageEngine`], and answers coverage queries over the
//! synchronous HTTP/JSON endpoint in `yardstick::daemon` until a
//! `POST /shutdown` arrives:
//!
//! ```text
//! cargo run -p bench --bin coverd --release -- serve --port 7070 \
//!     [--k 4] [--threads 1] [--backend private|shared] [--gc-watermark N]
//! ```
//!
//! `--backend shared` runs the engine on the concurrent shared-arena
//! manager; `--gc-watermark N` arms the reference-mark collector so any
//! delta that leaves the arena above `N` live nodes triggers a
//! compaction (watch `bdd.gc.*` under `/metrics`).
//!
//! Client mode wraps the daemon's own HTTP client so scripts and CI
//! never need `curl`:
//!
//! ```text
//! coverd get  127.0.0.1:7070 '/covers?rule=0.0'
//! coverd get  127.0.0.1:7070 /metrics
//! coverd post 127.0.0.1:7070 /delta '{"kind":"rule-insert","device":0,"rule":{"dst":"10.0.0.9/32"}}'
//! coverd post 127.0.0.1:7070 /delta '{"kind":"link-down","a":0,"b":2}'
//! coverd post 127.0.0.1:7070 /autogen '{"budget":64}'
//! coverd post 127.0.0.1:7070 /shutdown
//! ```
//!
//! The client prints the response body to stdout and exits 0 for a 2xx
//! status, 1 otherwise — so shell scripts can branch on delivery.

use std::net::TcpListener;
use std::process::ExitCode;

use bench::{arg_flag, arg_value};
use topogen::{fattree_with_engine, FatTreeParams};
use yardstick::daemon::{http_get, http_post, serve};
use yardstick::{Backend, CoverageEngine};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  coverd serve --port P [--k K] [--threads N] [--backend private|shared] [--gc-watermark N]\n  coverd get ADDR TARGET\n  coverd post ADDR TARGET [JSON_BODY]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => {
            netobs::enable();
            let port = arg_flag("--port", 7070);
            let k = arg_flag("--k", 4) as u32;
            let threads = arg_flag("--threads", 1) as usize;
            let backend = match arg_value("--backend").as_deref() {
                None => Backend::Private,
                Some(s) => match s.parse::<Backend>() {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("coverd: {e}");
                        return ExitCode::from(2);
                    }
                },
            };
            let gc_watermark = arg_value("--gc-watermark").map(|s| match s.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("coverd: --gc-watermark expects a node count, got {s:?}");
                    std::process::exit(2);
                }
            });
            let (ft, routing) = fattree_with_engine(FatTreeParams::paper(k));
            let devices = ft.net.topology().device_count();
            let rules = ft.net.rule_count();
            let mut engine = CoverageEngine::new_with_backend(ft.net, threads, backend);
            engine.attach_routing(routing);
            engine.set_gc_watermark(gc_watermark);
            let listener = match TcpListener::bind(("127.0.0.1", port as u16)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("coverd: cannot bind 127.0.0.1:{port}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "coverd: serving fat-tree k={k} ({devices} devices, {rules} rules) on 127.0.0.1:{port} [backend={} gc-watermark={}]",
                backend.as_str(),
                gc_watermark.map_or("off".to_string(), |n| n.to_string()),
            );
            match serve(&mut engine, listener) {
                Ok(()) => {
                    println!("coverd: shutdown after {} deltas", engine.version());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("coverd: serve loop failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(method @ ("get" | "post")) => {
            let (Some(addr), Some(target)) = (args.get(2), args.get(3)) else {
                return usage();
            };
            let empty = String::new();
            let body = args.get(4).unwrap_or(&empty);
            let result = if method == "get" {
                http_get(addr, target)
            } else {
                http_post(addr, target, body)
            };
            match result {
                Ok((status, body)) => {
                    println!("{body}");
                    if (200..300).contains(&status) {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("coverd: HTTP {status}");
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("coverd: request failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
