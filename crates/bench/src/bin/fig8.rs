//! Figure 8: overhead of coverage tracking (§8.1).
//!
//! For fat-trees of growing size, run the four benchmark test types —
//! DefaultRouteCheck (state inspection), ToRReachability (end-to-end
//! symbolic), ToRContract (local symbolic), ToRPingmesh (end-to-end
//! concrete) — once with coverage tracking disabled (baseline) and once
//! enabled, and report both times plus the overhead.
//!
//! The paper's claims to reproduce: absolute overhead stays small, and
//! relative overhead is below ~10% whenever the baseline itself takes
//! over a minute (it is only large in relative terms for sub-second
//! state-inspection tests).
//!
//! Usage: `cargo run -p bench --bin fig8 --release [--max-k N]`
//! (default max-k 16; the paper sweeps to k=88 / 9680 routers, which
//! works here too if you have the hours).

use std::time::Duration;

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{fattree, FatTreeParams};

use bench::{
    arg_flag, arg_present, bench_parallel_suite, fattree_info, secs, sweep_ks, time_it, write_csv,
    write_parallel_json,
};
use testsuite::{
    default_route_check, fattree_suite_jobs, tor_contract, tor_pingmesh, tor_reachability,
    TestContext, TestReport,
};

const TESTS: [&str; 4] = [
    "DefaultRouteCheck",
    "ToRContract",
    "ToRReachability",
    "ToRPingmesh",
];

fn main() {
    let trace = bench::trace_arg();
    let max_k = arg_flag("--max-k", 16);
    println!("== Figure 8: overhead of coverage tracking ==");
    println!(
        "{:>4} {:>8} | {:<18} {:>12} {:>12} {:>10} {:>9}",
        "k", "routers", "test", "off (s)", "on (s)", "ovh (s)", "ovh (%)"
    );
    let mut csv =
        String::from("k,routers,test,baseline_secs,tracking_secs,overhead_secs,overhead_pct\n");

    for k in sweep_ks(max_k) {
        let ft = fattree(FatTreeParams::paper(k));
        let routers = ft.device_count();
        let info = fattree_info(&ft);
        // One shared manager per network size: the match sets are part of
        // the analysis setup, not of any single test's cost.
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);

        for test in TESTS {
            // Warmup: one untimed tracked run so the node arena reaches
            // steady state; operation caches are cleared before each
            // timed run so neither mode inherits the other's memo hits.
            // Modes alternate for two repetitions and the minimum is
            // kept, so arena-growth asymmetry cancels out.
            let mut warm_ctx = TestContext::new(&ft.net, &ms, &info);
            run(&mut bdd, &mut warm_ctx, test);
            let mut t_off = Duration::MAX;
            let mut t_on = Duration::MAX;
            let mut checks = (0u64, 0u64);
            for _rep in 0..2 {
                bdd.clear_caches();
                let mut off_ctx = TestContext::without_tracking(&ft.net, &ms, &info);
                let (rep_off, t) = time_it(|| run(&mut bdd, &mut off_ctx, test));
                assert!(rep_off.passed(), "{test} failed at k={k}");
                t_off = t_off.min(t);
                bdd.clear_caches();
                let mut on_ctx = TestContext::new(&ft.net, &ms, &info);
                let (rep_on, t) = time_it(|| run(&mut bdd, &mut on_ctx, test));
                assert!(rep_on.passed());
                t_on = t_on.min(t);
                checks = (rep_off.checks, rep_on.checks);
            }
            assert_eq!(checks.0, checks.1);

            let overhead = t_on.saturating_sub(t_off);
            let pct = if t_off.as_secs_f64() > 0.0 {
                overhead.as_secs_f64() / t_off.as_secs_f64() * 100.0
            } else {
                0.0
            };
            println!(
                "{:>4} {:>8} | {:<18} {:>12} {:>12} {:>10} {:>8.1}%",
                k,
                routers,
                test,
                secs(t_off),
                secs(t_on),
                secs(overhead),
                pct
            );
            csv.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{:.2}\n",
                k,
                routers,
                test,
                t_off.as_secs_f64(),
                t_on.as_secs_f64(),
                overhead.as_secs_f64(),
                pct
            ));
        }
    }
    write_csv("fig8.csv", &csv);
    println!(
        "\nshape to check against the paper: tracking overhead is small in absolute \
         terms at every size; relative overhead is only notable for the sub-second \
         state-inspection test."
    );

    // Sequential-vs-parallel timing of the §8 suite on one fat-tree size
    // (--par-k, default 8), opt-in via --threads / --json (or --trace,
    // which wants the worker spans).
    if arg_present("--threads") || arg_present("--json") || trace.is_some() {
        let threads = arg_flag("--threads", 4) as usize;
        let par_k = arg_flag("--par-k", 8) as u32;
        let ft = fattree(FatTreeParams::paper(par_k));
        let info = fattree_info(&ft);
        let jobs = fattree_suite_jobs(&ft.net, &info, 0xC0FFEE);
        let pb = bench_parallel_suite(
            "fig8",
            &format!("fattree-k{par_k}"),
            &ft.net,
            &info,
            &jobs,
            threads,
        );
        pb.print_table();
        if arg_present("--json") {
            write_parallel_json(&pb);
        }
    }
    if let Some(path) = trace {
        bench::write_trace(&path);
    }
    let _ = Duration::ZERO;
}

fn run(bdd: &mut Bdd, ctx: &mut TestContext<'_>, test: &str) -> TestReport {
    match test {
        "DefaultRouteCheck" => default_route_check(bdd, ctx, |_| true),
        "ToRContract" => tor_contract(bdd, ctx),
        "ToRReachability" => tor_reachability(bdd, ctx),
        "ToRPingmesh" => tor_pingmesh(bdd, ctx, 0xC0FFEE),
        other => unreachable!("unknown test {other}"),
    }
}
