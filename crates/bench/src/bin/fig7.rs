//! Figure 7: coverage improvement across test-suite iterations (§7.3).
//!
//! Starting from the original suite, add InternalRouteCheck, then
//! ConnectedRouteCheck, and report all-device fractional coverage after
//! each step — the paper's summary of one month of suite evolution,
//! whose headline is "89% more forwarding rules and 17% more network
//! interfaces covered".
//!
//! Usage: `cargo run -p bench --bin fig7 --release [--scale N]`

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{regional, RegionalParams};
use yardstick::{Analyzer, Tracker};

use bench::{
    arg_flag, arg_present, bench_parallel_suite, regional_info, write_csv, write_parallel_json,
};
use testsuite::{
    agg_can_reach_tor_loopback, connected_route_check, default_route_check, host_port_check,
    internal_route_check, regional_suite_jobs, wan_route_check, TestContext, WanSpec,
};

fn main() {
    let trace = bench::trace_arg();
    let scale = arg_flag("--scale", 1) as u32;
    let params = RegionalParams {
        pods_per_dc: 2 * scale,
        tors_per_pod: 4 * scale,
        aggs_per_pod: 2 * scale,
        spines_per_dc: 2 * scale,
        ..RegionalParams::default()
    };
    println!("== Figure 7: coverage improvement with test suite iterations ==");
    let r = regional(params);
    println!(
        "network: {} devices, {} rules",
        r.net.topology().device_count(),
        r.net.rule_count()
    );
    let info = regional_info(&r);
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&r.net, &mut bdd);

    let iterations: Vec<(&str, Vec<&str>)> = vec![
        (
            "Start: Original Test Suite",
            vec!["DefaultRouteCheck", "AggCanReachTorLoopback"],
        ),
        (
            "Add: Internal Route Check",
            vec![
                "DefaultRouteCheck",
                "AggCanReachTorLoopback",
                "InternalRouteCheck",
            ],
        ),
        (
            "Add: Connected Route Check",
            vec![
                "DefaultRouteCheck",
                "AggCanReachTorLoopback",
                "InternalRouteCheck",
                "ConnectedRouteCheck",
            ],
        ),
        // Beyond the paper: the two tests §7.3 leaves as future work.
        (
            "Beyond: +Wan Route Check",
            vec![
                "DefaultRouteCheck",
                "AggCanReachTorLoopback",
                "InternalRouteCheck",
                "ConnectedRouteCheck",
                "WanRouteCheck",
            ],
        ),
        (
            "Beyond: +Host Port Check",
            vec![
                "DefaultRouteCheck",
                "AggCanReachTorLoopback",
                "InternalRouteCheck",
                "ConnectedRouteCheck",
                "WanRouteCheck",
                "HostPortCheck",
            ],
        ),
    ];

    let mut csv = String::from(
        "iteration,device_fractional,iface_fractional,rule_fractional,rule_weighted\n",
    );
    let mut series = Vec::new();
    println!(
        "\n{:<28} {:>8} {:>8} {:>8} {:>8}",
        "iteration", "dev(f)", "ifc(f)", "rul(f)", "rul(w)"
    );
    for (label, tests) in iterations {
        let mut ctx = TestContext::new(&r.net, &ms, &info);
        for &t in &tests {
            let rep = match t {
                "DefaultRouteCheck" => default_route_check(&mut bdd, &mut ctx, |_| true),
                "AggCanReachTorLoopback" => agg_can_reach_tor_loopback(&mut bdd, &mut ctx),
                "InternalRouteCheck" => internal_route_check(&mut bdd, &mut ctx),
                "ConnectedRouteCheck" => connected_route_check(&mut bdd, &mut ctx),
                "WanRouteCheck" => {
                    let spec = WanSpec {
                        prefixes: r.wan_prefixes.clone(),
                        wan_routers: r.wans.clone(),
                    };
                    wan_route_check(&mut bdd, &mut ctx, &spec, |role| {
                        matches!(
                            role,
                            netmodel::Role::Spine
                                | netmodel::Role::RegionalHub
                                | netmodel::Role::Wan
                        )
                    })
                }
                "HostPortCheck" => host_port_check(&mut bdd, &mut ctx, &r.host_port_slices),
                _ => unreachable!(),
            };
            assert!(rep.passed(), "{t} failed");
        }
        let tracker: Tracker = std::mem::take(&mut ctx.tracker);
        let trace = tracker.into_trace();
        let analyzer = Analyzer::new(&r.net, &ms, &trace, &mut bdd);
        use yardstick::Aggregator;
        let dev = analyzer.aggregate_devices(&mut bdd, Aggregator::Fractional, |_, _| true);
        let ifc = analyzer.aggregate_out_ifaces(&mut bdd, Aggregator::Fractional, |_, _| true);
        let rf = analyzer.aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true);
        let rw = analyzer.aggregate_rules(&mut bdd, Aggregator::Weighted, |_, _| true);
        println!(
            "{:<28} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            label,
            dev.unwrap_or(0.0) * 100.0,
            ifc.unwrap_or(0.0) * 100.0,
            rf.unwrap_or(0.0) * 100.0,
            rw.unwrap_or(0.0) * 100.0
        );
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6}\n",
            label,
            dev.unwrap_or(0.0),
            ifc.unwrap_or(0.0),
            rf.unwrap_or(0.0),
            rw.unwrap_or(0.0)
        ));
        series.push((rf.unwrap_or(0.0), ifc.unwrap_or(0.0)));
    }
    write_csv("fig7.csv", &csv);

    // Headline numbers: relative improvement from first to last
    // iteration (the paper reports +89% rules, +17% interfaces).
    let (rule0, ifc0) = series[0];
    let (rule_n, ifc_n) = series[2]; // the paper-final suite
    println!(
        "\nheadline: rule coverage improved by {:.0}% (paper: 89%), \
         interface coverage by {:.0}% (paper: 17%)",
        (rule_n - rule0) / rule0.max(1e-9) * 100.0,
        (ifc_n - ifc0) / ifc0.max(1e-9) * 100.0,
    );
    let (rule_b, ifc_b) = *series.last().unwrap();
    println!(
        "beyond the paper: the two future-work tests lift rule coverage to {:.1}% and \
         interface coverage to {:.1}%",
        rule_b * 100.0,
        ifc_b * 100.0
    );

    // Sequential-vs-parallel timing of the paper-final suite, opt-in via
    // --threads / --json (or --trace, which wants the worker spans).
    if arg_present("--threads") || arg_present("--json") || trace.is_some() {
        let threads = arg_flag("--threads", 4) as usize;
        let jobs = regional_suite_jobs(&r.net, &info);
        let pb = bench_parallel_suite(
            "fig7",
            "regional-final-suite",
            &r.net,
            &info,
            &jobs,
            threads,
        );
        pb.print_table();
        if arg_present("--json") {
            write_parallel_json(&pb);
        }
    }
    if let Some(path) = trace {
        yardstick::publish_bdd_gauges("bdd", &bdd.stats());
        bench::write_trace(&path);
    }
}
