//! Config-level coverage audit: which configuration constructs did the
//! test suite actually vouch for?
//!
//! The rule-level metrics answer "which FIB rules were exercised"; this
//! audit lifts the answer to the *configuration* through control-plane
//! provenance (the NSDI '23 follow-up's question). Build the §8
//! fat-tree keeping the control plane resident, run the behavioural
//! suite, and attribute every covered destination-prefix rule back to
//! the originations, BGP sessions, and static routes that produced it.
//! A construct is covered iff some rule it produced has a non-empty
//! Algorithm-1 covered set.
//!
//! To guarantee the audit has something to find, the configuration gets
//! one *dark* construct the behavioural suite can never exercise: a
//! null-routed static for TEST-NET-1 (`192.0.2.0/24`) on the first core
//! router — §2's Azure incident in miniature, at the config level. The
//! plain run must report it (and any company) uncovered; `--autogen`
//! then lets the config-coverage-guided generation loop
//! (`yardstick::testgen::autogen_config`) close every closable gap and
//! must end with zero uncovered constructs.
//!
//! The audit also asserts, on every run, that attribution is *complete*:
//! every covered destination-prefix FIB rule traces back to at least one
//! construct. A covered rule nothing in the config explains would mean
//! the provenance layer lost track of the control plane.
//!
//! Usage: `cargo run -p bench --bin config_audit --release -- \
//!            [--k N] [--threads N] [--seed S] [--autogen] [--json] \
//!            [--trace out.json]`
//!
//! `--json` writes `BENCH_config.json` (benchdiff-compatible: gated
//! `metrics`, informational `info`). The committed baseline comes from
//! an `--autogen` run — CI always passes `--autogen`, so the autogen
//! timing leg is part of the gated shape.

use bench::{arg_flag, arg_present, fattree_info, figures_dir, time_it};
use netbdd::Bdd;
use netmodel::provenance::{ConfigDb, Construct};
use netmodel::MatchSets;
use testsuite::{fattree_suite_jobs, run_job, SuiteVerdict};
use topogen::{fattree_builder, FatTreeParams};
use yardstick::testgen::{autogen_config, ConfigGenReport, GenConfig};
use yardstick::{ConfigCoverage, CoverageEngine, Tracker};

/// The dark prefix: TEST-NET-1, never targeted by any behavioural test
/// (the suite probes the `10.x` ToR prefixes only).
const DARK_PREFIX: &str = "192.0.2.0/24";

fn main() {
    let trace = bench::trace_arg();
    let k = arg_flag("--k", 4) as u32;
    let threads = arg_flag("--threads", 4) as usize;
    let seed = arg_flag("--seed", 0xC0FFEE);
    let use_autogen = arg_present("--autogen");

    println!("== config-level coverage audit (fat-tree k={k}) ==");

    // The network under audit: the §8 fat-tree plus one dark static on
    // the first core — a config construct no behavioural test reaches.
    let mut builder = fattree_builder(FatTreeParams::paper(k));
    let dark_core = builder.cores[0];
    builder.rb.add_static(routing::StaticRoute {
        device: dark_core,
        prefix: DARK_PREFIX.parse().unwrap(),
        target: routing::StaticTarget::Null,
        class: netmodel::rule::RouteClass::Other,
    });
    let (ft, routing_engine) = builder.into_engine();
    let db = routing_engine.config_db();
    let dark = Construct::Static {
        device: dark_core,
        prefix: DARK_PREFIX.parse().unwrap(),
    };
    assert!(
        db.constructs.contains(&dark),
        "dark static must register as a config construct"
    );
    println!(
        "   config: {} constructs (dark: {})",
        db.constructs.len(),
        dark.wire_id()
    );

    // Behavioural baseline: the §8 suite, tracked.
    let info = fattree_info(&ft);
    let jobs = fattree_suite_jobs(&ft.net, &info, seed);
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);
    let mut tracker = Tracker::new();
    let (verdict, suite_t) = time_it(|| {
        let mut verdict = SuiteVerdict::new();
        for job in &jobs {
            let report = run_job(&mut bdd, &ft.net, &ms, &info, &mut tracker, job);
            verdict.record(&report);
        }
        verdict
    });
    assert!(
        verdict.passed(),
        "behavioural suite must pass; failed: {:?}",
        verdict.failed_tests()
    );
    let portable = tracker.trace().export(&bdd);

    // The audit proper: per-construct coverage through the engine.
    let mut engine = CoverageEngine::new(ft.net.clone(), threads);
    engine.attach_routing(routing_engine);
    engine
        .add_test("baseline-suite", &portable)
        .expect("baseline trace must import cleanly");
    let (cov, audit_t) = time_it(|| engine.config_coverage().expect("routing is attached"));

    print_audit(&cov, "behavioural suite");
    let uncovered_before: Vec<String> = cov.uncovered().map(|c| c.construct.wire_id()).collect();
    assert!(
        uncovered_before.contains(&dark.wire_id()),
        "the dark static must be uncovered by the behavioural suite"
    );
    println!("   uncovered before autogen: {}", uncovered_before.len());

    // Acceptance: every covered destination-prefix FIB rule must be
    // attributed to at least one construct.
    let (covered_rules, attributed) = attribution_census(&mut engine, &db);
    assert_eq!(
        covered_rules, attributed,
        "a covered dst-prefix rule has no provenance"
    );
    println!("   attribution: {attributed}/{covered_rules} covered dst-prefix rules explained");

    // `--autogen`: let config-coverage-guided generation close the gaps.
    let mut autogen_leg: Option<(ConfigGenReport, f64)> = None;
    if use_autogen {
        let cfg = GenConfig {
            seed,
            budget: 4096,
            ..GenConfig::default()
        };
        let (report, autogen_t) =
            time_it(|| autogen_config(&mut engine, &cfg).expect("routing is attached"));
        println!(
            "   autogen: {} tests in {} round(s), constructs {} -> {} of {}",
            report.tests.len(),
            report.rounds,
            report.covered_before,
            report.covered_after,
            report.coverable
        );
        assert!(
            report.uncovered.is_empty(),
            "autogen left constructs uncovered: {:?}",
            report
                .uncovered
                .iter()
                .map(Construct::wire_id)
                .collect::<Vec<_>>()
        );
        let after = engine.config_coverage().expect("routing is attached");
        print_audit(&after, "suite + generated tests");
        println!("   uncovered after autogen: {}", after.uncovered().count());
        autogen_leg = Some((report, autogen_t.as_secs_f64()));
    }

    println!(
        "\n   suite {:.3}s | audit {:.3}s ({threads} threads)",
        suite_t.as_secs_f64(),
        audit_t.as_secs_f64()
    );

    if arg_present("--json") {
        let json = to_json(
            k,
            threads,
            seed,
            jobs.len(),
            &engine.config_coverage().expect("routing is attached"),
            &uncovered_before,
            covered_rules,
            suite_t.as_secs_f64(),
            audit_t.as_secs_f64(),
            autogen_leg.as_ref().map(|(r, t)| (r, *t)),
        );
        let path = figures_dir().join("BENCH_config.json");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write BENCH_config.json: {e}"));
        println!("  [json] {}", path.display());
    }
    if let Some(path) = trace {
        bench::write_trace(&path);
    }
}

/// Per-kind coverage table plus the uncovered list.
fn print_audit(cov: &ConfigCoverage, what: &str) {
    let kind = |c: &Construct| match c {
        Construct::Origination { .. } => "origination",
        Construct::Session { .. } => "session",
        Construct::Static { .. } => "static",
    };
    println!("\n   per-construct coverage ({what}):");
    println!("   {:<14} {:>9} {:>8}", "kind", "coverable", "covered");
    for k in ["origination", "session", "static"] {
        let total = cov
            .constructs
            .iter()
            .filter(|c| kind(&c.construct) == k)
            .count();
        let hit = cov
            .constructs
            .iter()
            .filter(|c| kind(&c.construct) == k && c.covered)
            .count();
        println!("   {k:<14} {total:>9} {hit:>8}");
    }
    println!(
        "   {:<14} {:>9} {:>8}   fractional {}",
        "total",
        cov.coverable(),
        cov.covered_count(),
        cov.fractional()
            .map(|f| format!("{:.1}%", f * 100.0))
            .unwrap_or_else(|| "n/a".into())
    );
    for c in cov.uncovered().take(4) {
        println!("     uncovered: {}", c.construct.wire_id());
    }
    if !cov.unreferenced.is_empty() {
        println!("   unreferenced constructs: {}", cov.unreferenced.len());
    }
}

/// Count covered destination-prefix FIB rules and how many of them the
/// provenance layer attributes to at least one construct.
fn attribution_census(engine: &mut CoverageEngine, db: &ConfigDb) -> (usize, usize) {
    let (net, _ms, covered, _bdd) = engine.analysis_parts();
    let mut covered_rules = 0usize;
    let mut attributed = 0usize;
    for (id, rule) in net.rules() {
        let f = &rule.matches;
        let dst = match (f.dst, f.src, f.proto, f.dport, f.sport, f.in_iface) {
            (Some(dst), None, None, None, None, None) => dst,
            _ => continue,
        };
        if !covered.is_exercised(id) {
            continue;
        }
        covered_rules += 1;
        if db.attribution(id.device, dst).is_some() {
            attributed += 1;
        }
    }
    (covered_rules, attributed)
}

/// Benchdiff-compatible JSON: timing legs and the zero-uncovered gate in
/// `metrics`, the audit's findings in `info`.
#[allow(clippy::too_many_arguments)]
fn to_json(
    k: u32,
    threads: usize,
    seed: u64,
    jobs: usize,
    cov: &ConfigCoverage,
    uncovered_before: &[String],
    covered_rules: usize,
    suite_secs: f64,
    audit_secs: f64,
    autogen: Option<(&ConfigGenReport, f64)>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"config_audit\",\n");
    out.push_str(&format!("  \"workload\": \"fattree-k{k}\",\n"));
    out.push_str(&format!("  \"host_cpus\": {},\n", bench::host_cpus()));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"autogen\": {},\n", autogen.is_some()));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"metrics\": {\n");
    out.push_str(&format!("    \"suite_secs\": {suite_secs:.6},\n"));
    out.push_str(&format!("    \"audit_secs\": {audit_secs:.6},\n"));
    if let Some((_, autogen_secs)) = autogen {
        out.push_str(&format!("    \"autogen_secs\": {autogen_secs:.6},\n"));
    }
    out.push_str(&format!(
        "    \"uncovered_constructs\": {}\n",
        cov.uncovered().count()
    ));
    out.push_str("  },\n");
    out.push_str("  \"info\": {\n");
    out.push_str(&format!("    \"coverable\": {},\n", cov.coverable()));
    out.push_str(&format!("    \"covered\": {},\n", cov.covered_count()));
    out.push_str(&format!(
        "    \"unreferenced\": {},\n",
        cov.unreferenced.len()
    ));
    out.push_str(&format!(
        "    \"uncovered_before\": {},\n",
        uncovered_before.len()
    ));
    out.push_str(&format!(
        "    \"uncovered_before_ids\": [{}],\n",
        uncovered_before
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    if let Some((r, _)) = autogen {
        out.push_str(&format!(
            "    \"autogen\": {{\"tests\": {}, \"rounds\": {}, \"covered_before\": {}, \
             \"covered_after\": {}}},\n",
            r.tests.len(),
            r.rounds,
            r.covered_before,
            r.covered_after
        ));
    }
    out.push_str(&format!("    \"covered_dst_rules\": {covered_rules},\n"));
    out.push_str("    \"attribution_complete\": true\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}
