//! `scenario_sweep` — the failure-scenario sweep over the §8 fat-tree.
//!
//! Enumerates **every** single-link failure (exhaustive k=1) plus a
//! seeded sample of two-link failures (k=2), re-converging each scenario
//! incrementally through [`routing::RoutingEngine::apply`] and checking
//! the result bit-identical to a from-scratch
//! [`routing::RoutingEngine::full_rebuild`]. A deterministic packet
//! walker replays a fixed probe set under every scenario and reports the
//! coverage envelope: how many `(device, dst-prefix)` forwarding rules
//! are exercised *only* when some link is down — the scenario-coverage
//! gap the paper's §6 sensitivity analysis asks about.
//!
//! ```text
//! cargo run -p bench --release --bin scenario_sweep -- \
//!     [--k 6] [--probes 64] [--k2-samples 32] [--seed 7] [--json]
//! ```
//!
//! The headline is wall clock: `incremental_secs` (sum of `apply` calls)
//! versus `rebuild_secs` (sum of from-scratch eBGP fixpoints for the
//! same scenarios), plus the same comparison one layer up where each
//! delta also re-shards the coverage engine (`engine_delta_secs` vs
//! `engine_rebuild_secs`). `--json` writes `BENCH_scenarios.json`
//! (gated by `benchdiff --seq-only --tolerance 1.0` in CI against
//! `crates/bench/baselines/`). Any bit-identity violation panics, so CI
//! fails closed.

use std::collections::BTreeSet;
use std::time::Duration;

use bench::{arg_flag, arg_present, time_it};
use netmodel::addr::Prefix;
use netmodel::topology::DeviceId;
use netmodel::{header, Location, Network};
use routing::{RoutingEngine, TopologyDelta};
use topogen::{fattree_with_engine, FatTreeParams};
use yardstick::rng::{seed_mix, splitmix64};
use yardstick::{Backend, CoverageEngine, CoverageTrace, PortableTrace};

/// A probe flow: injected at `src`, destined to the concrete v4 address
/// `dst`, with a per-flow ECMP discriminator.
struct Probe {
    src: DeviceId,
    dst: u128,
    flow: u64,
}

/// Rules are identified by `(device, dst prefix)` — stable across
/// re-convergence, unlike positional rule indices, which shift when a
/// failure withdraws routes earlier in a table.
type RuleKey = (u32, Option<Prefix>);

/// Walk one probe through the FIB, recording every rule it exercises.
///
/// At each hop the first matching rule wins (tables are kept in
/// longest-prefix-first canonical order); ECMP picks one leg by a
/// deterministic hash of `(flow, device)` so a failed leg visibly
/// shifts traffic. A peerless out-interface is delivery; a missing
/// match or a null route ends the walk.
fn walk(net: &Network, probe: &Probe, exercised: &mut BTreeSet<RuleKey>) {
    let topo = net.topology();
    let mut at = probe.src;
    for _hop in 0..64 {
        let rules = net.device_rules(at);
        let Some(rule) = rules.iter().find(|r| match &r.matches.dst {
            Some(p) => p.contains_addr(probe.dst),
            None => true,
        }) else {
            return;
        };
        exercised.insert((at.0, rule.matches.dst));
        let outs = rule.action.out_ifaces();
        if outs.is_empty() {
            return; // null route
        }
        let mut h = seed_mix(probe.flow, at.0 as u64);
        let out = outs[(splitmix64(&mut h) % outs.len() as u64) as usize];
        match topo.iface(out).peer {
            Some(peer) => at = topo.iface(peer).device,
            None => return, // delivered out a host/External iface
        }
    }
    panic!("probe loop: flow {:x} stuck at device {}", probe.flow, at.0);
}

/// Replay the whole probe set and return the exercised-rule set.
fn coverage(net: &Network, probes: &[Probe]) -> BTreeSet<RuleKey> {
    let mut set = BTreeSet::new();
    for p in probes {
        walk(net, p, &mut set);
    }
    set
}

/// A deterministic all-pairs-ish probe set: `n` flows between distinct
/// ToRs, each to a distinct host address inside the destination subnet.
fn make_probes(tors: &[(DeviceId, Prefix, netmodel::topology::IfaceId)], n: usize) -> Vec<Probe> {
    let mut probes = Vec::with_capacity(n);
    let t = tors.len();
    for i in 0..n {
        let (src, _, _) = tors[i % t];
        let (_, dst_p, _) = tors[(i / t + i + 1) % t];
        // Hosts live at offsets 1.. within the /24; rotate through a few.
        let dst = dst_p.bits() + 1 + (i % 9) as u128;
        probes.push(Probe {
            src,
            dst,
            flow: seed_mix(0x5eed, i as u64),
        });
    }
    probes
}

/// Assert `net` is bit-identical to a from-scratch rebuild, device by
/// device, and return the rebuild's wall clock. Also asserts — outside
/// the timed section — that config provenance survives incremental
/// re-convergence: the resident engine's [`RoutingEngine::config_db`]
/// must equal the one a scratch build of the same degraded topology
/// derives.
fn check_rebuild(engine: &RoutingEngine, net: &Network, what: &str) -> Duration {
    let (rebuilt, dt) = time_it(|| engine.full_rebuild().expect("full rebuild"));
    for (d, _) in net.topology().devices() {
        assert_eq!(
            net.device_rules(d),
            rebuilt.device_rules(d),
            "FIB diverged from full rebuild at device {} ({what})",
            d.0
        );
    }
    let (_, scratch_db) = engine
        .degraded_builder()
        .try_build_with_provenance()
        .expect("scratch provenance build");
    assert_eq!(
        engine.config_db(),
        scratch_db,
        "config provenance diverged from a scratch build ({what})"
    );
    dt
}

/// One scenario: fail `downs`, measure, recover, verify restoration.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    engine: &mut RoutingEngine,
    net: &mut Network,
    baseline: &Network,
    probes: &[Probe],
    downs: &[(DeviceId, DeviceId)],
    failure_cov: &mut BTreeSet<RuleKey>,
    incremental: &mut Duration,
    rebuild: &mut Duration,
    what: &str,
) {
    for &(a, b) in downs {
        let (_, dt) = time_it(|| {
            engine
                .apply(net, &TopologyDelta::LinkDown { a, b })
                .expect("link-down")
        });
        *incremental += dt;
    }
    *rebuild += check_rebuild(engine, net, what);
    failure_cov.extend(coverage(net, probes));
    for &(a, b) in downs {
        let (_, dt) = time_it(|| {
            engine
                .apply(net, &TopologyDelta::LinkUp { a, b })
                .expect("link-up")
        });
        *incremental += dt;
    }
    for (d, _) in net.topology().devices() {
        assert_eq!(
            net.device_rules(d),
            baseline.device_rules(d),
            "recovery failed to restore the healthy FIB at device {} ({what})",
            d.0
        );
    }
}

/// The coverage-engine leg: a handful of scenarios where each delta also
/// re-shards match/covered sets, vs rebuilding the engine from scratch.
fn engine_leg(scenarios: usize) -> (f64, f64) {
    let (ft, routing) = fattree_with_engine(FatTreeParams::paper(4));
    let (tor0, p0, _) = ft.tors[0];
    let trace: PortableTrace = {
        let mut bdd = netbdd::Bdd::new();
        let mut t = CoverageTrace::new();
        let set = header::dst_in(&mut bdd, &p0);
        t.add_packets(&mut bdd, Location::device(tor0), set);
        t.export(&bdd)
    };
    let mut engine = CoverageEngine::new_with_backend(ft.net, 1, Backend::Private);
    engine.attach_routing(routing);
    engine.add_test("probe", &trace).unwrap();

    let pairs: Vec<(DeviceId, DeviceId)> = dedup_pairs(engine.routing().unwrap());
    let mut delta_secs = Duration::ZERO;
    let mut rebuild_secs = Duration::ZERO;
    for &(a, b) in pairs.iter().take(scenarios) {
        let (_, dt) = time_it(|| {
            engine
                .apply_topology(&TopologyDelta::LinkDown { a, b })
                .expect("engine link-down")
        });
        delta_secs += dt;
        // Full-rebuild cost one layer up: re-derive the degraded FIBs
        // and rebuild the whole coverage engine over them.
        let (_, dt) = time_it(|| {
            let degraded = engine.routing().unwrap().full_rebuild().unwrap();
            let mut fresh = CoverageEngine::new_with_backend(degraded, 1, Backend::Private);
            fresh.add_test("probe", &trace).unwrap();
            fresh.headline_metrics()
        });
        rebuild_secs += dt;
        let (_, dt) = time_it(|| {
            engine
                .apply_topology(&TopologyDelta::LinkUp { a, b })
                .expect("engine link-up")
        });
        delta_secs += dt;
    }
    (delta_secs.as_secs_f64(), rebuild_secs.as_secs_f64())
}

/// Distinct device pairs with at least one link between them, in id order.
fn dedup_pairs(engine: &RoutingEngine) -> Vec<(DeviceId, DeviceId)> {
    let set: BTreeSet<(u32, u32)> = engine
        .link_endpoints()
        .into_iter()
        .map(|(a, b)| (a.0, b.0))
        .collect();
    set.into_iter()
        .map(|(a, b)| (DeviceId(a), DeviceId(b)))
        .collect()
}

fn main() {
    netobs::enable();
    let k = arg_flag("--k", 6) as u32;
    let probes_n = arg_flag("--probes", 64) as usize;
    let k2_samples = arg_flag("--k2-samples", 32) as usize;
    let seed = arg_flag("--seed", 7);

    let (ft, mut engine) = fattree_with_engine(FatTreeParams::paper(k));
    let mut net = ft.net;
    let baseline = net.clone();
    let probes = make_probes(&ft.tors, probes_n);
    let pairs = dedup_pairs(&engine);

    let healthy_cov = coverage(&net, &probes);
    let mut failure_cov = BTreeSet::new();
    let mut incremental = Duration::ZERO;
    let mut rebuild = Duration::ZERO;

    // Exhaustive k=1: every link pair fails once.
    for &(a, b) in &pairs {
        run_scenario(
            &mut engine,
            &mut net,
            &baseline,
            &probes,
            &[(a, b)],
            &mut failure_cov,
            &mut incremental,
            &mut rebuild,
            &format!("link {}-{} down", a.0, b.0),
        );
    }

    // Seeded k=2: sampled pairs of distinct links.
    let mut state = seed_mix(seed, 0x6b32); // "k2"
    let mut sampled = 0usize;
    while sampled < k2_samples {
        let i = (splitmix64(&mut state) % pairs.len() as u64) as usize;
        let j = (splitmix64(&mut state) % pairs.len() as u64) as usize;
        if i == j {
            continue;
        }
        run_scenario(
            &mut engine,
            &mut net,
            &baseline,
            &probes,
            &[pairs[i], pairs[j]],
            &mut failure_cov,
            &mut incremental,
            &mut rebuild,
            &format!("links #{i} and #{j} down"),
        );
        sampled += 1;
    }

    let scenario_only: Vec<&RuleKey> = failure_cov.difference(&healthy_cov).collect();
    let lost: Vec<&RuleKey> = healthy_cov.difference(&failure_cov).collect();
    let scenarios = pairs.len() + k2_samples;
    let incremental_secs = incremental.as_secs_f64();
    let rebuild_secs = rebuild.as_secs_f64();
    let speedup = rebuild_secs / incremental_secs.max(1e-9);

    let engine_scenarios = 8usize.min(pairs.len());
    let (engine_delta_secs, engine_rebuild_secs) = engine_leg(engine_scenarios);
    let engine_speedup = engine_rebuild_secs / engine_delta_secs.max(1e-9);

    println!(
        "-- scenario sweep (fat-tree k={k}: {} devices, {} links, {} probes) --",
        net.topology().device_count(),
        pairs.len(),
        probes.len()
    );
    println!(
        "scenarios: {} (k=1 exhaustive {}, k=2 sampled {k2_samples}, seed {seed})",
        scenarios,
        pairs.len()
    );
    println!(
        "routing:   incremental {incremental_secs:.3}s  rebuild {rebuild_secs:.3}s  speedup {speedup:.1}x"
    );
    println!(
        "engine:    delta {engine_delta_secs:.3}s  rebuild {engine_rebuild_secs:.3}s  \
         speedup {engine_speedup:.1}x  ({engine_scenarios} scenarios, k=4)"
    );
    println!(
        "coverage envelope: {} rules healthy, {} exercised only under failure, {} healthy-only",
        healthy_cov.len(),
        scenario_only.len(),
        lost.len()
    );
    for &&(d, p) in scenario_only.iter().take(4) {
        println!(
            "  e.g. device {d} rule dst={} needs a failure scenario",
            p.map_or("default".to_string(), |p| p.to_string())
        );
    }

    if arg_present("--json") {
        // `metrics` holds smaller-is-better values benchdiff gates on;
        // `info` is context, reported but never gated.
        let json = format!(
            "{{\n  \"bench\": \"scenario_sweep\",\n  \"workload\": \"fattree_k{k}\",\n  \
             \"host_cpus\": {},\n  \
             \"metrics\": {{\n    \"incremental_secs\": {incremental_secs:.6},\n    \
             \"rebuild_secs\": {rebuild_secs:.6},\n    \
             \"engine_delta_secs\": {engine_delta_secs:.6},\n    \
             \"engine_rebuild_secs\": {engine_rebuild_secs:.6}\n  }},\n  \
             \"info\": {{\n    \"speedup\": {speedup:.4},\n    \
             \"engine_speedup\": {engine_speedup:.4},\n    \
             \"scenarios\": {scenarios},\n    \"k2_samples\": {k2_samples},\n    \
             \"probes\": {},\n    \"seed\": {seed},\n    \
             \"healthy_rules\": {},\n    \"scenario_only_rules\": {},\n    \
             \"bit_identical\": true,\n    \"provenance_identical\": true\n  }}\n}}\n",
            bench::host_cpus(),
            probes.len(),
            healthy_cov.len(),
            scenario_only.len(),
        );
        let path = bench::figures_dir().join("BENCH_scenarios.json");
        std::fs::write(&path, json).expect("write BENCH_scenarios.json");
        println!("  [json] {}", path.display());
    }
}
