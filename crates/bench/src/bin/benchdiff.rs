//! Compare two `BENCH_parallel.json` files and fail on perf regressions.
//!
//! ```text
//! cargo run -p bench --bin benchdiff --release -- old.json new.json [--tolerance 0.25]
//! ```
//!
//! Every timing metric — per-phase `seq_secs` / `par_secs` and the two
//! totals — is a regression when `new > old * (1 + tolerance)`. Exit
//! status: 0 when nothing regressed, 1 on any regression, 2 on unusable
//! input (missing file, malformed JSON, no comparable metrics). CI runs
//! this informationally against the committed baselines; locally it
//! gates "did my change slow the suite down".

use std::process::ExitCode;

use netobs::json::Json;

struct Row {
    metric: String,
    old: f64,
    new: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            i += 2; // flag plus its value
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            files.push(&args[i]);
            i += 1;
        }
    }
    if files.len() != 2 {
        eprintln!("usage: benchdiff <old.json> <new.json> [--tolerance 0.25]");
        return ExitCode::from(2);
    }
    let tolerance = bench::arg_value("--tolerance")
        .map(|v| v.parse::<f64>().expect("--tolerance takes a number"))
        .unwrap_or(0.25);

    let (old, new) = match (load(files[0]), load(files[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchdiff: {e}");
            return ExitCode::from(2);
        }
    };

    let rows = collect_rows(&old, &new);
    if rows.is_empty() {
        eprintln!("benchdiff: no comparable timing metrics between the two files");
        return ExitCode::from(2);
    }

    println!(
        "benchdiff: {} vs {} (tolerance {:.0}%)",
        files[0],
        files[1],
        tolerance * 100.0
    );
    println!(
        "{:<32} {:>12} {:>12} {:>9}  status",
        "metric", "old (s)", "new (s)", "delta"
    );
    let mut regressions = 0usize;
    for r in &rows {
        let delta = if r.old > 0.0 {
            (r.new - r.old) / r.old * 100.0
        } else {
            0.0
        };
        let regressed = r.new > r.old * (1.0 + tolerance);
        let status = if regressed {
            regressions += 1;
            "REGRESSION"
        } else if r.new < r.old * (1.0 - tolerance) {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<32} {:>12.6} {:>12.6} {:>+8.1}%  {}",
            r.metric, r.old, r.new, delta, status
        );
    }
    if regressions > 0 {
        eprintln!(
            "benchdiff: {regressions} metric(s) regressed beyond {:.0}%",
            tolerance * 100.0
        );
        ExitCode::from(1)
    } else {
        println!("benchdiff: no regression beyond {:.0}%", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    netobs::json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Pair up every timing metric present in both files: per-phase
/// sequential and parallel times (matched by phase name) plus totals.
/// Phases present on only one side are reported but not compared — a
/// renamed phase should not mask a regression elsewhere.
fn collect_rows(old: &Json, new: &Json) -> Vec<Row> {
    let mut rows = Vec::new();
    let old_phases = old.get("phases").and_then(|p| p.as_array()).unwrap_or(&[]);
    let new_phases = new.get("phases").and_then(|p| p.as_array()).unwrap_or(&[]);
    let find = |phases: &[Json], name: &str| -> Option<(f64, f64)> {
        phases.iter().find_map(|p| {
            if p.get("name").and_then(|n| n.as_str()) != Some(name) {
                return None;
            }
            Some((
                p.get("seq_secs").and_then(|v| v.as_f64())?,
                p.get("par_secs").and_then(|v| v.as_f64())?,
            ))
        })
    };
    for p in old_phases {
        let Some(name) = p.get("name").and_then(|n| n.as_str()) else {
            continue;
        };
        match (find(old_phases, name), find(new_phases, name)) {
            (Some((os, op)), Some((ns, np))) => {
                rows.push(Row {
                    metric: format!("{name}.seq_secs"),
                    old: os,
                    new: ns,
                });
                rows.push(Row {
                    metric: format!("{name}.par_secs"),
                    old: op,
                    new: np,
                });
            }
            _ => eprintln!("benchdiff: phase {name:?} missing from the new file, skipped"),
        }
    }
    for key in ["total_seq_secs", "total_par_secs"] {
        if let (Some(o), Some(n)) = (
            old.get(key).and_then(|v| v.as_f64()),
            new.get(key).and_then(|v| v.as_f64()),
        ) {
            rows.push(Row {
                metric: key.to_string(),
                old: o,
                new: n,
            });
        }
    }
    rows
}
