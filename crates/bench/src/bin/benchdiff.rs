//! Compare two benchmark JSON files and fail on perf regressions.
//!
//! ```text
//! cargo run -p bench --bin benchdiff --release -- old.json new.json \
//!     [--tolerance 0.25] [--seq-only]
//! ```
//!
//! Two file shapes are understood, and a file may use both at once:
//!
//! * **Parallel suite** (`BENCH_parallel_*.json`): per-phase
//!   `seq_secs`/`par_secs` plus the two totals.
//! * **Generic metrics** (`BENCH_netbdd.json` and future benches): a
//!   top-level `"metrics"` object whose numeric values are all
//!   smaller-is-better; keys present in both files are compared. An
//!   optional `"info"` object is context (rates, throughput) and is
//!   never compared.
//!
//! When both files record a top-level `"host_cpus"` and the counts
//! differ, the comparison is apples-to-oranges (parallel legs scale with
//! the core count), so benchdiff prints a warning and exits 0 without
//! gating anything.
//!
//! A metric is a regression when `new > old * (1 + tolerance)`. With
//! `--seq-only`, parallel-leg metrics (`*.par_secs`, `total_par_secs`)
//! are still printed but never *gate*: on a 1-CPU CI runner the parallel
//! legs measure scheduler noise, not the engine, so CI gates the
//! sequential legs and keeps the parallel ones informational. Exit
//! status: 0 when nothing gated regressed, 1 on any gated regression, 2
//! on unusable input (missing file, malformed JSON, no comparable
//! metrics) — including a phase or metric present on only one side, in
//! either direction: a renamed or dropped phase must fail loudly, never
//! silently shrink the comparison.

use std::process::ExitCode;

use netobs::json::Json;

struct Row {
    metric: String,
    old: f64,
    new: f64,
    /// Whether a regression on this row fails the run (false for
    /// parallel legs under `--seq-only`).
    gated: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            i += 2; // flag plus its value
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            files.push(&args[i]);
            i += 1;
        }
    }
    if files.len() != 2 {
        eprintln!("usage: benchdiff <old.json> <new.json> [--tolerance 0.25] [--seq-only]");
        return ExitCode::from(2);
    }
    let tolerance = bench::arg_value("--tolerance")
        .map(|v| v.parse::<f64>().expect("--tolerance takes a number"))
        .unwrap_or(0.25);
    let seq_only = bench::arg_present("--seq-only");

    let (old, new) = match (load(files[0]), load(files[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchdiff: {e}");
            return ExitCode::from(2);
        }
    };

    // A baseline measured on a different core count gates nothing: the
    // parallel legs would compare machine shapes, not code.
    if let (Some(o), Some(n)) = (
        old.get("host_cpus").and_then(|v| v.as_f64()),
        new.get("host_cpus").and_then(|v| v.as_f64()),
    ) {
        if o != n {
            println!(
                "benchdiff: WARNING: host_cpus differ (baseline {} vs candidate {}); \
                 skipping gating — re-measure the baseline on this host shape",
                o as u64, n as u64
            );
            return ExitCode::SUCCESS;
        }
    }

    let (rows, mismatches) = collect_rows(&old, &new, seq_only);
    if !mismatches.is_empty() {
        for m in &mismatches {
            eprintln!("benchdiff: {m}");
        }
        eprintln!(
            "benchdiff: {} structural mismatch(es) between {} and {}",
            mismatches.len(),
            files[0],
            files[1]
        );
        return ExitCode::from(2);
    }
    if rows.is_empty() {
        eprintln!("benchdiff: no comparable timing metrics between the two files");
        return ExitCode::from(2);
    }

    println!(
        "benchdiff: {} vs {} (tolerance {:.0}%{})",
        files[0],
        files[1],
        tolerance * 100.0,
        if seq_only {
            ", gating sequential legs only"
        } else {
            ""
        }
    );
    println!(
        "{:<32} {:>14} {:>14} {:>9}  status",
        "metric", "old", "new", "delta"
    );
    let mut regressions = 0usize;
    for r in &rows {
        let delta = if r.old > 0.0 {
            (r.new - r.old) / r.old * 100.0
        } else {
            0.0
        };
        let regressed = r.new > r.old * (1.0 + tolerance);
        let status = if regressed && r.gated {
            regressions += 1;
            "REGRESSION"
        } else if regressed {
            "regressed (informational)"
        } else if r.new < r.old * (1.0 - tolerance) {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<32} {:>14.6} {:>14.6} {:>+8.1}%  {}",
            r.metric, r.old, r.new, delta, status
        );
    }
    if regressions > 0 {
        eprintln!(
            "benchdiff: {regressions} gated metric(s) regressed beyond {:.0}% \
             (baseline: {})",
            tolerance * 100.0,
            files[0]
        );
        ExitCode::from(1)
    } else {
        println!(
            "benchdiff: no gated regression beyond {:.0}%",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    netobs::json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Pair up every metric present in both files: per-phase sequential and
/// parallel times (matched by phase name) plus totals, and every numeric
/// key of a top-level `"metrics"` object. A phase or metric present on
/// only one side — in either direction — is a structural mismatch,
/// returned by name so the caller can fail the run: silently skipping it
/// would let a renamed or dropped phase mask a regression.
fn collect_rows(old: &Json, new: &Json, seq_only: bool) -> (Vec<Row>, Vec<String>) {
    let mut rows = Vec::new();
    let mut mismatches = Vec::new();
    let old_phases = old.get("phases").and_then(|p| p.as_array()).unwrap_or(&[]);
    let new_phases = new.get("phases").and_then(|p| p.as_array()).unwrap_or(&[]);
    let find = |phases: &[Json], name: &str| -> Option<(f64, f64)> {
        phases.iter().find_map(|p| {
            if p.get("name").and_then(|n| n.as_str()) != Some(name) {
                return None;
            }
            Some((
                p.get("seq_secs").and_then(|v| v.as_f64())?,
                p.get("par_secs").and_then(|v| v.as_f64())?,
            ))
        })
    };
    fn names(phases: &[Json]) -> Vec<&str> {
        phases
            .iter()
            .filter_map(|p| p.get("name").and_then(|n| n.as_str()))
            .collect()
    }
    let old_names = names(old_phases);
    let new_names = names(new_phases);
    for &name in &old_names {
        if !new_names.contains(&name) {
            mismatches.push(format!(
                "phase {name:?} present in the baseline, absent from the candidate"
            ));
            continue;
        }
        match (find(old_phases, name), find(new_phases, name)) {
            (Some((os, op)), Some((ns, np))) => {
                rows.push(Row {
                    metric: format!("{name}.seq_secs"),
                    old: os,
                    new: ns,
                    gated: true,
                });
                rows.push(Row {
                    metric: format!("{name}.par_secs"),
                    old: op,
                    new: np,
                    gated: !seq_only,
                });
            }
            _ => mismatches.push(format!("phase {name:?} lacks comparable timing fields")),
        }
    }
    for &name in &new_names {
        if !old_names.contains(&name) {
            mismatches.push(format!(
                "phase {name:?} present in the candidate, absent from the baseline"
            ));
        }
    }
    for (key, gated) in [("total_seq_secs", true), ("total_par_secs", !seq_only)] {
        match (
            old.get(key).and_then(|v| v.as_f64()),
            new.get(key).and_then(|v| v.as_f64()),
        ) {
            (Some(o), Some(n)) => rows.push(Row {
                metric: key.to_string(),
                old: o,
                new: n,
                gated,
            }),
            (Some(_), None) => {
                mismatches.push(format!("{key} present in the baseline only"));
            }
            (None, Some(_)) => {
                mismatches.push(format!("{key} present in the candidate only"));
            }
            (None, None) => {}
        }
    }
    // Generic smaller-is-better metrics objects.
    match (old.get("metrics"), new.get("metrics")) {
        (Some(om), Some(nm)) => {
            for (key, ov) in om.entries() {
                let Some(o) = ov.as_f64() else { continue };
                match nm.get(key).and_then(|v| v.as_f64()) {
                    Some(n) => rows.push(Row {
                        metric: format!("metrics.{key}"),
                        old: o,
                        new: n,
                        gated: true,
                    }),
                    None => mismatches.push(format!(
                        "metric {key:?} present in the baseline, absent from the candidate"
                    )),
                }
            }
            for (key, nv) in nm.entries() {
                if nv.as_f64().is_some() && om.get(key).and_then(|v| v.as_f64()).is_none() {
                    mismatches.push(format!(
                        "metric {key:?} present in the candidate, absent from the baseline"
                    ));
                }
            }
        }
        (Some(_), None) => {
            mismatches.push("\"metrics\" object present in the baseline only".to_string());
        }
        (None, Some(_)) => {
            mismatches.push("\"metrics\" object present in the candidate only".to_string());
        }
        (None, None) => {}
    }
    (rows, mismatches)
}
