//! Compare two benchmark JSON files and fail on perf regressions.
//!
//! ```text
//! cargo run -p bench --bin benchdiff --release -- old.json new.json \
//!     [--tolerance 0.25] [--seq-only]
//! ```
//!
//! Two file shapes are understood, and a file may use both at once:
//!
//! * **Parallel suite** (`BENCH_parallel_*.json`): per-phase
//!   `seq_secs`/`par_secs` plus the two totals.
//! * **Generic metrics** (`BENCH_netbdd.json` and future benches): a
//!   top-level `"metrics"` object whose numeric values are all
//!   smaller-is-better; keys present in both files are compared, keys on
//!   one side only are reported and skipped. An optional `"info"` object
//!   is context (rates, throughput) and is never compared.
//!
//! A metric is a regression when `new > old * (1 + tolerance)`. With
//! `--seq-only`, parallel-leg metrics (`*.par_secs`, `total_par_secs`)
//! are still printed but never *gate*: on a 1-CPU CI runner the parallel
//! legs measure scheduler noise, not the engine, so CI gates the
//! sequential legs and keeps the parallel ones informational. Exit
//! status: 0 when nothing gated regressed, 1 on any gated regression, 2
//! on unusable input (missing file, malformed JSON, no comparable
//! metrics).

use std::process::ExitCode;

use netobs::json::Json;

struct Row {
    metric: String,
    old: f64,
    new: f64,
    /// Whether a regression on this row fails the run (false for
    /// parallel legs under `--seq-only`).
    gated: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            i += 2; // flag plus its value
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            files.push(&args[i]);
            i += 1;
        }
    }
    if files.len() != 2 {
        eprintln!("usage: benchdiff <old.json> <new.json> [--tolerance 0.25] [--seq-only]");
        return ExitCode::from(2);
    }
    let tolerance = bench::arg_value("--tolerance")
        .map(|v| v.parse::<f64>().expect("--tolerance takes a number"))
        .unwrap_or(0.25);
    let seq_only = bench::arg_present("--seq-only");

    let (old, new) = match (load(files[0]), load(files[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchdiff: {e}");
            return ExitCode::from(2);
        }
    };

    let rows = collect_rows(&old, &new, seq_only);
    if rows.is_empty() {
        eprintln!("benchdiff: no comparable timing metrics between the two files");
        return ExitCode::from(2);
    }

    println!(
        "benchdiff: {} vs {} (tolerance {:.0}%{})",
        files[0],
        files[1],
        tolerance * 100.0,
        if seq_only {
            ", gating sequential legs only"
        } else {
            ""
        }
    );
    println!(
        "{:<32} {:>14} {:>14} {:>9}  status",
        "metric", "old", "new", "delta"
    );
    let mut regressions = 0usize;
    for r in &rows {
        let delta = if r.old > 0.0 {
            (r.new - r.old) / r.old * 100.0
        } else {
            0.0
        };
        let regressed = r.new > r.old * (1.0 + tolerance);
        let status = if regressed && r.gated {
            regressions += 1;
            "REGRESSION"
        } else if regressed {
            "regressed (informational)"
        } else if r.new < r.old * (1.0 - tolerance) {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<32} {:>14.6} {:>14.6} {:>+8.1}%  {}",
            r.metric, r.old, r.new, delta, status
        );
    }
    if regressions > 0 {
        eprintln!(
            "benchdiff: {regressions} gated metric(s) regressed beyond {:.0}% \
             (baseline: {})",
            tolerance * 100.0,
            files[0]
        );
        ExitCode::from(1)
    } else {
        println!(
            "benchdiff: no gated regression beyond {:.0}%",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    netobs::json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Pair up every metric present in both files: per-phase sequential and
/// parallel times (matched by phase name) plus totals, and every numeric
/// key of a top-level `"metrics"` object. Entries present on only one
/// side are reported but not compared — a renamed phase or metric should
/// not mask a regression elsewhere.
fn collect_rows(old: &Json, new: &Json, seq_only: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let old_phases = old.get("phases").and_then(|p| p.as_array()).unwrap_or(&[]);
    let new_phases = new.get("phases").and_then(|p| p.as_array()).unwrap_or(&[]);
    let find = |phases: &[Json], name: &str| -> Option<(f64, f64)> {
        phases.iter().find_map(|p| {
            if p.get("name").and_then(|n| n.as_str()) != Some(name) {
                return None;
            }
            Some((
                p.get("seq_secs").and_then(|v| v.as_f64())?,
                p.get("par_secs").and_then(|v| v.as_f64())?,
            ))
        })
    };
    for p in old_phases {
        let Some(name) = p.get("name").and_then(|n| n.as_str()) else {
            continue;
        };
        match (find(old_phases, name), find(new_phases, name)) {
            (Some((os, op)), Some((ns, np))) => {
                rows.push(Row {
                    metric: format!("{name}.seq_secs"),
                    old: os,
                    new: ns,
                    gated: true,
                });
                rows.push(Row {
                    metric: format!("{name}.par_secs"),
                    old: op,
                    new: np,
                    gated: !seq_only,
                });
            }
            _ => eprintln!("benchdiff: phase {name:?} missing from the new file, skipped"),
        }
    }
    for (key, gated) in [("total_seq_secs", true), ("total_par_secs", !seq_only)] {
        if let (Some(o), Some(n)) = (
            old.get(key).and_then(|v| v.as_f64()),
            new.get(key).and_then(|v| v.as_f64()),
        ) {
            rows.push(Row {
                metric: key.to_string(),
                old: o,
                new: n,
                gated,
            });
        }
    }
    // Generic smaller-is-better metrics objects.
    if let (Some(om), Some(nm)) = (old.get("metrics"), new.get("metrics")) {
        for (key, ov) in om.entries() {
            let Some(o) = ov.as_f64() else { continue };
            match nm.get(key).and_then(|v| v.as_f64()) {
                Some(n) => rows.push(Row {
                    metric: format!("metrics.{key}"),
                    old: o,
                    new: n,
                    gated: true,
                }),
                None => eprintln!("benchdiff: metric {key:?} missing from the new file, skipped"),
            }
        }
    }
    rows
}
