//! Microbenchmark for the `netbdd` kernel on a coverage-shaped workload.
//!
//! Every Yardstick metric bottoms out in the BDD manager: Algorithm 1 is
//! repeated `diff`/`or`/`and` over per-rule packet sets, which makes the
//! engine's negation cost and computed-cache behaviour the end-to-end
//! bottleneck. This binary isolates exactly that shape — synthetic FIBs
//! built from LPM prefixes and port-range ACLs, first-match residuals,
//! covered-set accumulation, and a negation-heavy stress leg — and
//! reports per-phase wall clock, final node residency, and computed-cache
//! hit/eviction rates as `BENCH_netbdd.json` (compared by `benchdiff`
//! against `crates/bench/baselines/BENCH_netbdd.json` in CI).
//!
//! The workload is fully deterministic (splitmix64, fixed seed), so the
//! structural metrics (`nodes`, op counts) are exact across runs and
//! machines; only the `*_secs` metrics are hardware-dependent.
//!
//! A final `shared` leg compiles a per-device workload twice — once on
//! the sequential private manager, once fanned across `--shared-threads`
//! worker handles of one shared concurrent arena (default: all host
//! CPUs) — asserts the match sets export byte-identically, and reports
//! the speedup alongside `host_cpus` so cross-host comparisons can be
//! recognised and skipped by `benchdiff`.

use std::time::Instant;

use netbdd::{Bdd, PortableBdd, Ref};
use yardstick::rng::splitmix64;

/// Header layout of the synthetic workload: a 32-bit dst field, a 16-bit
/// port field, and an 8-bit tos field — 56 variables, the same order of
/// magnitude per-field as the real `netmodel` header encoding.
const DST: (u32, u32) = (0, 32);
const PORT: (u32, u32) = (32, 16);
const TOS: (u32, u32) = (48, 8);

struct Workload {
    devices: usize,
    rules_per_device: usize,
    tests: usize,
}

/// One device's raw rule match sets: LPM prefixes over a few shared
/// aggregates (FIBs are massively repetitive) plus port-range ACL rules.
fn device_rules(bdd: &mut Bdd, seed: &mut u64, n: usize) -> Vec<Ref> {
    let mut rules = Vec::with_capacity(n);
    for i in 0..n {
        let r = splitmix64(seed);
        let set = if i % 4 == 3 {
            // ACL-shaped rule: dst aggregate ∧ port range.
            let lo = (r >> 8) as u128 & 0xFFF;
            let hi = (lo + 1 + ((r >> 24) as u128 & 0x3FFF)).min((1 << PORT.1) - 1);
            let ports = bdd.int_range(PORT.0, PORT.1, lo, hi);
            let agg = bdd.bits_prefix(DST.0, DST.1, ((r & 0xFF) as u128) << 24, 8);
            let tos = bdd.bits_eq(TOS.0, TOS.1, (r >> 40) as u128 & 0xFF);
            let acl = bdd.and(agg, ports);
            bdd.and(acl, tos)
        } else {
            // Route-shaped rule: /8..=/28 prefix drawn from 16 aggregates.
            let plen = 8 + (r % 21) as u32;
            let addr = (r >> 16) as u128 & 0xFFFF_FFFF;
            let addr = (addr & !0xF000_0000) | (((r >> 4) & 0xF) as u128) << 28;
            let masked = if plen == 32 {
                addr
            } else {
                addr & !((1u128 << (32 - plen)) - 1)
            };
            bdd.bits_prefix(DST.0, DST.1, masked, plen)
        };
        rules.push(set);
    }
    rules
}

/// First-match residuals: `effective[i] = raw[i] \ (raw[0] ∪ … ∪ raw[i-1])`
/// — the negation-heavy inner loop of `MatchSets::compute`.
fn residuals(bdd: &mut Bdd, raw: &[Ref]) -> (Vec<Ref>, Ref) {
    let mut matched = bdd.empty();
    let mut eff = Vec::with_capacity(raw.len());
    for &r in raw {
        let e = bdd.diff(r, matched);
        matched = bdd.or(matched, r);
        eff.push(e);
    }
    (eff, matched)
}

/// Shared-arena leg: the fromRule + residual phases, run once on the
/// private sequential manager and once fanned across `threads` workers
/// sharing one concurrent arena. Per-device match-set totals must export
/// byte-identically (canonical `PortableBdd` form) before either timing
/// is reported. Returns `(sequential_secs, shared_secs)`.
fn shared_leg(w: &Workload, threads: usize) -> (f64, f64) {
    // Independent per-device seeds, so compiling a device is
    // order-independent and the fan-out is deterministic.
    let mut base = 0xA5A5_D00D_5EED_0001u64;
    let seeds: Vec<u64> = (0..w.devices).map(|_| splitmix64(&mut base)).collect();

    let t = Instant::now();
    let mut seq = Bdd::new();
    let seq_exports: Vec<PortableBdd> = seeds
        .iter()
        .map(|&s| {
            let mut s = s;
            let raw = device_rules(&mut seq, &mut s, w.rules_per_device);
            let (_, total) = residuals(&mut seq, &raw);
            seq.export(total)
        })
        .collect();
    let seq_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let shared = Bdd::new_shared();
    let mut results: Vec<Option<PortableBdd>> = vec![None; w.devices];
    let chunk = w.devices.div_ceil(threads);
    std::thread::scope(|scope| {
        for (tid, slots) in results.chunks_mut(chunk).enumerate() {
            let mut local = shared.handle();
            let seeds = &seeds;
            scope.spawn(move || {
                for (j, slot) in slots.iter_mut().enumerate() {
                    let mut s = seeds[tid * chunk + j];
                    let raw = device_rules(&mut local, &mut s, w.rules_per_device);
                    let (_, total) = residuals(&mut local, &raw);
                    *slot = Some(local.export(total));
                }
            });
        }
    });
    let shared_secs = t.elapsed().as_secs_f64();

    for (d, (a, b)) in seq_exports.iter().zip(&results).enumerate() {
        assert_eq!(
            Some(a),
            b.as_ref(),
            "shared-arena match set diverged from sequential at device {d}"
        );
    }
    (seq_secs, shared_secs)
}

fn main() {
    let w = Workload {
        devices: bench::arg_flag("--devices", 48) as usize,
        rules_per_device: bench::arg_flag("--rules", 384) as usize,
        tests: bench::arg_flag("--tests", 768) as usize,
    };
    let mut bdd = Bdd::new();
    let mut seed = 0xC0FF_EE00_D15E_A5E5u64;

    // Phase 1: fromRule — compile every rule's raw match set.
    let t = Instant::now();
    let raw: Vec<Vec<Ref>> = (0..w.devices)
        .map(|_| device_rules(&mut bdd, &mut seed, w.rules_per_device))
        .collect();
    let fromrule_secs = t.elapsed().as_secs_f64();

    // Phase 2: match sets — first-match residuals per device (diff-heavy).
    let t = Instant::now();
    let per_device: Vec<(Vec<Ref>, Ref)> = raw.iter().map(|r| residuals(&mut bdd, r)).collect();
    let matchsets_secs = t.elapsed().as_secs_f64();

    // Phase 3: covered sets — Algorithm 1's shape: each synthetic test
    // reports a packet set; covered[rule] accumulates test ∩ effective,
    // and the per-device untested remainder is recomputed as a diff.
    let t = Instant::now();
    let mut covered_accum = bdd.empty();
    for i in 0..w.tests {
        let r = splitmix64(&mut seed);
        let probe = {
            let p = bdd.bits_prefix(
                DST.0,
                DST.1,
                ((r >> 16) as u128 & 0xFFFF_FFFF) & !0xFFFF,
                16,
            );
            let tos = bdd.bits_eq(TOS.0, TOS.1, (r >> 52) as u128 & 0xFF);
            bdd.and(p, tos)
        };
        let (eff, total) = &per_device[i % w.devices];
        let reached = bdd.and(probe, *total);
        let hit = bdd.and(reached, eff[(r % w.rules_per_device as u64) as usize]);
        covered_accum = bdd.or(covered_accum, hit);
        // The paper's "what remains untested" query — another negation.
        let untested = bdd.diff(*total, covered_accum);
        let _ = bdd.probability(untested);
    }
    let covered_secs = t.elapsed().as_secs_f64();

    // Phase 4: negation stress — complement/difference chains over the
    // accumulated device totals. With materialized complements this leg
    // grows the arena; with complement edges it is pure cache traffic.
    let t = Instant::now();
    let mut acc = covered_accum;
    for (eff, total) in &per_device {
        let n1 = bdd.not(*total);
        let n2 = bdd.not(acc);
        let x = bdd.xor(n1, n2);
        let d = bdd.diff(x, eff[0]);
        let f = bdd.forall(d, &[TOS.0, TOS.0 + 1]);
        acc = bdd.or(acc, f);
        let _ = bdd.probability(acc);
    }
    let negation_secs = t.elapsed().as_secs_f64();

    // Phase 5: shared-arena leg — the compile shape again, sequential vs
    // fanned across worker handles on one concurrent arena, with
    // bit-identity asserted between the two.
    let host_cpus = bench::host_cpus();
    let shared_threads =
        (bench::arg_flag("--shared-threads", host_cpus as u64) as usize).clamp(1, w.devices);
    let (shared_seq_secs, shared_secs) = shared_leg(&w, shared_threads);
    let shared_speedup = shared_seq_secs / shared_secs.max(1e-9);

    let stats = bdd.stats();
    let total_secs = fromrule_secs + matchsets_secs + covered_secs + negation_secs;

    println!(
        "-- netbdd micro ({} devices x {} rules, {} tests) --",
        w.devices, w.rules_per_device, w.tests
    );
    for (name, secs) in [
        ("fromrule", fromrule_secs),
        ("matchsets", matchsets_secs),
        ("covered_sets", covered_secs),
        ("negation_stress", negation_secs),
        ("total", total_secs),
    ] {
        println!("{name:<16} {secs:>9.3}s");
    }
    println!(
        "nodes: {}  ite ops/s: {:.0}  ite hit rate: {:.3}  unique hit rate: {:.3}",
        stats.nodes,
        stats.ite_lookups as f64 / total_secs,
        stats.ite_hit_rate(),
        stats.unique_hit_rate()
    );
    println!(
        "shared leg: seq {shared_seq_secs:.3}s  shared({shared_threads}t) {shared_secs:.3}s  \
         speedup {shared_speedup:.2}x  (host_cpus {host_cpus})"
    );

    // `metrics` holds smaller-is-better values benchdiff gates on; `info`
    // is context (rates, throughput) reported but never gated.
    let json = format!(
        "{{\n  \"bench\": \"netbdd_micro\",\n  \"workload\": \"{}x{}r{}t\",\n  \
         \"host_cpus\": {},\n  \
         \"metrics\": {{\n    \"fromrule_secs\": {:.6},\n    \"matchsets_secs\": {:.6},\n    \
         \"covered_sets_secs\": {:.6},\n    \"negation_stress_secs\": {:.6},\n    \
         \"total_secs\": {:.6},\n    \"shared_secs\": {:.6},\n    \"nodes\": {}\n  }},\n  \
         \"info\": {{\n    \
         \"ite_lookups\": {},\n    \"ite_hit_rate\": {:.4},\n    \"unique_hit_rate\": {:.4},\n    \
         \"ite_ops_per_sec\": {:.0},\n    \"ops_total\": {},\n    \
         \"shared_seq_secs\": {:.6},\n    \"shared_threads\": {},\n    \
         \"shared_speedup\": {:.4}\n  }}\n}}\n",
        w.devices,
        w.rules_per_device,
        w.tests,
        host_cpus,
        fromrule_secs,
        matchsets_secs,
        covered_secs,
        negation_secs,
        total_secs,
        shared_secs,
        stats.nodes,
        stats.ite_lookups,
        stats.ite_hit_rate(),
        stats.unique_hit_rate(),
        stats.ite_lookups as f64 / total_secs,
        stats.ops.total(),
        shared_seq_secs,
        shared_threads,
        shared_speedup,
    );
    let path = bench::figures_dir().join("BENCH_netbdd.json");
    std::fs::write(&path, json).expect("write BENCH_netbdd.json");
    println!("  [json] {}", path.display());
}
