//! Mutation study: does coverage predict bug detection?
//!
//! The experiment behind the paper's central claim. Build a fat-tree,
//! install bogon-filter ACLs (drop TCP/23 toward TEST-NET-1,
//! `192.0.2.0/24`) on every core — rules the §8 suite never exercises,
//! because every behavioural test targets the `10.x` ToR prefixes — then
//! generate seeded mutants across the whole dataplane, re-run the suite
//! against each, and split the kill rate by whether the mutated rules sat
//! inside the suite's Algorithm-1 covered sets. Covered mutants should
//! die; uncovered ones (the core ACLs — §2's Azure incident in
//! miniature) should survive. Add `--acl-tests` to extend the suite with
//! `AclEntryCheck` state inspections of those same ACLs and watch the
//! survivors move to the covered side and die. Or add `--autogen` and
//! let the coverage-guided generation loop (`yardstick::testgen`) close
//! the same gaps with zero hand-written tests.
//!
//! Usage: `cargo run -p bench --bin mutation_report --release -- \
//!            [--k N] [--threads N] [--seed S] [--cap N] [--acl-tests] \
//!            [--autogen] [--no-verify] [--json] [--trace out.json]`
//!
//! `--json` writes `BENCH_mutation.json` (benchdiff-compatible: gated
//! `metrics`, informational `info`); with `--autogen` it writes
//! `BENCH_mutation_autogen.json` instead, so the two study variants keep
//! independent benchdiff baselines. Unless `--no-verify` is given, the
//! run re-evaluates every mutant at 1, 2, and 4 threads (and, with
//! `--autogen`, regenerates the suite at each thread count) and asserts
//! the outcome vectors — and therefore the surviving-mutant list — are
//! bit-identical.

use bench::{arg_flag, arg_present, fattree_info, figures_dir, time_it};
use mutate::{cross_reference, evaluate, generate, MutationConfig, MutationReport, Operator};
use netbdd::Bdd;
use netmodel::MatchSets;
use testsuite::{acl_entry_jobs, fattree_suite_jobs, run_job, SuiteJob, SuiteVerdict};
use topogen::acl::{install_acl, AclEntry};
use topogen::{fattree, FatTreeParams};
use yardstick::testgen::{self, GenConfig, GenReport};
use yardstick::{CoverageEngine, CoveredSets, Tracker};

/// The port the bogon filters block. Port 23 keeps the Figure-2 flavour
/// ("block packets to port 23").
const BOGON_PORT: u16 = 23;

fn main() {
    let trace = bench::trace_arg();
    let k = arg_flag("--k", 4) as u32;
    let threads = arg_flag("--threads", 4) as usize;
    let seed = arg_flag("--seed", 0xC0FFEE);
    let cap = arg_flag("--cap", 12) as usize;
    let acl_tests = arg_present("--acl-tests");
    let use_autogen = arg_present("--autogen");
    let verify = !arg_present("--no-verify");

    println!("== mutation study: coverage vs. kill rate (fat-tree k={k}) ==");

    // The network under test: the §8 fat-tree plus one bogon-filter ACL
    // entry per core router.
    let mut ft = fattree(FatTreeParams::paper(k));
    let bogon: netmodel::Prefix = "192.0.2.0/24".parse().unwrap();
    let cores = ft.cores.clone();
    for &core in &cores {
        install_acl(
            &mut ft.net,
            core,
            &[AclEntry::block_tcp_port_to(bogon, BOGON_PORT)],
        );
    }
    let info = fattree_info(&ft);
    let mut jobs = fattree_suite_jobs(&ft.net, &info, seed);
    if acl_tests {
        jobs.extend(acl_entry_jobs(&cores, BOGON_PORT));
    }
    println!(
        "   suite: {} jobs ({}), {} core bogon filters installed",
        jobs.len(),
        if acl_tests {
            "with AclEntryCheck"
        } else {
            "behavioural only"
        },
        cores.len()
    );

    // Baseline: the suite must be green on the unmutated network, and its
    // tracked trace yields the covered sets every mutant is judged
    // against.
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);
    let mut tracker = Tracker::new();
    let (baseline, baseline_t) = time_it(|| {
        let mut verdict = SuiteVerdict::new();
        for job in &jobs {
            let report = run_job(&mut bdd, &ft.net, &ms, &info, &mut tracker, job);
            verdict.record(&report);
        }
        verdict
    });
    assert!(
        baseline.passed(),
        "baseline suite must pass before mutation means anything; failed: {:?}",
        baseline.failed_tests()
    );

    // Coverage-guided generation: seed an engine with the behavioural
    // suite's trace, let the loop close the remaining gaps, then replay
    // the emitted tests through the very same tracker so the covered
    // sets (and the mutant evaluation below) include them.
    let mut autogen_leg = None;
    if use_autogen {
        let portable = tracker.trace().export(&bdd);
        let cfg = GenConfig {
            seed,
            budget: 4096,
            ..GenConfig::default()
        };
        let run_loop = |n: usize| {
            let mut engine = CoverageEngine::new(ft.net.clone(), n);
            engine
                .add_test("baseline-suite", &portable)
                .expect("baseline trace must import cleanly");
            testgen::autogen(&mut engine, &cfg)
        };
        let (gen_report, autogen_t) = time_it(|| {
            let report = run_loop(threads);
            if verify {
                for n in [1usize, 2, 4] {
                    if n == threads {
                        continue;
                    }
                    let again = run_loop(n);
                    assert_eq!(
                        report.tests, again.tests,
                        "autogen suite differs between {threads} and {n} threads"
                    );
                }
            }
            report
        });
        assert!(
            gen_report.converged,
            "generation loop must converge on the study network"
        );
        println!(
            "   autogen: {} tests in {} round(s), coverage {:.1}% -> {:.1}%{}",
            gen_report.tests.len(),
            gen_report.rounds,
            gen_report.before.rule_fractional.unwrap_or(0.0) * 100.0,
            gen_report.after.rule_fractional.unwrap_or(0.0) * 100.0,
            if verify {
                ", suite bit-identical across 1/2/4 threads"
            } else {
                ""
            }
        );
        let mut replay = SuiteVerdict::new();
        for t in &gen_report.tests {
            let job = SuiteJob::Generated {
                spec: t.spec.clone(),
            };
            let report = run_job(&mut bdd, &ft.net, &ms, &info, &mut tracker, &job);
            replay.record(&report);
            jobs.push(job);
        }
        assert!(
            replay.passed(),
            "generated tests must pass on the unmutated network; failed: {:?}",
            replay.failed_tests()
        );
        autogen_leg = Some((gen_report, autogen_t));
    }

    let trace_data = tracker.into_trace();
    let covered = CoveredSets::compute(&ft.net, &ms, &trace_data, &mut bdd);

    // Generate, evaluate, cross-reference.
    let cfg = MutationConfig {
        seed,
        per_op_cap: cap,
    };
    let (mutants, generate_t) = time_it(|| generate(&ft.net, &cfg));
    println!(
        "   {} mutants generated (cap {} per operator, seed {seed:#x})",
        mutants.len(),
        cap
    );
    let (outcomes, evaluate_t) = time_it(|| evaluate(&ft.net, &info, &jobs, &mutants, threads));
    let report = cross_reference(seed, &covered, &mutants, &outcomes);

    if verify {
        for n in [1usize, 2, 4] {
            if n == threads {
                continue;
            }
            let again = evaluate(&ft.net, &info, &jobs, &mutants, n);
            assert_eq!(outcomes.len(), again.len());
            for (a, b) in outcomes.iter().zip(&again) {
                assert!(
                    a.id == b.id
                        && a.equivalent == b.equivalent
                        && a.killed == b.killed
                        && a.failed_tests == b.failed_tests,
                    "outcome for mutant {} differs between {threads} and {n} threads",
                    a.id
                );
            }
        }
        println!("   outcomes bit-identical across 1/2/4 threads");
    }

    print_report(&report);
    println!(
        "\n   baseline {:.3}s | generate {:.3}s | evaluate {:.3}s ({} threads)",
        baseline_t.as_secs_f64(),
        generate_t.as_secs_f64(),
        evaluate_t.as_secs_f64(),
        threads
    );

    if arg_present("--json") {
        let json = to_json(
            &report,
            k,
            threads,
            acl_tests,
            jobs.len(),
            baseline_t.as_secs_f64(),
            evaluate_t.as_secs_f64(),
            autogen_leg.as_ref().map(|(r, t)| (r, t.as_secs_f64())),
        );
        // The autogen variant keeps its own file (and its own committed
        // benchdiff baseline): the two runs differ structurally, and
        // benchdiff treats a one-sided metric as a failure.
        let name = if use_autogen {
            "BENCH_mutation_autogen.json"
        } else {
            "BENCH_mutation.json"
        };
        let path = figures_dir().join(name);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {name}: {e}"));
        println!("  [json] {}", path.display());
    }
    if let Some(path) = trace {
        bench::write_trace(&path);
    }
}

fn rate(split: &mutate::CoverageSplit) -> String {
    match split.kill_rate() {
        Some(r) => format!("{:.0}%", r * 100.0),
        None => "n/a".to_string(),
    }
}

fn print_report(report: &MutationReport) {
    println!(
        "\n{:<18} {:>9} {:>10} {:>7} {:>9}",
        "operator", "generated", "equivalent", "killed", "survived"
    );
    for s in &report.per_op {
        println!(
            "{:<18} {:>9} {:>10} {:>7} {:>9}",
            s.op.name(),
            s.generated,
            s.equivalent,
            s.killed,
            s.survived
        );
    }
    println!(
        "\n   covered mutants:   {:>3} killed / {:>3}  ({})",
        report.covered.killed,
        report.covered.total,
        rate(&report.covered)
    );
    println!(
        "   uncovered mutants: {:>3} killed / {:>3}  ({})",
        report.uncovered.killed,
        report.uncovered.total,
        rate(&report.uncovered)
    );
    if report.surviving.is_empty() {
        println!("   no survivors");
    } else {
        println!("   surviving mutant ids: {:?}", report.surviving);
    }
    println!("   kills per test:");
    for (name, kills) in &report.test_kills {
        println!("     {name:<24} {kills}");
    }
}

/// Benchdiff-compatible JSON: `metrics` gate (smaller is better), `info`
/// carries the study's actual findings.
#[allow(clippy::too_many_arguments)]
fn to_json(
    report: &MutationReport,
    k: u32,
    threads: usize,
    acl_tests: bool,
    jobs: usize,
    baseline_secs: f64,
    evaluate_secs: f64,
    autogen: Option<(&GenReport, f64)>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"mutation_report\",\n");
    out.push_str(&format!("  \"workload\": \"fattree-k{k}\",\n"));
    out.push_str(&format!("  \"host_cpus\": {},\n", bench::host_cpus()));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"seed\": {},\n", report.seed));
    out.push_str(&format!("  \"acl_tests\": {acl_tests},\n"));
    out.push_str(&format!("  \"autogen\": {},\n", autogen.is_some()));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"metrics\": {\n");
    out.push_str(&format!(
        "    \"baseline_suite_secs\": {baseline_secs:.6},\n"
    ));
    if let Some((_, autogen_secs)) = autogen {
        out.push_str(&format!("    \"autogen_secs\": {autogen_secs:.6},\n"));
    }
    out.push_str(&format!("    \"evaluate_secs\": {evaluate_secs:.6},\n"));
    out.push_str(&format!(
        "    \"surviving_mutants\": {}\n",
        report.surviving.len()
    ));
    out.push_str("  },\n");
    out.push_str("  \"info\": {\n");
    out.push_str(&format!("    \"mutants\": {},\n", report.generated()));
    out.push_str(&format!("    \"equivalent\": {},\n", report.equivalent()));
    if let Some((r, _)) = autogen {
        out.push_str(&format!(
            "    \"autogen\": {{\"tests\": {}, \"rounds\": {}, \"converged\": {}, \
             \"permanent_gaps\": {}}},\n",
            r.tests.len(),
            r.rounds,
            r.converged,
            r.permanent_gaps.len()
        ));
    }
    out.push_str("    \"per_op\": [\n");
    for (i, s) in report.per_op.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"op\": \"{}\", \"generated\": {}, \"equivalent\": {}, \
             \"killed\": {}, \"survived\": {}}}{}\n",
            s.op.name(),
            s.generated,
            s.equivalent,
            s.killed,
            s.survived,
            if i + 1 < report.per_op.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    for (label, split) in [
        ("covered", &report.covered),
        ("uncovered", &report.uncovered),
    ] {
        out.push_str(&format!(
            "    \"{label}\": {{\"total\": {}, \"killed\": {}, \"kill_rate\": {}}},\n",
            split.total,
            split.killed,
            split
                .kill_rate()
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "null".to_string())
        ));
    }
    out.push_str(&format!(
        "    \"surviving_ids\": [{}],\n",
        report
            .surviving
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("    \"test_kills\": [\n");
    for (i, (name, kills)) in report.test_kills.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"test\": \"{name}\", \"kills\": {kills}}}{}\n",
            if i + 1 < report.test_kills.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!("    \"operators\": {}\n", Operator::ALL.len()));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}
