//! Figure 9: time to compute coverage metrics (§8.2).
//!
//! After running the §8 test suite with tracking enabled, time the
//! phase-2 computation of each metric — device, interface, and rule
//! fractional coverage (fast, near-linear) and path coverage (expensive:
//! it enumerates the multipath path universe and blows past any budget
//! beyond mid-size fabrics, exactly as the paper's 1-hour timeout line
//! shows).
//!
//! Usage: `cargo run -p bench --bin fig9 --release \
//!            [--max-k N] [--path-budget PATHS]`
//! The path budget stands in for the paper's 1-hour timeout: if the
//! universe exceeds it, the row reports `>budget` like the paper's
//! missing points.

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{fattree, FatTreeParams};
use yardstick::pathcov::path_coverage;
use yardstick::{Aggregator, Analyzer, Tracker};

use bench::{
    arg_flag, arg_present, bench_parallel_suite, fattree_info, secs, sweep_ks, time_it, write_csv,
    write_parallel_json,
};
use dataplane::paths::{edge_starts, ExploreOpts};
use dataplane::Forwarder;
use testsuite::{
    default_route_check, fattree_suite_jobs, tor_contract, tor_pingmesh, tor_reachability,
    TestContext,
};

fn main() {
    let trace = bench::trace_arg();
    let max_k = arg_flag("--max-k", 12);
    let path_budget = arg_flag("--path-budget", 2_000_000);
    println!("== Figure 9: time to compute coverage metrics ==");
    println!(
        "{:>4} {:>8} | {:>10} {:>10} {:>10} {:>14} {:>12}",
        "k", "routers", "device(s)", "iface(s)", "rule(s)", "path(s)", "paths"
    );
    let mut csv = String::from(
        "k,routers,device_secs,iface_secs,rule_secs,path_secs,paths,path_budget_hit\n",
    );

    for k in sweep_ks(max_k) {
        let ft = fattree(FatTreeParams::paper(k));
        let routers = ft.device_count();
        let info = fattree_info(&ft);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);

        // Phase 1: collect the coverage trace from the full §8 suite.
        let mut ctx = TestContext::new(&ft.net, &ms, &info);
        default_route_check(&mut bdd, &mut ctx, |_| true);
        tor_contract(&mut bdd, &mut ctx);
        tor_reachability(&mut bdd, &mut ctx);
        tor_pingmesh(&mut bdd, &mut ctx, 0xC0FFEE);
        let tracker: Tracker = std::mem::take(&mut ctx.tracker);
        let trace = tracker.into_trace();

        // Phase 2: time each metric separately (the paper computes each
        // "by itself"). Covered sets are part of the metric computation,
        // so they are included via Analyzer::new inside the closures.
        let (dev_t, ifc_t, rule_t) = {
            let (_, d) = time_it(|| {
                let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
                a.aggregate_devices(&mut bdd, Aggregator::Fractional, |_, _| true)
            });
            let (_, i) = time_it(|| {
                let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
                a.aggregate_out_ifaces(&mut bdd, Aggregator::Fractional, |_, _| true)
            });
            let (_, r) = time_it(|| {
                let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
                a.aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
            });
            (d, i, r)
        };

        // Path coverage with a budget standing in for the 1h timeout.
        let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let fwd = Forwarder::new(&ft.net, &ms);
        let starts = edge_starts(&mut bdd, &fwd);
        let opts = ExploreOpts {
            max_paths: path_budget,
            ..ExploreOpts::default()
        };
        let (pc, path_t) = time_it(|| path_coverage(&mut bdd, &analyzer, &starts, &opts));
        let budget_hit = pc.stats.paths >= path_budget;
        let path_cell = if budget_hit {
            format!(">{} (budget)", secs(path_t))
        } else {
            secs(path_t)
        };
        println!(
            "{:>4} {:>8} | {:>10} {:>10} {:>10} {:>14} {:>12}",
            k,
            routers,
            secs(dev_t),
            secs(ifc_t),
            secs(rule_t),
            path_cell,
            pc.stats.paths
        );
        csv.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6},{:.6},{},{}\n",
            k,
            routers,
            dev_t.as_secs_f64(),
            ifc_t.as_secs_f64(),
            rule_t.as_secs_f64(),
            path_t.as_secs_f64(),
            pc.stats.paths,
            budget_hit
        ));
    }
    write_csv("fig9.csv", &csv);
    println!(
        "\nshape to check against the paper: local metrics stay fast as the network \
         grows; path coverage grows combinatorially with multipath fan-out and is the \
         one metric that hits the budget/timeout."
    );

    // Sequential-vs-parallel timing of the §8 suite on one fat-tree size
    // (--par-k, default 8), opt-in via --threads / --json (or --trace,
    // which wants the worker spans).
    if arg_present("--threads") || arg_present("--json") || trace.is_some() {
        let threads = arg_flag("--threads", 4) as usize;
        let par_k = arg_flag("--par-k", 8) as u32;
        let ft = fattree(FatTreeParams::paper(par_k));
        let info = fattree_info(&ft);
        let jobs = fattree_suite_jobs(&ft.net, &info, 0xC0FFEE);
        let pb = bench_parallel_suite(
            "fig9",
            &format!("fattree-k{par_k}"),
            &ft.net,
            &info,
            &jobs,
            threads,
        );
        pb.print_table();
        if arg_present("--json") {
            write_parallel_json(&pb);
        }
    }
    if let Some(path) = trace {
        bench::write_trace(&path);
    }
}
