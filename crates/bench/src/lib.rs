//! # bench — harnesses that regenerate every figure of the paper
//!
//! One binary per evaluation artifact:
//!
//! | binary | artifact | what it reproduces |
//! |--------|----------|--------------------|
//! | `fig6` | Figure 6 | per-role coverage of the original suite, each new test, and the final suite on the regional network |
//! | `fig7` | Figure 7 | coverage improvement across test-suite iterations (+89% rules, +17% interfaces headline) |
//! | `fig8` | Figure 8 | overhead of coverage tracking across four test types on fat-trees of growing size |
//! | `fig9` | Figure 9 | time to compute device/interface/rule/path coverage vs. network size |
//!
//! Each binary prints the same rows/series the paper reports and writes
//! CSV under `target/figures/`. Criterion micro-benchmarks for the
//! packet-set operation table (Figure 5) and the design-choice ablations
//! live in `benches/`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use netbdd::Bdd;
use netmodel::topology::DeviceId;
use netmodel::{MatchSets, Network};
use testsuite::{run_job, NetworkInfo, SuiteJob};
use topogen::{addressing, FatTree, Regional};
use yardstick::{Aggregator, Analyzer, CoveredSets, ParallelRunner, Tracker};

/// Ground-truth info for a generated regional network.
pub fn regional_info(r: &Regional) -> NetworkInfo {
    NetworkInfo {
        tor_subnets: r.tors.clone(),
        loopbacks: if r.params.loopbacks {
            (0..r.net.topology().device_count())
                .map(|d| (DeviceId(d as u32), addressing::loopback(d as u32)))
                .collect()
        } else {
            Vec::new()
        },
        links: if r.params.connected {
            r.links
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (p4, _, _) = addressing::p2p_v4(i as u32);
                    let (p6, _, _) = addressing::p2p_v6(i as u32);
                    (a, b, p4, p6)
                })
                .collect()
        } else {
            Vec::new()
        },
    }
}

/// Ground-truth info for a generated fat-tree.
pub fn fattree_info(ft: &FatTree) -> NetworkInfo {
    NetworkInfo {
        tor_subnets: ft.tors.clone(),
        loopbacks: if ft.params.loopbacks {
            (0..ft.net.topology().device_count())
                .map(|d| (DeviceId(d as u32), addressing::loopback(d as u32)))
                .collect()
        } else {
            Vec::new()
        },
        links: if ft.params.connected {
            ft.links
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (p4, _, _) = addressing::p2p_v4(i as u32);
                    let (p6, _, _) = addressing::p2p_v6(i as u32);
                    (a, b, p4, p6)
                })
                .collect()
        } else {
            Vec::new()
        },
    }
}

/// Wall-clock one closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Where figure CSVs are written (`target/figures/`), created on demand.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Write a CSV next to the other figure outputs and echo the location.
pub fn write_csv(name: &str, contents: &str) {
    let path = figures_dir().join(name);
    std::fs::write(&path, contents).expect("write figure CSV");
    println!("  [csv] {}", path.display());
}

/// Parse `--max-k N`-style integer flags from argv, with a default.
pub fn arg_flag(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when a bare flag like `--json` appears in argv.
pub fn arg_present(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The string operand of `--trace <path>`-style flags, if present.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Enable netobs when `--trace <path>` is on the command line. Returns
/// the path collection should be written to on exit (via
/// [`write_trace`]). Call before the workload runs.
pub fn trace_arg() -> Option<String> {
    let path = arg_value("--trace")?;
    netobs::enable();
    Some(path)
}

/// Gather the netobs report, write it to `path` (JSON: chrome-traceable
/// `traceEvents` plus the span trees and gauge/counter registry), and
/// echo a human-readable summary.
pub fn write_trace(path: &str) {
    let report = netobs::report();
    assert!(
        report.check_consistent(),
        "span tree is time-inconsistent:\n{}",
        report.render()
    );
    std::fs::write(path, report.to_json()).expect("write trace JSON");
    print!("{}", report.render());
    println!("  [trace] {path} (open in chrome://tracing or Perfetto)");
}

/// CPUs the host exposes — recorded in bench output so speedups can be
/// judged against the hardware they were measured on.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One phase of the sequential-vs-parallel comparison.
#[derive(Clone, Copy, Debug)]
pub struct PhaseRow {
    pub name: &'static str,
    pub seq_secs: f64,
    pub par_secs: f64,
}

impl PhaseRow {
    /// Sequential time over parallel time (> 1 means parallel wins).
    pub fn speedup(&self) -> f64 {
        if self.par_secs > 0.0 {
            self.seq_secs / self.par_secs
        } else {
            0.0
        }
    }
}

/// The result of one sequential-vs-parallel suite benchmark, ready to be
/// serialized as `BENCH_parallel.json`.
#[derive(Clone, Debug)]
pub struct ParallelBench {
    pub bench: String,
    pub workload: String,
    pub threads: usize,
    pub host_cpus: usize,
    pub jobs: usize,
    pub phases: Vec<PhaseRow>,
    /// Always true on success: the harness asserts bit-identity of the
    /// traces, covered sets, and metrics before returning.
    pub metrics_identical: bool,
}

impl ParallelBench {
    pub fn total_seq(&self) -> f64 {
        self.phases.iter().map(|p| p.seq_secs).sum()
    }

    pub fn total_par(&self) -> f64 {
        self.phases.iter().map(|p| p.par_secs).sum()
    }

    pub fn speedup(&self) -> f64 {
        let par = self.total_par();
        if par > 0.0 {
            self.total_seq() / par
        } else {
            0.0
        }
    }

    /// Hand-rolled JSON (the workspace is offline: no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!(
            "  \"workload\": \"{}\",\n",
            escape(&self.workload)
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seq_secs\": {:.6}, \"par_secs\": {:.6}, \
                 \"speedup\": {:.3}}}{}\n",
                escape(p.name),
                p.seq_secs,
                p.par_secs,
                p.speedup(),
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"total_seq_secs\": {:.6},\n", self.total_seq()));
        out.push_str(&format!("  \"total_par_secs\": {:.6},\n", self.total_par()));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!(
            "  \"metrics_identical\": {}\n",
            self.metrics_identical
        ));
        out.push_str("}\n");
        out
    }

    /// Print the comparison as a table, mirroring the other figures.
    pub fn print_table(&self) {
        println!(
            "\n-- parallel engine: {} ({} jobs, {} threads, host cpus: {}) --",
            self.workload, self.jobs, self.threads, self.host_cpus
        );
        println!(
            "{:<14} {:>10} {:>10} {:>9}",
            "phase", "seq (s)", "par (s)", "speedup"
        );
        for p in &self.phases {
            println!(
                "{:<14} {:>10.3} {:>10.3} {:>8.2}x",
                p.name,
                p.seq_secs,
                p.par_secs,
                p.speedup()
            );
        }
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>8.2}x",
            "total",
            self.total_seq(),
            self.total_par(),
            self.speedup()
        );
        println!(
            "traces, covered sets, and metrics bit-identical: {}",
            if self.metrics_identical { "yes" } else { "NO" }
        );
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Write the parallel-bench JSON next to the figure CSVs as
/// `BENCH_parallel.json` and echo the location.
pub fn write_parallel_json(bench: &ParallelBench) {
    let path = figures_dir().join("BENCH_parallel.json");
    std::fs::write(&path, bench.to_json()).expect("write BENCH_parallel.json");
    println!("  [json] {}", path.display());
}

/// Headline metric bundle used to check that the sequential and parallel
/// analyses agree to the last bit.
type Headline = (Option<f64>, Option<f64>, Option<f64>, Option<f64>);

fn headline(bdd: &mut Bdd, a: &Analyzer<'_>) -> Headline {
    (
        a.aggregate_devices(bdd, Aggregator::Fractional, |_, _| true),
        a.aggregate_out_ifaces(bdd, Aggregator::Fractional, |_, _| true),
        a.aggregate_rules(bdd, Aggregator::Fractional, |_, _| true),
        a.aggregate_rules(bdd, Aggregator::Weighted, |_, _| true),
    )
}

/// Run a suite's job list sequentially and through the sharded engine and
/// time the three pipeline phases — test execution, covered-set
/// derivation (Algorithm 1), and the full analysis (covered sets +
/// headline metrics). Asserts along the way that the parallel path is
/// bit-identical to the sequential one: same trace `Ref`s, same covered
/// `Ref`s, same metric floats. Caches are cleared before every timed leg
/// so neither side inherits the other's memo hits.
pub fn bench_parallel_suite(
    bench: &str,
    workload: &str,
    net: &Network,
    info: &NetworkInfo,
    jobs: &[SuiteJob],
    threads: usize,
) -> ParallelBench {
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(net, &mut bdd);

    // Phase: test execution (the per-worker MatchSets recomputation is
    // part of the parallel cost and is deliberately inside the clock).
    bdd.clear_caches();
    let (seq_trace, seq_tests) = time_it(|| {
        let _span = netobs::span!("suite_tests_seq");
        let mut tracker = Tracker::new();
        for job in jobs {
            run_job(&mut bdd, net, &ms, info, &mut tracker, job);
        }
        tracker.into_trace()
    });
    bdd.clear_caches();
    let runner = ParallelRunner::new(threads);
    let ((par_trace, _reports), par_tests) = time_it(|| {
        let _span = netobs::span!("suite_tests_par");
        runner.run(
            &mut bdd,
            jobs,
            |local| MatchSets::compute(net, local),
            |local, ms, tracker, job| {
                run_job(local, net, ms, info, tracker, job);
            },
        )
    });
    assert_eq!(seq_trace.rules, par_trace.rules, "rule marks diverge");
    assert_eq!(seq_trace.packets.len(), par_trace.packets.len());
    for (loc, set) in seq_trace.packets.iter() {
        assert_eq!(
            par_trace.packets.at(loc),
            set,
            "parallel trace diverges at {loc:?}"
        );
    }

    // Phase: covered sets (Algorithm 1), sequential vs device-sharded.
    bdd.clear_caches();
    let (seq_cov, seq_cov_t) = time_it(|| {
        let _span = netobs::span!("suite_covered_seq");
        CoveredSets::compute(net, &ms, &seq_trace, &mut bdd)
    });
    bdd.clear_caches();
    let (par_cov, par_cov_t) = time_it(|| {
        let _span = netobs::span!("suite_covered_par");
        CoveredSets::compute_parallel(net, &ms, &par_trace, &mut bdd, threads)
    });
    for (id, _) in net.rules() {
        assert_eq!(seq_cov.get(id), par_cov.get(id), "covered set diverges");
    }

    // Phase: full analysis — covered sets plus the headline aggregates.
    bdd.clear_caches();
    let (seq_m, seq_an_t) = time_it(|| {
        let _span = netobs::span!("suite_analysis_seq");
        let a = Analyzer::new(net, &ms, &seq_trace, &mut bdd);
        headline(&mut bdd, &a)
    });
    bdd.clear_caches();
    let (par_m, par_an_t) = time_it(|| {
        let _span = netobs::span!("suite_analysis_par");
        let a = Analyzer::new_parallel(net, &ms, &par_trace, &mut bdd, threads);
        headline(&mut bdd, &a)
    });
    assert_eq!(seq_m, par_m, "headline metrics diverge");

    ParallelBench {
        bench: bench.to_string(),
        workload: workload.to_string(),
        threads,
        host_cpus: host_cpus(),
        jobs: jobs.len(),
        phases: vec![
            PhaseRow {
                name: "tests",
                seq_secs: seq_tests.as_secs_f64(),
                par_secs: par_tests.as_secs_f64(),
            },
            PhaseRow {
                name: "covered_sets",
                seq_secs: seq_cov_t.as_secs_f64(),
                par_secs: par_cov_t.as_secs_f64(),
            },
            PhaseRow {
                name: "analysis",
                seq_secs: seq_an_t.as_secs_f64(),
                par_secs: par_an_t.as_secs_f64(),
            },
        ],
        metrics_identical: true,
    }
}

/// Fat-tree sweep sizes up to `max_k` (even ks, growing stride like the
/// paper's 8..88 sweep).
pub fn sweep_ks(max_k: u64) -> Vec<u32> {
    [4u32, 8, 12, 16, 20, 24, 32, 40, 48, 64, 88]
        .into_iter()
        .filter(|&k| k as u64 <= max_k)
        .collect()
}

/// Pretty `Duration` as seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::{fattree, regional, FatTreeParams, RegionalParams};

    #[test]
    fn info_builders_cover_all_links_and_tors() {
        let r = regional(RegionalParams::default());
        let info = regional_info(&r);
        assert_eq!(info.tor_subnets.len(), r.tors.len());
        assert_eq!(info.links.len(), r.links.len());
        assert_eq!(info.loopbacks.len(), r.net.topology().device_count());

        let ft = fattree(FatTreeParams::paper(4));
        let fi = fattree_info(&ft);
        assert_eq!(fi.tor_subnets.len(), 8);
        assert!(fi.loopbacks.is_empty());
        assert!(fi.links.is_empty());
    }

    #[test]
    fn sweep_respects_the_cap() {
        assert_eq!(sweep_ks(16), vec![4, 8, 12, 16]);
        assert_eq!(sweep_ks(88).last(), Some(&88));
        assert!(sweep_ks(3).is_empty());
    }

    #[test]
    fn timing_returns_value_and_duration() {
        let (v, d) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn parallel_suite_bench_verifies_and_reports() {
        let ft = fattree(FatTreeParams::paper(4));
        let info = fattree_info(&ft);
        let jobs = testsuite::fattree_suite_jobs(&ft.net, &info, 0xC0FFEE);
        let pb = bench_parallel_suite("test", "fattree-k4", &ft.net, &info, &jobs, 2);
        assert!(pb.metrics_identical);
        assert_eq!(pb.jobs, jobs.len());
        assert_eq!(pb.threads, 2);
        assert_eq!(pb.phases.len(), 3);
        assert!(pb
            .phases
            .iter()
            .all(|p| p.seq_secs > 0.0 && p.par_secs > 0.0));
        assert!(pb.total_seq() > 0.0 && pb.total_par() > 0.0);
    }

    #[test]
    fn parallel_bench_json_has_the_contract_fields() {
        let pb = ParallelBench {
            bench: "fig9".into(),
            workload: "fattree-k8".into(),
            threads: 4,
            host_cpus: 1,
            jobs: 92,
            phases: vec![
                PhaseRow {
                    name: "tests",
                    seq_secs: 2.0,
                    par_secs: 1.0,
                },
                PhaseRow {
                    name: "covered_sets",
                    seq_secs: 0.5,
                    par_secs: 0.25,
                },
            ],
            metrics_identical: true,
        };
        let json = pb.to_json();
        for needle in [
            "\"bench\": \"fig9\"",
            "\"workload\": \"fattree-k8\"",
            "\"threads\": 4",
            "\"host_cpus\": 1",
            "\"jobs\": 92",
            "\"name\": \"tests\"",
            "\"seq_secs\": 2.000000",
            "\"speedup\": 2.000",
            "\"total_seq_secs\": 2.500000",
            "\"metrics_identical\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert!((pb.speedup() - 2.0).abs() < 1e-12);
    }
}
