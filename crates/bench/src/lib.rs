//! # bench — harnesses that regenerate every figure of the paper
//!
//! One binary per evaluation artifact:
//!
//! | binary | artifact | what it reproduces |
//! |--------|----------|--------------------|
//! | `fig6` | Figure 6 | per-role coverage of the original suite, each new test, and the final suite on the regional network |
//! | `fig7` | Figure 7 | coverage improvement across test-suite iterations (+89% rules, +17% interfaces headline) |
//! | `fig8` | Figure 8 | overhead of coverage tracking across four test types on fat-trees of growing size |
//! | `fig9` | Figure 9 | time to compute device/interface/rule/path coverage vs. network size |
//!
//! Each binary prints the same rows/series the paper reports and writes
//! CSV under `target/figures/`. Criterion micro-benchmarks for the
//! packet-set operation table (Figure 5) and the design-choice ablations
//! live in `benches/`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use netmodel::topology::DeviceId;
use testsuite::NetworkInfo;
use topogen::{addressing, FatTree, Regional};

/// Ground-truth info for a generated regional network.
pub fn regional_info(r: &Regional) -> NetworkInfo {
    NetworkInfo {
        tor_subnets: r.tors.clone(),
        loopbacks: if r.params.loopbacks {
            (0..r.net.topology().device_count())
                .map(|d| (DeviceId(d as u32), addressing::loopback(d as u32)))
                .collect()
        } else {
            Vec::new()
        },
        links: if r.params.connected {
            r.links
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (p4, _, _) = addressing::p2p_v4(i as u32);
                    let (p6, _, _) = addressing::p2p_v6(i as u32);
                    (a, b, p4, p6)
                })
                .collect()
        } else {
            Vec::new()
        },
    }
}

/// Ground-truth info for a generated fat-tree.
pub fn fattree_info(ft: &FatTree) -> NetworkInfo {
    NetworkInfo {
        tor_subnets: ft.tors.clone(),
        loopbacks: if ft.params.loopbacks {
            (0..ft.net.topology().device_count())
                .map(|d| (DeviceId(d as u32), addressing::loopback(d as u32)))
                .collect()
        } else {
            Vec::new()
        },
        links: if ft.params.connected {
            ft.links
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (p4, _, _) = addressing::p2p_v4(i as u32);
                    let (p6, _, _) = addressing::p2p_v6(i as u32);
                    (a, b, p4, p6)
                })
                .collect()
        } else {
            Vec::new()
        },
    }
}

/// Wall-clock one closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Where figure CSVs are written (`target/figures/`), created on demand.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Write a CSV next to the other figure outputs and echo the location.
pub fn write_csv(name: &str, contents: &str) {
    let path = figures_dir().join(name);
    std::fs::write(&path, contents).expect("write figure CSV");
    println!("  [csv] {}", path.display());
}

/// Parse `--max-k N`-style integer flags from argv, with a default.
pub fn arg_flag(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fat-tree sweep sizes up to `max_k` (even ks, growing stride like the
/// paper's 8..88 sweep).
pub fn sweep_ks(max_k: u64) -> Vec<u32> {
    [4u32, 8, 12, 16, 20, 24, 32, 40, 48, 64, 88]
        .into_iter()
        .filter(|&k| k as u64 <= max_k)
        .collect()
}

/// Pretty `Duration` as seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::{fattree, regional, FatTreeParams, RegionalParams};

    #[test]
    fn info_builders_cover_all_links_and_tors() {
        let r = regional(RegionalParams::default());
        let info = regional_info(&r);
        assert_eq!(info.tor_subnets.len(), r.tors.len());
        assert_eq!(info.links.len(), r.links.len());
        assert_eq!(info.loopbacks.len(), r.net.topology().device_count());

        let ft = fattree(FatTreeParams::paper(4));
        let fi = fattree_info(&ft);
        assert_eq!(fi.tor_subnets.len(), 8);
        assert!(fi.loopbacks.is_empty());
        assert!(fi.links.is_empty());
    }

    #[test]
    fn sweep_respects_the_cap() {
        assert_eq!(sweep_ks(16), vec![4, 8, 12, 16]);
        assert_eq!(sweep_ks(88).last(), Some(&88));
        assert!(sweep_ks(3).is_empty());
    }

    #[test]
    fn timing_returns_value_and_duration() {
        let (v, d) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
