//! Figure 5 micro-benchmarks: the packet-set operations coverage
//! computation is built on, at realistic FIB sizes — plus the ablation
//! for DESIGN.md decision #1 (ITE computed cache on vs. cleared).

use criterion::{criterion_group, criterion_main, Criterion};

use netbdd::Bdd;
use netmodel::header;
use netmodel::Prefix;

/// Build the destination sets of `n` disjoint /24s, as a FIB would.
fn prefix_sets(bdd: &mut Bdd, n: u32) -> Vec<netbdd::Ref> {
    (0..n)
        .map(|i| {
            let p = Prefix::v4(
                u32::from_be_bytes([10, (i / 256) as u8, (i % 256) as u8, 0]),
                24,
            );
            header::dst_in(bdd, &p)
        })
        .collect()
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("packetset_ops");

    group.bench_function("fromRule(/24)", |b| {
        let mut bdd = Bdd::new();
        let mut i = 0u32;
        b.iter(|| {
            // A fresh prefix each call so hash-consing can't trivially hit.
            i = (i + 1) % 60000;
            let p = Prefix::v4(
                u32::from_be_bytes([10, (i / 250) as u8, (i % 250) as u8, 0]),
                24,
            );
            header::dst_in(&mut bdd, &p)
        })
    });

    group.bench_function("union(256 prefixes)", |b| {
        let mut bdd = Bdd::new();
        let sets = prefix_sets(&mut bdd, 256);
        b.iter(|| bdd.or_all(sets.iter().copied()))
    });

    group.bench_function("intersect(overlapping aggregates)", |b| {
        let mut bdd = Bdd::new();
        let sets = prefix_sets(&mut bdd, 256);
        let union = bdd.or_all(sets.iter().copied());
        let half = header::dst_in(&mut bdd, &"10.0.0.0/9".parse().unwrap());
        b.iter(|| bdd.and(union, half))
    });

    group.bench_function("negate(union of 256)", |b| {
        let mut bdd = Bdd::new();
        let sets = prefix_sets(&mut bdd, 256);
        let union = bdd.or_all(sets.iter().copied());
        b.iter(|| bdd.not(union))
    });

    group.bench_function("equal(canonical)", |b| {
        let mut bdd = Bdd::new();
        let sets = prefix_sets(&mut bdd, 256);
        let u1 = bdd.or_all(sets.iter().copied());
        let u2 = bdd.or_all(sets.iter().rev().copied());
        b.iter(|| bdd.equal(u1, u2))
    });

    group.bench_function("count(probability)", |b| {
        let mut bdd = Bdd::new();
        let sets = prefix_sets(&mut bdd, 256);
        let union = bdd.or_all(sets.iter().copied());
        // Memo cleared inside the timed routine (clearing is O(entries)
        // and small next to the counting walk on a cold cache).
        b.iter(|| {
            bdd.clear_caches();
            bdd.probability(union)
        })
    });

    group.finish();
}

/// Ablation (DESIGN.md #1): the same union workload with the ITE cache
/// cleared before every operation versus kept warm.
fn bench_cache_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ite_cache_ablation");

    group.bench_function("union256_warm_cache", |b| {
        let mut bdd = Bdd::new();
        let sets = prefix_sets(&mut bdd, 256);
        b.iter(|| bdd.or_all(sets.iter().copied()))
    });

    group.bench_function("union256_cold_cache", |b| {
        let mut bdd = Bdd::new();
        let sets = prefix_sets(&mut bdd, 256);
        b.iter(|| {
            bdd.clear_caches();
            bdd.or_all(sets.iter().copied())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ops, bench_cache_ablation
}
criterion_main!(benches);
