//! Phase-1 tracking micro-costs (the mechanism behind Figure 8's small
//! overheads, and DESIGN.md decision #3): `mark_rule` is a set insert,
//! `mark_packet` one BDD union per call, and a disabled tracker is a
//! branch.

use criterion::{criterion_group, criterion_main, Criterion};

use netbdd::Bdd;
use netmodel::topology::DeviceId;
use netmodel::{header, Location, RuleId};
use yardstick::Tracker;

fn bench_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking");

    group.bench_function("mark_rule", |b| {
        let mut tracker = Tracker::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            tracker.mark_rule(RuleId {
                device: DeviceId(i % 1000),
                index: i % 64,
            });
        })
    });

    group.bench_function("mark_packet_disjoint_prefixes", |b| {
        let mut bdd = Bdd::new();
        let sets: Vec<_> = (0..512u32)
            .map(|i| {
                let p = netmodel::Prefix::v4(
                    u32::from_be_bytes([10, (i / 256) as u8, (i % 256) as u8, 0]),
                    24,
                );
                header::dst_in(&mut bdd, &p)
            })
            .collect();
        let mut tracker = Tracker::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % sets.len();
            tracker.mark_packet(
                &mut bdd,
                Location::device(DeviceId((i % 40) as u32)),
                sets[i],
            );
        })
    });

    group.bench_function("mark_packet_disabled_noop", |b| {
        let mut bdd = Bdd::new();
        let set = header::dst_in(&mut bdd, &"10.0.0.0/24".parse().unwrap());
        let mut tracker = Tracker::disabled();
        b.iter(|| tracker.mark_packet(&mut bdd, Location::device(DeviceId(0)), set))
    });

    group.finish();
}

criterion_group!(benches, bench_tracking);
criterion_main!(benches);
