//! Cost of the netobs instrumentation itself (acceptance gate: disabled
//! overhead on an instrumented workload under 2%).
//!
//! Two angles:
//!
//! * primitives — the per-call cost of `span!` / `gauge` / `counter`
//!   with collection off (one relaxed atomic load) vs. on (an
//!   `Instant::now()` pair plus thread-local bookkeeping);
//! * workload — `MatchSets::compute`, an instrumented pipeline phase,
//!   timed with collection off vs. on. The off time is the number that
//!   must stay within 2% of an uninstrumented build.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{fattree, FatTreeParams};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("netobs_primitives");

    group.bench_function("empty_baseline", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(x)
        })
    });

    netobs::disable();
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _s = netobs::span!("bench_hot");
        })
    });
    group.bench_function("gauge_disabled", |b| {
        b.iter(|| netobs::gauge("bench.g", 1.0))
    });
    group.bench_function("counter_disabled", |b| {
        b.iter(|| netobs::counter("bench.c", 1))
    });

    netobs::enable();
    group.bench_function("span_enabled", |b| {
        b.iter(|| {
            let _s = netobs::span!("bench_hot");
        })
    });
    group.bench_function("counter_enabled", |b| {
        b.iter(|| netobs::counter("bench.c", 1))
    });
    netobs::disable();

    group.finish();
}

/// The instrumented match-set computation, collection off vs. on. The
/// two medians should be within noise of each other; the absolute gap is
/// the full (enabled!) instrumentation cost of the phase.
fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("netobs_workload");
    group.sample_size(10);
    let ft = fattree(FatTreeParams::paper(4));

    netobs::disable();
    group.bench_function("match_sets_disabled", |b| {
        b.iter(|| {
            let mut bdd = Bdd::new();
            MatchSets::compute(&ft.net, &mut bdd)
        })
    });

    netobs::enable();
    group.bench_function("match_sets_enabled", |b| {
        b.iter(|| {
            let mut bdd = Bdd::new();
            MatchSets::compute(&ft.net, &mut bdd)
        })
    });
    netobs::disable();

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_primitives, bench_workload
}
criterion_main!(benches);
