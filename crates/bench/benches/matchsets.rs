//! Ablation for DESIGN.md decision #2: disjoint match sets are computed
//! once per network (paper §5.2, step 1) rather than re-derived per
//! query. This bench quantifies what a single full computation costs at
//! two fat-tree sizes, and what per-rule naive re-derivation would cost.

use criterion::{criterion_group, criterion_main, Criterion};

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{fattree, FatTreeParams};

fn bench_matchsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("matchsets");
    group.sample_size(10);

    for k in [4u32, 8] {
        let ft = fattree(FatTreeParams::paper(k));
        group.bench_function(format!("precompute_all_k{k}"), |b| {
            b.iter(|| {
                let mut bdd = Bdd::new();
                MatchSets::compute(&ft.net, &mut bdd)
            })
        });

        // The naive alternative: for one device, recompute its chain from
        // scratch per rule lookup (quadratic in table length).
        group.bench_function(format!("naive_per_rule_one_device_k{k}"), |b| {
            let (tor, _, _) = ft.tors[0];
            b.iter(|| {
                let mut bdd = Bdd::new();
                let rules = ft.net.device_rules(tor);
                let mut out = Vec::with_capacity(rules.len());
                for i in 0..rules.len() {
                    // Recompute the residual for rule i from scratch.
                    let mut matched = bdd.empty();
                    for r in &rules[..i] {
                        let raw = r.matches.to_bdd(&mut bdd);
                        matched = bdd.or(matched, raw);
                    }
                    let raw = rules[i].matches.to_bdd(&mut bdd);
                    out.push(bdd.diff(raw, matched));
                }
                out
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_matchsets);
criterion_main!(benches);
