//! Phase-2 metric computation micro-benchmarks (Figure 9's local-metric
//! lines at bench scale), including covered-set derivation (Algorithm 1)
//! and the per-metric aggregation passes.

use criterion::{criterion_group, criterion_main, Criterion};

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{fattree, FatTreeParams};
use yardstick::{Aggregator, Analyzer, CoveredSets, Tracker};

use testsuite::{default_route_check, tor_contract, TestContext};

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_metrics");
    group.sample_size(10);

    let ft = fattree(FatTreeParams::paper(8));
    let info = testsuite::NetworkInfo {
        tor_subnets: ft.tors.clone(),
        ..testsuite::NetworkInfo::default()
    };
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);
    let mut ctx = TestContext::new(&ft.net, &ms, &info);
    default_route_check(&mut bdd, &mut ctx, |_| true);
    tor_contract(&mut bdd, &mut ctx);
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let trace = tracker.into_trace();

    group.bench_function("algorithm1_covered_sets_k8", |b| {
        b.iter(|| CoveredSets::compute(&ft.net, &ms, &trace, &mut bdd))
    });

    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);

    group.bench_function("rule_fractional_k8", |b| {
        b.iter(|| analyzer.aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true))
    });

    group.bench_function("rule_weighted_k8", |b| {
        b.iter(|| analyzer.aggregate_rules(&mut bdd, Aggregator::Weighted, |_, _| true))
    });

    group.bench_function("device_fractional_k8", |b| {
        b.iter(|| analyzer.aggregate_devices(&mut bdd, Aggregator::Fractional, |_, _| true))
    });

    group.bench_function("iface_fractional_k8", |b| {
        b.iter(|| analyzer.aggregate_out_ifaces(&mut bdd, Aggregator::Fractional, |_, _| true))
    });

    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
