//! Differential tests against the `oracle` crate: random toy rule tables
//! are embedded into the real header model, and `MatchSets`' symbolic
//! residual sets must agree with the oracle's per-packet first-match
//! winner scan on every packet of the toy space.
//!
//! A 7-bit space (4-bit dst + 2-bit src + 1-bit proto, 128 packets) keeps
//! the full cross product of packets × rules × devices cheap.

use netbdd::Bdd;
use netmodel::topology::DeviceId;
use netmodel::{MatchSets, RuleId};
use oracle::embed::{embed_net, embed_packet};
use oracle::{net_match_sets, ToyIfaceKind, ToyNet, ToyPrefix, ToyRule, ToySpace};
use proptest::prelude::*;

fn space() -> ToySpace {
    ToySpace::new(4, 2, 1)
}

/// One generated rule, before masking raw bits down to prefix lengths:
/// `((dst_len, raw_dst), (has_src, src_len, raw_src), (has_proto, proto),
/// drop)`.
type RuleSpec = ((u32, u32), (bool, u32, u32), (bool, u32), bool);

fn arb_rule() -> impl Strategy<Value = RuleSpec> {
    (
        (0u32..=4, any::<u32>()),
        (any::<bool>(), 0u32..=2, any::<u32>()),
        (any::<bool>(), 0u32..2),
        any::<bool>(),
    )
}

fn prefix(raw: u32, len: u32) -> ToyPrefix {
    ToyPrefix::new(if len == 0 { 0 } else { raw & ((1 << len) - 1) }, len)
}

/// Instantiate the spec: dst is always present (see `oracle::embed` on why
/// mixed `Some`/`None` LPM keys would desync rule order), src and proto
/// are optional, and the action is a drop or a forward out the device's
/// host interface.
fn make_rule(spec: &RuleSpec, host_iface: u32) -> ToyRule {
    let ((dst_len, raw_dst), (has_src, src_len, raw_src), (has_proto, proto), drop) = *spec;
    ToyRule {
        dst: Some(prefix(raw_dst, dst_len)),
        src: has_src.then(|| prefix(raw_src, src_len)),
        proto: has_proto.then_some(proto),
        action: if drop {
            oracle::ToyAction::Drop
        } else {
            oracle::ToyAction::Forward(vec![host_iface])
        },
    }
}

/// Build a toy network with one host interface per device (global iface
/// index == device index) and the given rules, finalized.
fn build_net(tables: &[Vec<RuleSpec>]) -> ToyNet {
    let mut net = ToyNet::new();
    for specs in tables {
        let d = net.add_device();
        let host = net.add_iface(d, ToyIfaceKind::Host);
        for spec in specs {
            net.add_rule(d, make_rule(spec, host));
        }
    }
    net.finalize();
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every packet of the toy space and every device, the symbolic
    /// match sets select exactly the rule the oracle's first-match scan
    /// picks, and the device total is hit iff some rule matches.
    #[test]
    fn match_sets_agree_with_winner_scan(
        tables in prop::collection::vec(prop::collection::vec(arb_rule(), 0..5), 1..4)
    ) {
        let s = space();
        let mut net = build_net(&tables);
        let real = embed_net(&s, &net);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&real, &mut bdd);
        let oracles = net_match_sets(&s, &mut net);
        for (d, oracle_ms) in oracles.iter().enumerate() {
            let dev = DeviceId(d as u32);
            for p in s.packets() {
                let pkt = embed_packet(&s, p);
                let winner = net.table(d).winner(&s, p);
                for i in 0..oracle_ms.len() {
                    let id = RuleId { device: dev, index: i as u32 };
                    prop_assert_eq!(
                        pkt.matches(&bdd, ms.get(id)),
                        winner == Some(i),
                        "device {} rule {} packet {:#x}", d, i, p
                    );
                    prop_assert_eq!(oracle_ms.get(i).contains(p), winner == Some(i));
                }
                prop_assert_eq!(
                    pkt.matches(&bdd, ms.device_total(dev)),
                    winner.is_some()
                );
            }
        }
    }

    /// On destination-only tables the embedding preserves measure, so
    /// shadowing verdicts agree exactly and symbolic probabilities are
    /// proportional to oracle cardinalities with one constant per device.
    #[test]
    fn shadowing_and_measure_agree_on_dst_only_tables(
        tables in prop::collection::vec(
            prop::collection::vec((0u32..=4, any::<u32>(), any::<bool>()), 1..6),
            1..3,
        )
    ) {
        let s = space();
        let dst_only: Vec<Vec<RuleSpec>> = tables
            .iter()
            .map(|specs| {
                specs
                    .iter()
                    .map(|&(len, raw, drop)| ((len, raw), (false, 0, 0), (false, 0), drop))
                    .collect()
            })
            .collect();
        let mut net = build_net(&dst_only);
        let real = embed_net(&s, &net);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&real, &mut bdd);
        let oracles = net_match_sets(&s, &mut net);
        for (d, oracle_ms) in oracles.iter().enumerate() {
            let dev = DeviceId(d as u32);
            let p_total = bdd.probability(ms.device_total(dev));
            for i in 0..oracle_ms.len() {
                let id = RuleId { device: dev, index: i as u32 };
                prop_assert_eq!(ms.is_shadowed(id), oracle_ms.is_shadowed(i));
                if !oracle_ms.device_total().is_empty() {
                    let sym = bdd.probability(ms.get(id)) / p_total;
                    let cnt = oracle_ms.get(i).len() as f64
                        / oracle_ms.device_total().len() as f64;
                    prop_assert!(
                        (sym - cnt).abs() < 1e-9,
                        "device {} rule {}: symbolic {} vs oracle {}", d, i, sym, cnt
                    );
                }
            }
        }
    }
}
