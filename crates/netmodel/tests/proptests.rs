//! Property-based tests for the network model: prefix algebra against
//! arithmetic oracles, header predicates against concrete-packet
//! membership, match-set disjointness on random tables, and region
//! round-trips.

use netbdd::Bdd;
use netmodel::addr::Prefix;
use netmodel::header::{self, Packet};
use netmodel::rule::{RouteClass, Rule};
use netmodel::topology::{IfaceId, IfaceKind, Role, Topology};
use netmodel::{describe_set, Family, MatchSets, Network};
use proptest::prelude::*;

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::v4(addr, len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parse/display round-trips for canonical prefixes.
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_v4_prefix()) {
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    /// `contains` agrees with bit arithmetic.
    #[test]
    fn contains_matches_arithmetic(p in arb_v4_prefix(), addr in any::<u32>()) {
        let inside = p.contains_addr(addr as u128);
        let expected = p.len() == 0
            || (addr >> (32 - p.len() as u32)) == ((p.bits() as u32) >> (32 - p.len() as u32));
        prop_assert_eq!(inside, expected);
    }

    /// Containment is transitive over nested prefixes.
    #[test]
    fn containment_transitive(addr in any::<u32>(), l1 in 0u8..=32, l2 in 0u8..=32, l3 in 0u8..=32) {
        let mut ls = [l1, l2, l3];
        ls.sort_unstable();
        let (a, b, c) =
            (Prefix::v4(addr, ls[0]), Prefix::v4(addr, ls[1]), Prefix::v4(addr, ls[2]));
        prop_assert!(a.contains(&b) && b.contains(&c));
        prop_assert!(a.contains(&c));
    }

    /// The BDD of a prefix agrees with `contains_addr` on arbitrary
    /// concrete packets (the symbolic and arithmetic worlds coincide).
    #[test]
    fn dst_in_matches_contains(p in arb_v4_prefix(), addr in any::<u32>()) {
        let mut bdd = Bdd::new();
        let set = header::dst_in(&mut bdd, &p);
        let pkt = Packet::v4_to(addr);
        prop_assert_eq!(pkt.matches(&bdd, set), p.contains_addr(addr as u128));
    }

    /// Probability of a prefix's packet set equals its exact share of
    /// the modelled space (family bit halves it).
    #[test]
    fn prefix_probability_is_exact(p in arb_v4_prefix()) {
        let mut bdd = Bdd::new();
        let set = header::dst_in(&mut bdd, &p);
        let got = bdd.probability(set);
        let expect = 0.5 * p.fraction_of_family();
        prop_assert!((got - expect).abs() < 1e-15, "{got} vs {expect}");
    }

    /// Random LPM tables always produce pairwise-disjoint match sets
    /// that tile exactly the union of raw match fields.
    #[test]
    fn random_tables_have_disjoint_match_sets(
        prefixes in prop::collection::vec(arb_v4_prefix(), 1..12)
    ) {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "out", IfaceKind::Host);
        let mut n = Network::new(t);
        for p in &prefixes {
            n.add_rule(d, Rule::forward(*p, vec![IfaceId(0)], RouteClass::Other));
        }
        n.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        let sets: Vec<_> = n.device_rule_ids(d).map(|id| ms.get(id)).collect();
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                prop_assert!(!bdd.intersects(sets[i], sets[j]));
            }
        }
        // Tiling: the union of residuals equals the union of raw sets.
        let union_res = bdd.or_all(sets.iter().copied());
        let raws: Vec<_> = prefixes.iter().map(|p| header::dst_in(&mut bdd, p)).collect();
        let union_raw = bdd.or_all(raws);
        prop_assert!(bdd.equal(union_res, union_raw));
        prop_assert!(bdd.equal(union_res, ms.device_total(d)));
    }

    /// Region decomposition is lossless: re-encoding the regions of a
    /// random union of prefixes reproduces the set.
    #[test]
    fn regions_decompose_losslessly(
        prefixes in prop::collection::vec(arb_v4_prefix(), 1..6)
    ) {
        let mut bdd = Bdd::new();
        let mut set = bdd.empty();
        for p in &prefixes {
            let s = header::dst_in(&mut bdd, p);
            set = bdd.or(set, s);
        }
        let (regions, complete) = describe_set(&bdd, set, 10_000);
        prop_assert!(complete);
        // Re-encode each region (family + dst constraint) and union.
        let mut rebuilt = bdd.empty();
        for r in &regions {
            let mut part = match r.family {
                Some(Family::V4) => header::family_is(&mut bdd, Family::V4),
                Some(Family::V6) => header::family_is(&mut bdd, Family::V6),
                None => bdd.full(),
            };
            match &r.dst {
                netmodel::FieldConstraint::Any => {}
                netmodel::FieldConstraint::Prefix { value, len } => {
                    // Region dst values are MSB-aligned in the field the
                    // region was decoded with (32 bits for v4, 128 for v6).
                    let p = match r.family {
                        Some(Family::V6) => Prefix::v6(*value, *len),
                        _ => Prefix::v4(*value as u32, *len),
                    };
                    let s = header::dst_in(&mut bdd, &p);
                    // dst_in re-constrains the family bit; harmless.
                    part = bdd.and(part, s);
                }
                netmodel::FieldConstraint::Masked { .. } => {
                    // Masked dst regions shouldn't arise from prefix unions
                    // of a single family, but if BDD structure produces
                    // them, skip exactness (flagged by the assert below).
                    prop_assert!(false, "unexpected masked region from prefix union");
                }
            }
            rebuilt = bdd.or(rebuilt, part);
        }
        prop_assert!(bdd.equal(rebuilt, set));
    }
}

/// A masked (non-prefix) region renders without panicking and reports
/// its pattern.
#[test]
fn masked_regions_render() {
    let mut bdd = Bdd::new();
    // Constrain the first and third dst bits only: not a prefix.
    let b0 = bdd.var(netmodel::header::DST_START);
    let b2 = bdd.var(netmodel::header::DST_START + 2);
    let v4 = header::family_is(&mut bdd, Family::V4);
    let set = bdd.and_all([v4, b0, b2]);
    let (regions, complete) = describe_set(&bdd, set, 10);
    assert!(complete);
    assert_eq!(regions.len(), 1);
    let text = regions[0].to_string();
    assert!(
        text.contains("pat("),
        "masked constraint must render as a pattern: {text}"
    );
}
