//! Address families and prefixes.
//!
//! The case-study network (§7.1) is dual-stack: point-to-point links carry
//! statically configured IPv4 `/31`s *and* IPv6 `/126`s, and
//! ConnectedRouteCheck inspects both. A [`Prefix`] therefore carries its
//! [`Family`] explicitly.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Address family of a prefix or packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// IPv4 (32-bit addresses).
    V4,
    /// IPv6 (128-bit addresses).
    V6,
}

impl Family {
    /// Address width in bits.
    pub fn width(self) -> u8 {
        match self {
            Family::V4 => 32,
            Family::V6 => 128,
        }
    }
}

/// An IP prefix: family, address bits, and prefix length.
///
/// Address bits are stored left-aligned in a `u128` for IPv6 and in the
/// low 32 bits of `bits` for IPv4 (i.e. a plain `u32` value). Bits beyond
/// the prefix length are kept zeroed so that `Prefix` values are canonical
/// and hashable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    family: Family,
    bits: u128,
    len: u8,
}

impl Prefix {
    /// Construct a canonical IPv4 prefix. Bits beyond `len` are masked off.
    pub fn v4(addr: u32, len: u8) -> Prefix {
        assert!(len <= 32, "IPv4 prefix length out of range");
        let masked = if len == 0 {
            0
        } else {
            (addr >> (32 - len)) << (32 - len)
        };
        Prefix {
            family: Family::V4,
            bits: masked as u128,
            len,
        }
    }

    /// Construct a canonical IPv6 prefix. Bits beyond `len` are masked off.
    pub fn v6(addr: u128, len: u8) -> Prefix {
        assert!(len <= 128, "IPv6 prefix length out of range");
        let masked = if len == 0 {
            0
        } else {
            (addr >> (128 - len)) << (128 - len)
        };
        Prefix {
            family: Family::V6,
            bits: masked,
            len,
        }
    }

    /// The IPv4 default route `0.0.0.0/0`.
    pub fn v4_default() -> Prefix {
        Prefix::v4(0, 0)
    }

    /// The IPv6 default route `::/0`.
    pub fn v6_default() -> Prefix {
        Prefix::v6(0, 0)
    }

    /// A host route (`/32` or `/128`) for one address.
    pub fn host_v4(addr: u32) -> Prefix {
        Prefix::v4(addr, 32)
    }

    /// The prefix's address family.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Address bits, left-aligned for v6, a `u32` value for v4.
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Prefix length in bits — not a container size, so there is no
    /// corresponding `is_empty` (a `/0` is the default route, not empty).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is a zero-length (default-route) prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `self` contains `other` (same family, `other` at least as
    /// long, and agreeing on `self.len` leading bits).
    pub fn contains(&self, other: &Prefix) -> bool {
        if self.family != other.family || self.len > other.len {
            return false;
        }
        if self.len == 0 {
            return true;
        }
        let width = self.family.width() as u32;
        let shift = match self.family {
            Family::V4 => 32 - self.len as u32,
            Family::V6 => 128 - self.len as u32,
        };
        debug_assert!(shift < width || self.len == 0);
        (self.bits >> shift) == (other.bits >> shift)
    }

    /// Whether a concrete address of this family is inside the prefix.
    pub fn contains_addr(&self, addr: u128) -> bool {
        if self.len == 0 {
            return true;
        }
        let shift = match self.family {
            Family::V4 => 32 - self.len as u32,
            Family::V6 => 128 - self.len as u32,
        };
        (self.bits >> shift) == (addr >> shift)
    }

    /// Number of addresses covered, as a fraction of the family's space.
    pub fn fraction_of_family(&self) -> f64 {
        2f64.powi(-(self.len as i32))
    }

    /// The `i`-th address inside the prefix (for sampling test packets).
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in the prefix's free bits.
    pub fn nth_addr(&self, i: u128) -> u128 {
        let free = (self.family.width() - self.len) as u32;
        if free < 128 {
            assert!(i < (1u128 << free), "address index out of prefix");
        }
        self.bits | i
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family {
            Family::V4 => {
                let a = Ipv4Addr::from(self.bits as u32);
                write!(f, "{}/{}", a, self.len)
            }
            Family::V6 => {
                let a = Ipv6Addr::from(self.bits);
                write!(f, "{}/{}", a, self.len)
            }
        }
    }
}

/// Errors from [`Prefix::from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// No `/` separator between address and length.
    MissingSlash,
    /// The address part is not a valid IPv4/IPv6 address.
    BadAddress,
    /// The length part is not a number within the family's width.
    BadLength,
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::MissingSlash => write!(f, "prefix must be written addr/len"),
            ParsePrefixError::BadAddress => write!(f, "unparseable address"),
            ParsePrefixError::BadLength => write!(f, "prefix length out of range"),
        }
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(ParsePrefixError::MissingSlash)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError::BadLength)?;
        if let Ok(a) = addr.parse::<Ipv4Addr>() {
            if len > 32 {
                return Err(ParsePrefixError::BadLength);
            }
            Ok(Prefix::v4(u32::from(a), len))
        } else if let Ok(a) = addr.parse::<Ipv6Addr>() {
            if len > 128 {
                return Err(ParsePrefixError::BadLength);
            }
            Ok(Prefix::v6(u128::from(a), len))
        } else {
            Err(ParsePrefixError::BadAddress)
        }
    }
}

/// Convenience: build an IPv4 address from dotted octets.
pub fn ipv4(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from_be_bytes([a, b, c, d])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_masks_host_bits() {
        let p = Prefix::v4(ipv4(10, 1, 2, 3), 24);
        assert_eq!(p, Prefix::v4(ipv4(10, 1, 2, 0), 24));
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn default_routes() {
        assert!(Prefix::v4_default().is_default());
        assert!(Prefix::v6_default().is_default());
        assert_eq!(Prefix::v4_default().to_string(), "0.0.0.0/0");
        assert_eq!(Prefix::v6_default().to_string(), "::/0");
    }

    #[test]
    fn containment() {
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p24: Prefix = "10.1.2.0/24".parse().unwrap();
        let other: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(p8.contains(&p24));
        assert!(!p24.contains(&p8));
        assert!(!p8.contains(&other));
        assert!(Prefix::v4_default().contains(&p8));
        assert!(p8.contains(&p8));
    }

    #[test]
    fn containment_is_family_aware() {
        let v4 = Prefix::v4_default();
        let v6 = Prefix::v6_default();
        assert!(!v4.contains(&v6));
        assert!(!v6.contains(&v4));
    }

    #[test]
    fn contains_addr() {
        let p: Prefix = "192.168.4.0/30".parse().unwrap();
        assert!(p.contains_addr(ipv4(192, 168, 4, 2) as u128));
        assert!(!p.contains_addr(ipv4(192, 168, 4, 4) as u128));
    }

    #[test]
    fn parse_v6() {
        let p: Prefix = "fd00::/64".parse().unwrap();
        assert_eq!(p.family(), Family::V6);
        assert_eq!(p.len(), 64);
        let p126: Prefix = "fd00::4/126".parse().unwrap();
        assert!(p.contains(&p126));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "10.0.0.0".parse::<Prefix>(),
            Err(ParsePrefixError::MissingSlash)
        );
        assert_eq!(
            "banana/8".parse::<Prefix>(),
            Err(ParsePrefixError::BadAddress)
        );
        assert_eq!(
            "10.0.0.0/33".parse::<Prefix>(),
            Err(ParsePrefixError::BadLength)
        );
        assert_eq!(
            "10.0.0.0/x".parse::<Prefix>(),
            Err(ParsePrefixError::BadLength)
        );
    }

    #[test]
    fn nth_addr_walks_the_prefix() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert_eq!(p.nth_addr(0), ipv4(10, 1, 2, 0) as u128);
        assert_eq!(p.nth_addr(255), ipv4(10, 1, 2, 255) as u128);
    }

    #[test]
    #[should_panic]
    fn nth_addr_out_of_range_panics() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        let _ = p.nth_addr(256);
    }

    #[test]
    fn fraction_of_family() {
        assert_eq!(Prefix::v4_default().fraction_of_family(), 1.0);
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!((p.fraction_of_family() - 1.0 / 256.0).abs() < 1e-15);
    }
}
