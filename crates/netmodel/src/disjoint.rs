//! Disjoint match-set computation — step 1 of the paper's coverage
//! computation (§5.2).
//!
//! The framework's model assumes each device's rules have *disjoint* match
//! sets, so the rule applying to a packet is unambiguous (§4.1). Real
//! tables are ordered with first-match-wins semantics; this module
//! preprocesses them: walking each device's ordered rules, the effective
//! match set of rule `i` is its raw match minus everything matched
//! earlier.
//!
//! The result is **semantics-based** (§3.2): it depends only on rule
//! meaning, never on how a device implements lookup. A test exercising the
//! default route covers exactly the default route's residual match set,
//! whether the device scans linearly or walks a trie.

use std::collections::HashMap;

use netbdd::{Bdd, Ref};

use crate::network::{Network, RuleId};
use crate::rule::MatchFields;
use crate::topology::IfaceId;

/// Memo for compiled `fromRule` match sets, keyed by the *header* part of
/// the match fields (`in_iface` is positional, not header bits, and is
/// excluded — [`MatchFields::to_bdd`] ignores it too).
///
/// FIBs are massively repetitive: every router carries the same default
/// route, the same loopback /32 shapes, the same link /31s. Within one
/// [`MatchSets::compute`] the cache collapses those to a single BDD
/// construction; held across analyses of the same or related networks
/// (via [`MatchSets::compute_cached`]) it also spares re-deriving them
/// per run. Entries are `Ref`s into one manager, so a cache must only
/// ever be used with the manager it was filled from.
#[derive(Debug)]
pub struct MatchSetCache {
    map: HashMap<MatchFields, Ref>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Default bound on distinct cached header matches. Production FIBs reuse
/// a few thousand shapes; 2^16 entries is far above any workload here
/// while bounding worst-case memory on adversarial rule streams.
pub const DEFAULT_MATCH_CACHE_CAPACITY: usize = 1 << 16;

impl Default for MatchSetCache {
    fn default() -> MatchSetCache {
        MatchSetCache::with_capacity(DEFAULT_MATCH_CACHE_CAPACITY)
    }
}

impl MatchSetCache {
    /// A cache with the default capacity.
    pub fn new() -> MatchSetCache {
        MatchSetCache::default()
    }

    /// A cache bounded to at most `capacity` distinct header matches
    /// (minimum 1). When an insert would exceed the bound the whole map
    /// is flushed — full-flush eviction, the same policy the BDD computed
    /// caches use: entries are cheap to rebuild relative to the
    /// bookkeeping an LRU would add to every hit, and a flush preserves
    /// the hot-set within one FIB walk (identical shapes recur close
    /// together). Hit/miss counters are *not* reset by eviction; they
    /// stay monotone over the cache's lifetime so rate math stays valid
    /// across flushes.
    pub fn with_capacity(capacity: usize) -> MatchSetCache {
        MatchSetCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Compile `m` to a BDD, reusing a previous compilation of the same
    /// header match if there is one.
    pub fn to_bdd(&mut self, bdd: &mut Bdd, m: &MatchFields) -> Ref {
        let key = MatchFields {
            in_iface: None,
            ..m.clone()
        };
        if let Some(&r) = self.map.get(&key) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let r = key.to_bdd(bdd);
        if self.map.len() >= self.capacity {
            self.map.clear();
            self.evictions += 1;
        }
        self.map.insert(key, r);
        r
    }

    /// Drop every cached compilation, keeping the counters. Call this
    /// when retiring the paired `Bdd` manager — entries are `Ref`s into
    /// it and must not outlive it.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Distinct header matches compiled so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` since construction (monotone across evictions).
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Full-flush evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// The disjoint match sets of every rule in a network, plus per-device
/// totals. `M[r]` in the paper's notation.
#[derive(Clone, Debug)]
pub struct MatchSets {
    /// `sets[device][rule_index]` — the effective (residual) match set.
    sets: Vec<Vec<Ref>>,
    /// Union of a device's match sets (the packet space the device can act
    /// on at all).
    device_total: Vec<Ref>,
}

impl MatchSets {
    /// Compute disjoint match sets for every device in `net`.
    ///
    /// Rules constrained to an ingress interface (`in_iface`) shadow, and
    /// are shadowed by, only rules with the *same* ingress constraint;
    /// tables mixing iface-specific and unconstrained rules are rejected
    /// because their first-match semantics cannot be expressed in header
    /// space alone.
    pub fn compute(net: &Network, bdd: &mut Bdd) -> MatchSets {
        Self::compute_cached(net, bdd, &mut MatchSetCache::new())
    }

    /// [`MatchSets::compute`] with a caller-held [`MatchSetCache`], so
    /// repeated analyses over the same FIB (or FIBs sharing route shapes)
    /// don't rebuild identical prefix BDDs. The cache must always be
    /// paired with the same `bdd` manager.
    pub fn compute_cached(net: &Network, bdd: &mut Bdd, cache: &mut MatchSetCache) -> MatchSets {
        let _span = netobs::span!("match_sets");
        let ndev = net.topology().device_count();
        let mut sets = Vec::with_capacity(ndev);
        let mut device_total = Vec::with_capacity(ndev);
        for (device, _) in net.topology().devices() {
            let (dev_sets, total) = device_match_sets(net, bdd, cache, device);
            sets.push(dev_sets);
            device_total.push(total);
        }
        if netobs::enabled() {
            let (hits, misses) = cache.counters();
            netobs::gauge("match_cache.entries", cache.len() as f64);
            netobs::gauge("match_cache.hits", hits as f64);
            netobs::gauge("match_cache.misses", misses as f64);
            netobs::gauge("match_cache.evictions", cache.evictions() as f64);
        }
        MatchSets { sets, device_total }
    }

    /// Recompute one device's match sets in place after its table
    /// changed (a rule inserted or withdrawn), leaving every other
    /// device untouched. The incremental complement of
    /// [`MatchSets::compute_cached`]: identical per-device math through
    /// the same [`MatchSetCache`], so the result is bit-identical to a
    /// from-scratch recompute in the same manager.
    pub fn recompute_device(
        &mut self,
        net: &Network,
        bdd: &mut Bdd,
        cache: &mut MatchSetCache,
        device: crate::topology::DeviceId,
    ) {
        let (dev_sets, total) = device_match_sets(net, bdd, cache, device);
        self.sets[device.0 as usize] = dev_sets;
        self.device_total[device.0 as usize] = total;
    }

    /// The disjoint match set of one rule.
    pub fn get(&self, id: RuleId) -> Ref {
        self.sets[id.device.0 as usize][id.index as usize]
    }

    /// Union of all match sets on a device.
    pub fn device_total(&self, device: crate::topology::DeviceId) -> Ref {
        self.device_total[device.0 as usize]
    }

    /// Whether a rule is completely shadowed by earlier rules (its
    /// effective match set is empty). Shadowed rules cannot be exercised
    /// by any packet and are excluded from coverage denominators.
    pub fn is_shadowed(&self, id: RuleId) -> bool {
        self.get(id).is_false()
    }

    /// Append every match-set ref (per-rule residuals and device totals)
    /// to `roots` (GC root registration).
    pub fn collect_refs(&self, roots: &mut Vec<Ref>) {
        for dev in &self.sets {
            roots.extend(dev.iter().copied());
        }
        roots.extend(self.device_total.iter().copied());
    }

    /// Rewrite every held ref through `f` (a GC relocation map).
    pub fn remap_refs(&mut self, f: impl Fn(Ref) -> Ref) {
        for dev in &mut self.sets {
            for r in dev.iter_mut() {
                *r = f(*r);
            }
        }
        for r in &mut self.device_total {
            *r = f(*r);
        }
    }
}

/// One device's first-match chain walk: the shared body of
/// [`MatchSets::compute_cached`] and [`MatchSets::recompute_device`].
fn device_match_sets(
    net: &Network,
    bdd: &mut Bdd,
    cache: &mut MatchSetCache,
    device: crate::topology::DeviceId,
) -> (Vec<Ref>, Ref) {
    let rules = net.device_rules(device);
    let mixed = rules.iter().any(|r| r.matches.in_iface.is_some())
        && rules.iter().any(|r| r.matches.in_iface.is_none());
    assert!(
        !mixed,
        "device {:?}: tables mixing ingress-constrained and unconstrained rules \
         are not supported",
        device
    );
    // Independent first-match chains per ingress scope.
    let mut matched_by_scope: HashMap<Option<IfaceId>, Ref> = HashMap::new();
    let mut dev_sets = Vec::with_capacity(rules.len());
    let mut total = bdd.empty();
    for rule in rules {
        let scope = rule.matches.in_iface;
        let matched = matched_by_scope.entry(scope).or_insert_with(|| Ref::FALSE);
        let raw = cache.to_bdd(bdd, &rule.matches);
        let effective = bdd.diff(raw, *matched);
        *matched = bdd.or(*matched, raw);
        total = bdd.or(total, effective);
        dev_sets.push(effective);
    }
    (dev_sets, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ipv4, Prefix};
    use crate::header::Packet;
    use crate::rule::{Action, MatchFields, RouteClass, Rule};
    use crate::topology::{Role, Topology};

    fn one_device_net(rules: Vec<Rule>) -> Network {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        t.add_iface(d, "out", crate::topology::IfaceKind::Host);
        let mut n = Network::new(t);
        for r in rules {
            n.add_rule(d, r);
        }
        n.finalize();
        n
    }

    fn fwd(prefix: &str) -> Rule {
        Rule::forward(prefix.parse().unwrap(), vec![IfaceId(0)], RouteClass::Other)
    }

    #[test]
    fn default_route_excludes_more_specifics() {
        let mut bdd = Bdd::new();
        let net = one_device_net(vec![
            fwd("10.0.0.0/8"),
            Rule::forward(
                Prefix::v4_default(),
                vec![IfaceId(0)],
                RouteClass::StaticDefault,
            ),
        ]);
        let ms = MatchSets::compute(&net, &mut bdd);
        let d = net.topology().device_by_name("r").unwrap();
        let specific = ms.get(RuleId {
            device: d,
            index: 0,
        });
        let default = ms.get(RuleId {
            device: d,
            index: 1,
        });
        assert!(!bdd.intersects(specific, default));
        // A packet in 10/8 belongs to the specific rule, not the default.
        let p = Packet::v4_to(ipv4(10, 9, 9, 9));
        assert!(p.matches(&bdd, specific));
        assert!(!p.matches(&bdd, default));
        // A packet outside 10/8 hits the default.
        let q = Packet::v4_to(ipv4(11, 0, 0, 1));
        assert!(q.matches(&bdd, default));
    }

    #[test]
    fn match_sets_are_pairwise_disjoint_and_tile_the_total() {
        let mut bdd = Bdd::new();
        let net = one_device_net(vec![
            fwd("10.0.0.0/8"),
            fwd("10.1.0.0/16"),
            fwd("10.1.2.0/24"),
            Rule::forward(
                Prefix::v4_default(),
                vec![IfaceId(0)],
                RouteClass::StaticDefault,
            ),
        ]);
        let ms = MatchSets::compute(&net, &mut bdd);
        let d = net.topology().device_by_name("r").unwrap();
        let all: Vec<Ref> = net.device_rule_ids(d).map(|id| ms.get(id)).collect();
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert!(!bdd.intersects(all[i], all[j]), "rules {i} and {j} overlap");
            }
        }
        let union = bdd.or_all(all);
        assert!(bdd.equal(union, ms.device_total(d)));
        // The default route makes the device total the full v4 plane ∪ ...
        // here: everything, since default matches both families? No — the
        // v4 default constrains family; actually Prefix::v4_default() is
        // family-tagged, so the total is exactly the v4 plane.
        let v4 = crate::header::family_is(&mut bdd, crate::addr::Family::V4);
        assert!(bdd.equal(ms.device_total(d), v4));
    }

    #[test]
    fn fully_shadowed_rule_is_detected() {
        let mut bdd = Bdd::new();
        // /24 inserted twice: the second instance is fully shadowed.
        let net = one_device_net(vec![fwd("10.1.2.0/24"), fwd("10.1.2.0/24")]);
        let ms = MatchSets::compute(&net, &mut bdd);
        let d = net.topology().device_by_name("r").unwrap();
        assert!(!ms.is_shadowed(RuleId {
            device: d,
            index: 0
        }));
        assert!(ms.is_shadowed(RuleId {
            device: d,
            index: 1
        }));
    }

    #[test]
    fn implementation_independence() {
        // The same semantic table expressed in two different orders (LPM
        // sorts them identically) yields identical match sets — the
        // "semantics-based" property of §3.2.
        let mut bdd = Bdd::new();
        let net1 = one_device_net(vec![fwd("10.0.0.0/8"), fwd("10.1.0.0/16")]);
        let net2 = one_device_net(vec![fwd("10.1.0.0/16"), fwd("10.0.0.0/8")]);
        let ms1 = MatchSets::compute(&net1, &mut bdd);
        let ms2 = MatchSets::compute(&net2, &mut bdd);
        let d = net1.topology().device_by_name("r").unwrap();
        // After LPM finalization both tables order /16 before /8.
        for idx in 0..2u32 {
            assert_eq!(
                ms1.get(RuleId {
                    device: d,
                    index: idx
                }),
                ms2.get(RuleId {
                    device: d,
                    index: idx
                })
            );
        }
    }

    #[test]
    fn ingress_scopes_shadow_independently() {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        let i0 = t.add_iface(d, "in0", crate::topology::IfaceKind::Host);
        let i1 = t.add_iface(d, "in1", crate::topology::IfaceKind::Host);
        let mut n = Network::new(t);
        let mk = |iface| Rule {
            matches: MatchFields {
                dst: Some("10.0.0.0/8".parse().unwrap()),
                in_iface: Some(iface),
                ..MatchFields::default()
            },
            action: Action::Drop,
            class: RouteClass::Other,
        };
        n.add_rule(d, mk(i0));
        n.add_rule(d, mk(i1));
        n.finalize();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&n, &mut bdd);
        // Different scopes: neither shadows the other.
        assert!(!ms.is_shadowed(RuleId {
            device: d,
            index: 0
        }));
        assert!(!ms.is_shadowed(RuleId {
            device: d,
            index: 1
        }));
    }

    #[test]
    fn cache_collapses_repeated_matches_within_one_fib() {
        let mut bdd = Bdd::new();
        // The same /24 appears three times (twice shadowed): only one
        // compilation should happen for it.
        let net = one_device_net(vec![
            fwd("10.1.2.0/24"),
            fwd("10.1.2.0/24"),
            fwd("10.1.2.0/24"),
            fwd("10.0.0.0/8"),
        ]);
        let mut cache = MatchSetCache::new();
        let _ = MatchSets::compute_cached(&net, &mut bdd, &mut cache);
        assert_eq!(cache.len(), 2); // two distinct header matches
        assert_eq!(cache.counters(), (2, 2));
    }

    #[test]
    fn persistent_cache_makes_recomputation_free_and_identical() {
        let mut bdd = Bdd::new();
        let net = one_device_net(vec![
            fwd("10.0.0.0/8"),
            fwd("10.1.0.0/16"),
            Rule::forward(
                Prefix::v4_default(),
                vec![IfaceId(0)],
                RouteClass::StaticDefault,
            ),
        ]);
        let mut cache = MatchSetCache::new();
        let ms1 = MatchSets::compute_cached(&net, &mut bdd, &mut cache);
        let (_, misses_after_first) = cache.counters();
        let ms2 = MatchSets::compute_cached(&net, &mut bdd, &mut cache);
        let (_, misses_after_second) = cache.counters();
        // Second analysis compiled nothing new...
        assert_eq!(misses_after_first, misses_after_second);
        // ...and produced bit-identical match sets.
        let d = net.topology().device_by_name("r").unwrap();
        for id in net.device_rule_ids(d) {
            assert_eq!(ms1.get(id), ms2.get(id));
        }
        assert_eq!(ms1.device_total(d), ms2.device_total(d));
    }

    #[test]
    fn cache_key_ignores_ingress_interface() {
        let mut bdd = Bdd::new();
        let mut cache = MatchSetCache::new();
        let base = MatchFields::dst_prefix("10.0.0.0/8".parse().unwrap());
        let scoped = MatchFields {
            in_iface: Some(IfaceId(3)),
            ..base.clone()
        };
        let a = cache.to_bdd(&mut bdd, &base);
        let b = cache.to_bdd(&mut bdd, &scoped);
        assert_eq!(a, b); // same header bits, one cache entry
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn bounded_cache_flushes_at_capacity_and_counters_stay_monotone() {
        let mut bdd = Bdd::new();
        let mut cache = MatchSetCache::with_capacity(4);
        assert_eq!(cache.capacity(), 4);
        // 10 distinct /32s: every insert past the 4th triggers a flush
        // cycle, but identical lookups afterwards still answer correctly.
        let prefixes: Vec<Prefix> = (0..10u8)
            .map(|i| format!("10.0.0.{i}/32").parse().unwrap())
            .collect();
        let mut first: Vec<Ref> = Vec::new();
        for p in &prefixes {
            first.push(cache.to_bdd(&mut bdd, &MatchFields::dst_prefix(*p)));
        }
        assert!(cache.len() <= 4, "bound respected: {} entries", cache.len());
        assert!(cache.evictions() >= 1, "flush must have happened");
        let (h1, m1) = cache.counters();
        assert_eq!(m1, 10); // all distinct: 10 misses, 0 hits
        assert_eq!(h1, 0);
        // Re-resolving yields bit-identical Refs (to_bdd is deterministic
        // in one manager) and never decreases the counters.
        for (p, &r) in prefixes.iter().zip(&first) {
            assert_eq!(cache.to_bdd(&mut bdd, &MatchFields::dst_prefix(*p)), r);
        }
        let (h2, m2) = cache.counters();
        assert!(h2 + m2 == 20 && h2 >= h1 && m2 >= m1, "monotone: {h2}/{m2}");
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut bdd = Bdd::new();
        let mut cache = MatchSetCache::new();
        let m = MatchFields::dst_prefix("10.0.0.0/8".parse().unwrap());
        let _ = cache.to_bdd(&mut bdd, &m);
        let _ = cache.to_bdd(&mut bdd, &m);
        assert_eq!(cache.counters(), (1, 1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.counters(), (1, 1));
        let _ = cache.to_bdd(&mut bdd, &m);
        assert_eq!(cache.counters(), (1, 2));
    }

    #[test]
    fn recompute_device_matches_batch_after_delta() {
        let mut bdd = Bdd::new();
        let mut net = one_device_net(vec![
            fwd("10.0.0.0/8"),
            Rule::forward(
                Prefix::v4_default(),
                vec![IfaceId(0)],
                RouteClass::StaticDefault,
            ),
        ]);
        let mut cache = MatchSetCache::new();
        let mut ms = MatchSets::compute_cached(&net, &mut bdd, &mut cache);
        let d = net.topology().device_by_name("r").unwrap();
        // Insert a /16, recompute only the device, compare to batch.
        net.insert_rule(d, fwd("10.1.0.0/16"));
        ms.recompute_device(&net, &mut bdd, &mut cache, d);
        let batch = MatchSets::compute_cached(&net, &mut bdd, &mut cache);
        for id in net.device_rule_ids(d) {
            assert_eq!(ms.get(id), batch.get(id), "rule {id:?} diverged");
        }
        assert_eq!(ms.device_total(d), batch.device_total(d));
        // Withdraw it again (it sorted to index 0, ahead of the /8):
        // back to the original sets, bit-identical.
        let withdrawn = net.withdraw_rule(crate::RuleId {
            device: d,
            index: 0,
        });
        assert_eq!(withdrawn.matches.dst.unwrap().len(), 16);
        ms.recompute_device(&net, &mut bdd, &mut cache, d);
        let batch2 = MatchSets::compute_cached(&net, &mut bdd, &mut cache);
        for id in net.device_rule_ids(d) {
            assert_eq!(ms.get(id), batch2.get(id));
        }
    }

    #[test]
    #[should_panic]
    fn mixed_ingress_tables_are_rejected() {
        let mut t = Topology::new();
        let d = t.add_device("r", Role::Tor);
        let i0 = t.add_iface(d, "in0", crate::topology::IfaceKind::Host);
        let mut n = Network::new(t);
        n.add_rule(
            d,
            Rule {
                matches: MatchFields {
                    in_iface: Some(i0),
                    ..MatchFields::default()
                },
                action: Action::Drop,
                class: RouteClass::Other,
            },
        );
        n.add_rule(d, Rule::null_route(Prefix::v4_default(), RouteClass::Other));
        n.finalize();
        let mut bdd = Bdd::new();
        let _ = MatchSets::compute(&n, &mut bdd);
    }
}
