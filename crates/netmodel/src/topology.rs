//! Devices, interfaces, and links: the `(V, I, E)` part of the network
//! 4-tuple.
//!
//! Interfaces are globally indexed; a link is a pair of interfaces that
//! point at each other. Host-facing and WAN-facing edges are modelled as
//! interfaces with no peer but a distinguishing [`IfaceKind`], which is
//! how the path-universe exploration (§5.2) knows where packets enter and
//! leave the network.

use std::fmt;

/// Index of a device in its [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// Global index of an interface in its [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u32);

impl fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Debug for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// The role a router plays in the topology, used to group coverage
/// results exactly the way Figure 6 of the paper does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// Top-of-rack (leaf) router.
    Tor,
    /// Aggregation router (pod middle layer).
    Aggregation,
    /// Spine router (datacenter top / fat-tree core).
    Spine,
    /// Regional hub router interconnecting datacenters (§7.1).
    RegionalHub,
    /// Border router towards the WAN (Figure 1's B1/B2).
    Border,
    /// WAN/backbone router, outside the datacenter proper.
    Wan,
    /// Anything else.
    Other,
}

impl Role {
    /// Display label matching the paper's figure axes.
    pub fn label(self) -> &'static str {
        match self {
            Role::Tor => "ToR Router",
            Role::Aggregation => "Aggregation Router",
            Role::Spine => "Spine Router",
            Role::RegionalHub => "Regional Hub",
            Role::Border => "Border Router",
            Role::Wan => "WAN Router",
            Role::Other => "Other",
        }
    }
}

/// What an interface attaches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IfaceKind {
    /// Point-to-point link to another router (has a peer).
    P2p,
    /// Host-facing Ethernet interface (packets enter/leave here).
    Host,
    /// External/WAN-facing edge of the modelled network.
    External,
    /// Loopback interface (route origination only; no packets traverse it).
    Loopback,
}

/// One network interface.
#[derive(Clone, Debug)]
pub struct Iface {
    /// The device this interface belongs to.
    pub device: DeviceId,
    /// Interface name (e.g. `to-agg-0-1`, `eth-hosts`).
    pub name: String,
    /// What the interface attaches to.
    pub kind: IfaceKind,
    /// Peer interface for P2p links; `None` otherwise.
    pub peer: Option<IfaceId>,
}

/// One network device.
#[derive(Clone, Debug)]
pub struct Device {
    /// Device name (e.g. `tor-2-3`).
    pub name: String,
    /// Role in the fabric, for role-grouped coverage reports.
    pub role: Role,
    /// Pod / datacenter grouping index, where meaningful.
    pub group: Option<u32>,
    /// The device's interfaces, in creation order.
    pub ifaces: Vec<IfaceId>,
}

/// The physical network: devices, interfaces, links.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    devices: Vec<Device>,
    ifaces: Vec<Iface>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a device with no interfaces yet.
    pub fn add_device(&mut self, name: impl Into<String>, role: Role) -> DeviceId {
        self.add_device_in_group(name, role, None)
    }

    /// Add a device tagged with a pod/datacenter group.
    pub fn add_device_in_group(
        &mut self,
        name: impl Into<String>,
        role: Role,
        group: Option<u32>,
    ) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            name: name.into(),
            role,
            group,
            ifaces: Vec::new(),
        });
        id
    }

    /// Add an unconnected interface of the given kind to a device.
    pub fn add_iface(
        &mut self,
        device: DeviceId,
        name: impl Into<String>,
        kind: IfaceKind,
    ) -> IfaceId {
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(Iface {
            device,
            name: name.into(),
            kind,
            peer: None,
        });
        self.devices[device.0 as usize].ifaces.push(id);
        id
    }

    /// Create a point-to-point link between two devices; returns the two
    /// new interfaces `(a_side, b_side)`.
    pub fn add_link(&mut self, a: DeviceId, b: DeviceId) -> (IfaceId, IfaceId) {
        let an = format!("to-{}", self.device(b).name);
        let bn = format!("to-{}", self.device(a).name);
        let ai = self.add_iface(a, an, IfaceKind::P2p);
        let bi = self.add_iface(b, bn, IfaceKind::P2p);
        self.ifaces[ai.0 as usize].peer = Some(bi);
        self.ifaces[bi.0 as usize].peer = Some(ai);
        (ai, bi)
    }

    /// Sever the point-to-point link between two peered interfaces: both
    /// ends become dangling P2p interfaces (the legal "drained" state of
    /// [`Topology::validate`]). The interfaces themselves remain, so
    /// interface ids and device iface lists are unchanged — only
    /// [`Topology::neighbors`]/[`Topology::neighbor_of`] stop reporting
    /// the adjacency. Failure-scenario rebuilds use this to derive a
    /// degraded topology from a healthy one.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are not peers of each other.
    pub fn sever_link(&mut self, a: IfaceId, b: IfaceId) {
        assert_eq!(
            self.ifaces[a.0 as usize].peer,
            Some(b),
            "sever_link: {a:?} is not peered with {b:?}"
        );
        assert_eq!(
            self.ifaces[b.0 as usize].peer,
            Some(a),
            "sever_link: {b:?} is not peered with {a:?}"
        );
        self.ifaces[a.0 as usize].peer = None;
        self.ifaces[b.0 as usize].peer = None;
    }

    /// The device with the given id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// The interface with the given id.
    pub fn iface(&self, id: IfaceId) -> &Iface {
        &self.ifaces[id.0 as usize]
    }

    /// The device on the far side of a P2p interface.
    pub fn neighbor_of(&self, iface: IfaceId) -> Option<DeviceId> {
        self.iface(iface).peer.map(|p| self.iface(p).device)
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of interfaces, across all devices.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    /// All devices, in id order.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i as u32), d))
    }

    /// All interfaces, in global id order.
    pub fn ifaces(&self) -> impl Iterator<Item = (IfaceId, &Iface)> {
        self.ifaces
            .iter()
            .enumerate()
            .map(|(i, f)| (IfaceId(i as u32), f))
    }

    /// Interfaces of one device.
    pub fn device_ifaces(&self, device: DeviceId) -> impl Iterator<Item = (IfaceId, &Iface)> {
        self.devices[device.0 as usize]
            .ifaces
            .iter()
            .map(move |&i| (i, self.iface(i)))
    }

    /// Neighbor devices over P2p links (deduplicated, in interface order).
    pub fn neighbors(&self, device: DeviceId) -> Vec<(IfaceId, DeviceId)> {
        self.device_ifaces(device)
            .filter_map(|(i, f)| f.peer.map(|p| (i, self.iface(p).device)))
            .collect()
    }

    /// Find a device by name (linear scan; for tests and examples).
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.devices()
            .find(|(_, d)| d.name == name)
            .map(|(id, _)| id)
    }

    /// All devices with the given role.
    pub fn devices_with_role(&self, role: Role) -> Vec<DeviceId> {
        self.devices()
            .filter(|(_, d)| d.role == role)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_routers() -> (Topology, DeviceId, DeviceId) {
        let mut t = Topology::new();
        let a = t.add_device("r1", Role::Tor);
        let b = t.add_device("r2", Role::Spine);
        t.add_link(a, b);
        (t, a, b)
    }

    #[test]
    fn links_wire_both_directions() {
        let (t, a, b) = two_routers();
        assert_eq!(t.neighbors(a), vec![(IfaceId(0), b)]);
        assert_eq!(t.neighbors(b), vec![(IfaceId(1), a)]);
        assert_eq!(t.neighbor_of(IfaceId(0)), Some(b));
        assert_eq!(t.neighbor_of(IfaceId(1)), Some(a));
    }

    #[test]
    fn iface_names_follow_peers() {
        let (t, a, _) = two_routers();
        let (iid, iface) = t.device_ifaces(a).next().unwrap();
        assert_eq!(iid, IfaceId(0));
        assert_eq!(iface.name, "to-r2");
        assert_eq!(iface.kind, IfaceKind::P2p);
    }

    #[test]
    fn host_ifaces_have_no_peer() {
        let mut t = Topology::new();
        let a = t.add_device("tor", Role::Tor);
        let h = t.add_iface(a, "eth-hosts", IfaceKind::Host);
        assert_eq!(t.iface(h).peer, None);
        assert_eq!(t.neighbor_of(h), None);
    }

    #[test]
    fn lookup_by_name_and_role() {
        let (t, a, b) = two_routers();
        assert_eq!(t.device_by_name("r1"), Some(a));
        assert_eq!(t.device_by_name("nope"), None);
        assert_eq!(t.devices_with_role(Role::Spine), vec![b]);
        assert!(t.devices_with_role(Role::Wan).is_empty());
    }

    #[test]
    fn counts() {
        let (t, _, _) = two_routers();
        assert_eq!(t.device_count(), 2);
        assert_eq!(t.iface_count(), 2);
    }

    #[test]
    fn groups_are_stored() {
        let mut t = Topology::new();
        let d = t.add_device_in_group("agg-0-1", Role::Aggregation, Some(3));
        assert_eq!(t.device(d).group, Some(3));
    }
}

/// A structural problem found by [`Topology::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// An interface's peer does not point back at it.
    AsymmetricPeer {
        /// The interface whose peer link is one-directional.
        iface: IfaceId,
        /// Where it points.
        peer: IfaceId,
    },
    /// A non-P2p interface has a peer.
    UnexpectedPeer {
        /// The offending interface.
        iface: IfaceId,
    },
    /// A P2p interface links a device to itself.
    SelfLink {
        /// The offending interface.
        iface: IfaceId,
    },
    /// A device's iface list and the interface's device field disagree.
    Misowned {
        /// The offending interface.
        iface: IfaceId,
    },
}

impl Topology {
    /// Check structural invariants: peer symmetry, ownership consistency,
    /// no self-links, peers only on P2p interfaces. Generators uphold
    /// these by construction; hand-built topologies should validate once
    /// before analysis.
    pub fn validate(&self) -> Result<(), Vec<TopologyError>> {
        let mut errors = Vec::new();
        for (id, iface) in self.ifaces() {
            match (iface.kind, iface.peer) {
                (IfaceKind::P2p, Some(peer)) => {
                    let p = self.iface(peer);
                    if p.peer != Some(id) {
                        errors.push(TopologyError::AsymmetricPeer { iface: id, peer });
                    }
                    if p.device == iface.device {
                        errors.push(TopologyError::SelfLink { iface: id });
                    }
                }
                (IfaceKind::P2p, None) => {} // dangling link: legal (drained)
                (_, Some(_)) => errors.push(TopologyError::UnexpectedPeer { iface: id }),
                (_, None) => {}
            }
            if !self.device(iface.device).ifaces.contains(&id) {
                errors.push(TopologyError::Misowned { iface: id });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod validate_tests {
    use super::*;

    #[test]
    fn generated_topologies_validate() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        t.add_link(a, b);
        t.add_iface(a, "hosts", IfaceKind::Host);
        t.add_iface(b, "lo", IfaceKind::Loopback);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn asymmetric_peer_is_caught() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let c = t.add_device("c", Role::Spine);
        let (ab, _) = t.add_link(a, b);
        let (cb, _) = t.add_link(c, b);
        // Corrupt: point a's link at c's interface without reciprocity.
        t.ifaces[ab.0 as usize].peer = Some(cb);
        let errs = t.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, TopologyError::AsymmetricPeer { .. })));
    }

    #[test]
    fn self_link_is_caught() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let (ai, bi) = {
            let i1 = t.add_iface(a, "x", IfaceKind::P2p);
            let i2 = t.add_iface(a, "y", IfaceKind::P2p);
            (i1, i2)
        };
        t.ifaces[ai.0 as usize].peer = Some(bi);
        t.ifaces[bi.0 as usize].peer = Some(ai);
        let errs = t.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, TopologyError::SelfLink { .. })));
    }

    #[test]
    fn peer_on_host_iface_is_caught() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let (ab, _) = t.add_link(a, b);
        let h = t.add_iface(a, "hosts", IfaceKind::Host);
        t.ifaces[h.0 as usize].peer = Some(ab);
        let errs = t.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, TopologyError::UnexpectedPeer { .. })));
    }

    #[test]
    fn dangling_p2p_is_legal() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        t.add_iface(a, "drained", IfaceKind::P2p);
        assert_eq!(t.validate(), Ok(()));
    }
}
