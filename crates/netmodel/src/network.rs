//! The assembled network: `N = (V, I, E, S)`.
//!
//! [`Network`] pairs a [`Topology`] with one forwarding [`Table`] per
//! device and hands out stable, global [`RuleId`]s — the identifiers that
//! coverage traces record (`markRule`) and that every coverage metric is
//! keyed by.

use std::fmt;

use crate::rule::{Rule, Table, TableMode};
use crate::topology::{DeviceId, IfaceId, Topology};

/// Globally unique identifier of a rule: device plus index in the
/// device's (finalized, first-match-ordered) table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId {
    /// Device the rule is installed on.
    pub device: DeviceId,
    /// Index in the device's finalized table order.
    pub index: u32,
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.device.0, self.index)
    }
}

/// The network model: topology plus forwarding state.
#[derive(Clone, Debug)]
pub struct Network {
    topology: Topology,
    /// One table per device, indexed by `DeviceId`.
    state: Vec<Table>,
}

impl Network {
    /// Wrap a topology with empty LPM tables for every device.
    pub fn new(topology: Topology) -> Network {
        let state = (0..topology.device_count())
            .map(|_| Table::new(TableMode::Lpm))
            .collect();
        Network { topology, state }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Add a rule to a device's table.
    pub fn add_rule(&mut self, device: DeviceId, rule: Rule) {
        self.state[device.0 as usize].push(rule);
    }

    /// Replace a device's whole table (used by fault injection and the
    /// mutation engine).
    pub fn set_table(&mut self, device: DeviceId, table: Table) {
        self.state[device.0 as usize] = table;
    }

    /// A device's table, including its ordering mode.
    pub fn table(&self, device: DeviceId) -> &Table {
        &self.state[device.0 as usize]
    }

    /// Finalize every table's ordering. Must be called once after
    /// construction, before rules are enumerated.
    pub fn finalize(&mut self) {
        for t in &mut self.state {
            t.finalize();
        }
    }

    /// The rules of one device, in first-match order (`S[v]` in the
    /// paper's notation).
    pub fn device_rules(&self, device: DeviceId) -> &[Rule] {
        self.state[device.0 as usize].rules_unchecked()
    }

    /// Look up one rule by id.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.device_rules(id.device)[id.index as usize]
    }

    /// Iterate every rule in the network with its global id.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.topology.devices().flat_map(move |(d, _)| {
            self.device_rules(d).iter().enumerate().map(move |(i, r)| {
                (
                    RuleId {
                        device: d,
                        index: i as u32,
                    },
                    r,
                )
            })
        })
    }

    /// Iterate the rule ids of one device.
    pub fn device_rule_ids(&self, device: DeviceId) -> impl Iterator<Item = RuleId> {
        (0..self.device_rules(device).len() as u32).map(move |index| RuleId { device, index })
    }

    /// Total number of rules in the network.
    pub fn rule_count(&self) -> usize {
        (0..self.topology.device_count())
            .map(|d| self.state[d].rules_unchecked().len())
            .sum()
    }

    /// All rules on `device` that forward out of `iface` (the rule set of
    /// the paper's *outgoing interface coverage*).
    pub fn rules_out_iface(&self, iface: IfaceId) -> Vec<RuleId> {
        let device = self.topology.iface(iface).device;
        self.device_rule_ids(device)
            .filter(|id| self.rule(*id).action.out_ifaces().contains(&iface))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix;
    use crate::rule::RouteClass;
    use crate::topology::Role;

    fn tiny_network() -> (Network, DeviceId, DeviceId, IfaceId, IfaceId) {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let (ai, bi) = t.add_link(a, b);
        let mut n = Network::new(t);
        n.add_rule(
            a,
            Rule::forward(Prefix::v4_default(), vec![ai], RouteClass::StaticDefault),
        );
        n.add_rule(
            a,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![ai],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            b,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![bi],
                RouteClass::HostSubnet,
            ),
        );
        n.finalize();
        (n, a, b, ai, bi)
    }

    #[test]
    fn rule_ids_are_global_and_ordered() {
        let (n, a, b, _, _) = tiny_network();
        let ids: Vec<RuleId> = n.rules().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(
            ids[0],
            RuleId {
                device: a,
                index: 0
            }
        );
        assert_eq!(
            ids[2],
            RuleId {
                device: b,
                index: 0
            }
        );
        assert_eq!(n.rule_count(), 3);
    }

    #[test]
    fn lpm_order_puts_default_last() {
        let (n, a, _, _, _) = tiny_network();
        let rules = n.device_rules(a);
        assert_eq!(rules[0].matches.dst.unwrap().len(), 24);
        assert!(rules[1].matches.dst.unwrap().is_default());
    }

    #[test]
    fn rules_out_iface_finds_forwarders() {
        let (n, a, _, ai, bi) = tiny_network();
        let out_a = n.rules_out_iface(ai);
        assert_eq!(out_a.len(), 2);
        assert!(out_a.iter().all(|id| id.device == a));
        assert_eq!(n.rules_out_iface(bi).len(), 1);
    }

    #[test]
    #[should_panic]
    fn unfinalized_enumeration_panics() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let mut n = Network::new(t);
        n.add_rule(a, Rule::null_route(Prefix::v4_default(), RouteClass::Other));
        let _ = n.device_rules(a); // finalize() not called
    }
}
