//! The assembled network: `N = (V, I, E, S)`.
//!
//! [`Network`] pairs a [`Topology`] with one forwarding [`Table`] per
//! device and hands out stable, global [`RuleId`]s — the identifiers that
//! coverage traces record (`markRule`) and that every coverage metric is
//! keyed by.

use std::fmt;

use crate::rule::{Rule, Table, TableMode};
use crate::topology::{DeviceId, IfaceId, Topology};

/// Globally unique identifier of a rule: device plus index in the
/// device's (finalized, first-match-ordered) table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId {
    /// Device the rule is installed on.
    pub device: DeviceId,
    /// Index in the device's finalized table order.
    pub index: u32,
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.device.0, self.index)
    }
}

/// The network model: topology plus forwarding state.
#[derive(Clone, Debug)]
pub struct Network {
    topology: Topology,
    /// One table per device, indexed by `DeviceId`.
    state: Vec<Table>,
}

impl Network {
    /// Wrap a topology with empty LPM tables for every device.
    pub fn new(topology: Topology) -> Network {
        let state = (0..topology.device_count())
            .map(|_| Table::new(TableMode::Lpm))
            .collect();
        Network { topology, state }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Add a rule to a device's table.
    pub fn add_rule(&mut self, device: DeviceId, rule: Rule) {
        self.state[device.0 as usize].push(rule);
    }

    /// Replace a device's whole table (used by fault injection and the
    /// mutation engine).
    pub fn set_table(&mut self, device: DeviceId, table: Table) {
        self.state[device.0 as usize] = table;
    }

    /// A device's table, including its ordering mode.
    pub fn table(&self, device: DeviceId) -> &Table {
        &self.state[device.0 as usize]
    }

    /// Finalize every table's ordering. Must be called once after
    /// construction, before rules are enumerated.
    pub fn finalize(&mut self) {
        for t in &mut self.state {
            t.finalize();
        }
    }

    /// The rules of one device, in first-match order (`S[v]` in the
    /// paper's notation).
    pub fn device_rules(&self, device: DeviceId) -> &[Rule] {
        self.state[device.0 as usize].rules_unchecked()
    }

    /// Look up one rule by id.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.device_rules(id.device)[id.index as usize]
    }

    /// Iterate every rule in the network with its global id.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.topology.devices().flat_map(move |(d, _)| {
            self.device_rules(d).iter().enumerate().map(move |(i, r)| {
                (
                    RuleId {
                        device: d,
                        index: i as u32,
                    },
                    r,
                )
            })
        })
    }

    /// Iterate the rule ids of one device.
    pub fn device_rule_ids(&self, device: DeviceId) -> impl Iterator<Item = RuleId> {
        (0..self.device_rules(device).len() as u32).map(move |index| RuleId { device, index })
    }

    /// Total number of rules in the network.
    pub fn rule_count(&self) -> usize {
        (0..self.topology.device_count())
            .map(|d| self.state[d].rules_unchecked().len())
            .sum()
    }

    /// Insert `rule` on an already-finalized device table, restoring the
    /// table's first-match order, and return the id it landed on.
    /// `RuleId`s are positional: indices of the device's later rules
    /// shift up by one, so callers holding per-rule state for the device
    /// must invalidate it.
    pub fn insert_rule(&mut self, device: DeviceId, rule: Rule) -> RuleId {
        let index = self.state[device.0 as usize].insert_sorted(rule) as u32;
        RuleId { device, index }
    }

    /// Insert `rule` on an already-finalized device table at its
    /// *canonical* batch-compile position (see
    /// [`Table::insert_canonical`]) and return the id it landed on.
    /// Incremental routing uses this so a withdrawn-and-recomputed FIB
    /// entry lands exactly where a from-scratch compile would put it.
    /// Same positional-invalidation obligation as
    /// [`Network::insert_rule`].
    pub fn insert_rule_canonical(&mut self, device: DeviceId, rule: Rule) -> RuleId {
        let index = self.state[device.0 as usize].insert_canonical(rule) as u32;
        RuleId { device, index }
    }

    /// Withdraw the rule `id` from its finalized table, returning it.
    /// Indices of the device's later rules shift down by one; same
    /// invalidation obligation as [`Network::insert_rule`].
    pub fn withdraw_rule(&mut self, id: RuleId) -> Rule {
        self.state[id.device.0 as usize].remove(id.index as usize)
    }

    /// All rules on `device` that forward out of `iface` (the rule set of
    /// the paper's *outgoing interface coverage*).
    pub fn rules_out_iface(&self, iface: IfaceId) -> Vec<RuleId> {
        let device = self.topology.iface(iface).device;
        self.device_rule_ids(device)
            .filter(|id| self.rule(*id).action.out_ifaces().contains(&iface))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix;
    use crate::rule::RouteClass;
    use crate::topology::Role;

    fn tiny_network() -> (Network, DeviceId, DeviceId, IfaceId, IfaceId) {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let (ai, bi) = t.add_link(a, b);
        let mut n = Network::new(t);
        n.add_rule(
            a,
            Rule::forward(Prefix::v4_default(), vec![ai], RouteClass::StaticDefault),
        );
        n.add_rule(
            a,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![ai],
                RouteClass::HostSubnet,
            ),
        );
        n.add_rule(
            b,
            Rule::forward(
                "10.0.0.0/24".parse().unwrap(),
                vec![bi],
                RouteClass::HostSubnet,
            ),
        );
        n.finalize();
        (n, a, b, ai, bi)
    }

    #[test]
    fn rule_ids_are_global_and_ordered() {
        let (n, a, b, _, _) = tiny_network();
        let ids: Vec<RuleId> = n.rules().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(
            ids[0],
            RuleId {
                device: a,
                index: 0
            }
        );
        assert_eq!(
            ids[2],
            RuleId {
                device: b,
                index: 0
            }
        );
        assert_eq!(n.rule_count(), 3);
    }

    #[test]
    fn lpm_order_puts_default_last() {
        let (n, a, _, _, _) = tiny_network();
        let rules = n.device_rules(a);
        assert_eq!(rules[0].matches.dst.unwrap().len(), 24);
        assert!(rules[1].matches.dst.unwrap().is_default());
    }

    #[test]
    fn rules_out_iface_finds_forwarders() {
        let (n, a, _, ai, bi) = tiny_network();
        let out_a = n.rules_out_iface(ai);
        assert_eq!(out_a.len(), 2);
        assert!(out_a.iter().all(|id| id.device == a));
        assert_eq!(n.rules_out_iface(bi).len(), 1);
    }

    #[test]
    fn insert_rule_lands_in_first_match_order() {
        let (mut n, a, _, ai, _) = tiny_network();
        // A /16 slots between the /24 (index 0) and the default (was 1).
        let id = n.insert_rule(
            a,
            Rule::forward("10.0.0.0/16".parse().unwrap(), vec![ai], RouteClass::Other),
        );
        assert_eq!(
            id,
            RuleId {
                device: a,
                index: 1
            }
        );
        let lens: Vec<u8> = n
            .device_rules(a)
            .iter()
            .map(|r| r.matches.dst.unwrap().len())
            .collect();
        assert_eq!(lens, vec![24, 16, 0]);
        // Equal lengths keep insertion order: a second /16 goes after.
        let id2 = n.insert_rule(
            a,
            Rule::forward("10.1.0.0/16".parse().unwrap(), vec![ai], RouteClass::Other),
        );
        assert_eq!(id2.index, 2);
        // The delta order matches a from-scratch finalize of the same rules.
        let mut batch = Table::new(TableMode::Lpm);
        for r in n.device_rules(a) {
            batch.push(r.clone());
        }
        batch.finalize();
        let batch_dsts: Vec<_> = batch
            .rules_unchecked()
            .iter()
            .map(|r| r.matches.dst)
            .collect();
        let delta_dsts: Vec<_> = n.device_rules(a).iter().map(|r| r.matches.dst).collect();
        assert_eq!(batch_dsts, delta_dsts);
    }

    #[test]
    fn withdraw_rule_shifts_later_indices_down() {
        let (mut n, a, _, _, _) = tiny_network();
        assert_eq!(n.device_rules(a).len(), 2);
        let gone = n.withdraw_rule(RuleId {
            device: a,
            index: 0,
        });
        assert_eq!(gone.matches.dst.unwrap().len(), 24);
        assert_eq!(n.device_rules(a).len(), 1);
        assert!(n
            .rule(RuleId {
                device: a,
                index: 0
            })
            .matches
            .dst
            .unwrap()
            .is_default());
    }

    #[test]
    #[should_panic]
    fn unfinalized_enumeration_panics() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let mut n = Network::new(t);
        n.add_rule(a, Rule::null_route(Prefix::v4_default(), RouteClass::Other));
        let _ = n.device_rules(a); // finalize() not called
    }
}
