//! Packet header layout over BDD variables.
//!
//! Packets are finite bit vectors (§1 of the paper highlights that this is
//! what makes quantifying the tested input space tractable). We model a
//! dual-stack 5-tuple header:
//!
//! | field  | variables | width | notes                                   |
//! |--------|-----------|-------|-----------------------------------------|
//! | family | 0         | 1     | 0 = IPv4, 1 = IPv6                      |
//! | dst    | 1..129    | 128   | IPv4 destinations use the first 32 bits |
//! | src    | 129..161  | 32    | IPv4 source (enough for ACL-style rules)|
//! | proto  | 161..169  | 8     | IP protocol number                      |
//! | sport  | 169..185  | 16    | transport source port                   |
//! | dport  | 185..201  | 16    | transport destination port              |
//!
//! In the IPv4 plane (family = 0), destination variables 33..129 are never
//! constrained by any predicate built here, so they cancel out of every
//! coverage ratio: ratios among IPv4 rules are exactly the ratios of real
//! IPv4 address counts. Variable order puts the destination first because
//! forwarding state is overwhelmingly destination-based — this keeps FIB
//! BDDs near-linear.

use netbdd::{Bdd, Cube, Ref};

use crate::addr::{Family, Prefix};

/// Variable index of the address-family bit.
pub const FAMILY_VAR: u32 = 0;
/// First variable of the destination address field.
pub const DST_START: u32 = 1;
/// First variable of the (IPv4) source address field.
pub const SRC_START: u32 = 129;
/// First variable of the IP protocol field.
pub const PROTO_START: u32 = 161;
/// First variable of the transport source port field.
pub const SPORT_START: u32 = 169;
/// First variable of the transport destination port field.
pub const DPORT_START: u32 = 185;
/// Total number of header variables.
pub const NVARS: u32 = 201;

/// A named header field, used by rewrite actions and diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeaderField {
    /// The v4/v6 family discriminator bit.
    Family,
    /// The full 128-bit destination field (IPv6 rewrites).
    Dst,
    /// The 32-bit IPv4 view of the destination field (its top 32 bits).
    Dst4,
    /// The IPv4 source address field.
    Src,
    /// The 8-bit IP protocol field.
    Proto,
    /// The 16-bit transport source port.
    Sport,
    /// The 16-bit transport destination port.
    Dport,
}

impl HeaderField {
    /// The `(start, width)` variable range of the field.
    pub fn var_range(self) -> (u32, u32) {
        match self {
            HeaderField::Family => (FAMILY_VAR, 1),
            HeaderField::Dst => (DST_START, 128),
            HeaderField::Dst4 => (DST_START, 32),
            HeaderField::Src => (SRC_START, 32),
            HeaderField::Proto => (PROTO_START, 8),
            HeaderField::Sport => (SPORT_START, 16),
            HeaderField::Dport => (DPORT_START, 16),
        }
    }
}

/// Predicate: the packet's family bit.
pub fn family_is(bdd: &mut Bdd, family: Family) -> Ref {
    bdd.literal(FAMILY_VAR, family == Family::V6)
}

/// Predicate: destination address inside `prefix` (family-aware).
pub fn dst_in(bdd: &mut Bdd, prefix: &Prefix) -> Ref {
    let fam = family_is(bdd, prefix.family());
    let addr = match prefix.family() {
        Family::V4 => bdd.bits_prefix(DST_START, 32, prefix.bits(), prefix.len() as u32),
        Family::V6 => bdd.bits_prefix(DST_START, 128, prefix.bits(), prefix.len() as u32),
    };
    bdd.and(fam, addr)
}

/// Predicate: source address inside an IPv4 `prefix`.
///
/// # Panics
///
/// Panics on IPv6 prefixes: source matching is only modelled for IPv4
/// (nothing in the paper's networks filters on IPv6 sources).
pub fn src_in(bdd: &mut Bdd, prefix: &Prefix) -> Ref {
    assert_eq!(prefix.family(), Family::V4, "source matching is IPv4-only");
    let fam = family_is(bdd, Family::V4);
    let addr = bdd.bits_prefix(SRC_START, 32, prefix.bits(), prefix.len() as u32);
    bdd.and(fam, addr)
}

/// Predicate: IP protocol equals `proto`.
pub fn proto_is(bdd: &mut Bdd, proto: u8) -> Ref {
    bdd.bits_eq(PROTO_START, 8, proto as u128)
}

/// Predicate: destination port in `lo..=hi`.
pub fn dport_in(bdd: &mut Bdd, lo: u16, hi: u16) -> Ref {
    bdd.int_range(DPORT_START, 16, lo as u128, hi as u128)
}

/// Predicate: source port in `lo..=hi`.
pub fn sport_in(bdd: &mut Bdd, lo: u16, hi: u16) -> Ref {
    bdd.int_range(SPORT_START, 16, lo as u128, hi as u128)
}

/// A concrete packet header — the unit a concrete test (ping, traceroute,
/// Pingmesh) exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Address family of the packet.
    pub family: Family,
    /// Destination address: a `u32` value for IPv4, full 128 bits for IPv6.
    pub dst: u128,
    /// IPv4 source address (0 when unspecified).
    pub src: u32,
    /// IP protocol number (6 = TCP, 17 = UDP, ...).
    pub proto: u8,
    /// Transport source port.
    pub sport: u16,
    /// Transport destination port.
    pub dport: u16,
}

impl Packet {
    /// A minimal IPv4 packet to a destination address; other fields zero.
    pub fn v4_to(dst: u32) -> Packet {
        Packet {
            family: Family::V4,
            dst: dst as u128,
            src: 0,
            proto: 0,
            sport: 0,
            dport: 0,
        }
    }

    /// A minimal IPv6 packet to a destination address.
    pub fn v6_to(dst: u128) -> Packet {
        Packet {
            family: Family::V6,
            dst,
            src: 0,
            proto: 0,
            sport: 0,
            dport: 0,
        }
    }

    /// The singleton packet set `{self}` as a BDD.
    ///
    /// For IPv4 packets the high 96 destination bits are left
    /// unconstrained, mirroring how all IPv4 predicates are built; the
    /// "singleton" is a single point of the modelled IPv4 plane.
    pub fn to_bdd(&self, bdd: &mut Bdd) -> Ref {
        // Built as one cube in a single bottom-up pass: concrete tests
        // (Pingmesh) mark one of these per hop, so this path is hot.
        let dst_width = match self.family {
            Family::V4 => 32,
            Family::V6 => 128,
        };
        let mut lits: Vec<(u32, bool)> =
            Vec::with_capacity(1 + dst_width as usize + 32 + 8 + 16 + 16);
        lits.push((FAMILY_VAR, self.family == Family::V6));
        push_bits(&mut lits, DST_START, dst_width, self.dst);
        push_bits(&mut lits, SRC_START, 32, self.src as u128);
        push_bits(&mut lits, PROTO_START, 8, self.proto as u128);
        push_bits(&mut lits, SPORT_START, 16, self.sport as u128);
        push_bits(&mut lits, DPORT_START, 16, self.dport as u128);
        bdd.cube_of(&lits)
    }

    /// Membership test against a header predicate.
    pub fn matches(&self, bdd: &Bdd, set: Ref) -> bool {
        bdd.eval(set, |v| self.bit(v))
    }

    /// The value of header variable `v` for this packet (unused IPv4
    /// destination bits read as 0).
    pub fn bit(&self, v: u32) -> bool {
        match v {
            FAMILY_VAR => self.family == Family::V6,
            _ if v < SRC_START => {
                let i = v - DST_START; // bit index, MSB first
                match self.family {
                    Family::V4 => i < 32 && (self.dst >> (31 - i)) & 1 == 1,
                    Family::V6 => (self.dst >> (127 - i)) & 1 == 1,
                }
            }
            _ if v < PROTO_START => {
                let i = v - SRC_START;
                (self.src >> (31 - i)) & 1 == 1
            }
            _ if v < SPORT_START => {
                let i = v - PROTO_START;
                (self.proto >> (7 - i)) & 1 == 1
            }
            _ if v < DPORT_START => {
                let i = v - SPORT_START;
                (self.sport >> (15 - i)) & 1 == 1
            }
            _ => {
                let i = v - DPORT_START;
                (self.dport >> (15 - i)) & 1 == 1
            }
        }
    }

    /// Reconstruct a representative packet from a satisfying cube
    /// (unconstrained bits become 0).
    pub fn from_cube(cube: &Cube) -> Packet {
        let family = if cube.get(FAMILY_VAR) == Some(true) {
            Family::V6
        } else {
            Family::V4
        };
        let dst = match family {
            Family::V4 => cube.read_bits(DST_START, 32),
            Family::V6 => cube.read_bits(DST_START, 128),
        };
        Packet {
            family,
            dst,
            src: cube.read_bits(SRC_START, 32) as u32,
            proto: cube.read_bits(PROTO_START, 8) as u8,
            sport: cube.read_bits(SPORT_START, 16) as u16,
            dport: cube.read_bits(DPORT_START, 16) as u16,
        }
    }
}

fn push_bits(lits: &mut Vec<(u32, bool)>, start: u32, width: u32, value: u128) {
    for i in 0..width {
        lits.push((start + i, (value >> (width - 1 - i)) & 1 == 1));
    }
}

impl std::fmt::Display for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.family {
            Family::V4 => write!(f, "v4 dst {}", std::net::Ipv4Addr::from(self.dst as u32))?,
            Family::V6 => write!(f, "v6 dst {}", std::net::Ipv6Addr::from(self.dst))?,
        }
        if self.src != 0 {
            write!(f, " src {}", std::net::Ipv4Addr::from(self.src))?;
        }
        write!(
            f,
            " proto {} sport {} dport {}",
            self.proto, self.sport, self.dport
        )
    }
}

/// A representative packet from a non-empty set, or `None` if empty.
pub fn sample_packet(bdd: &Bdd, set: Ref) -> Option<Packet> {
    bdd.some_cube(set).map(|c| Packet::from_cube(&c))
}

/// [`sample_packet`] with the free branch choices steered by `prefer_hi`.
///
/// The walk only consults `prefer_hi` where both children of a node stay
/// satisfiable, so the result is always a member of `set`. Callers that
/// need reproducible, iteration-order-independent witnesses (gap reports,
/// coverage-guided generation) pass a per-rule seeded predicate here; the
/// policy of *which* seed lives with them, this is just the mechanism.
pub fn sample_packet_with(
    bdd: &Bdd,
    set: Ref,
    prefer_hi: impl FnMut(u32) -> bool,
) -> Option<Packet> {
    bdd.some_cube_with(set, prefer_hi)
        .map(|c| Packet::from_cube(&c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ipv4;

    #[test]
    fn dst_prefix_contains_its_packets() {
        let mut bdd = Bdd::new();
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        let set = dst_in(&mut bdd, &p);
        let inside = Packet::v4_to(ipv4(10, 1, 2, 77));
        let outside = Packet::v4_to(ipv4(10, 1, 3, 77));
        assert!(inside.matches(&bdd, set));
        assert!(!outside.matches(&bdd, set));
    }

    #[test]
    fn family_planes_are_disjoint() {
        let mut bdd = Bdd::new();
        let v4 = dst_in(&mut bdd, &Prefix::v4_default());
        let v6 = dst_in(&mut bdd, &Prefix::v6_default());
        assert!(!bdd.intersects(v4, v6));
        let both = bdd.or(v4, v6);
        assert!(both.is_true());
    }

    #[test]
    fn v4_default_covers_half_the_space() {
        let mut bdd = Bdd::new();
        let v4 = dst_in(&mut bdd, &Prefix::v4_default());
        assert_eq!(bdd.probability(v4), 0.5);
    }

    #[test]
    fn prefix_ratios_are_exact_within_v4() {
        let mut bdd = Bdd::new();
        let p8 = dst_in(&mut bdd, &"10.0.0.0/8".parse().unwrap());
        let p24 = dst_in(&mut bdd, &"10.1.2.0/24".parse().unwrap());
        let ratio = bdd.probability(p24) / bdd.probability(p8);
        assert!((ratio - 2f64.powi(-16)).abs() < 1e-20);
    }

    #[test]
    fn v6_packet_roundtrip() {
        let mut bdd = Bdd::new();
        let p: Prefix = "fd00:1:2::/64".parse().unwrap();
        let set = dst_in(&mut bdd, &p);
        let sample = sample_packet(&bdd, set).unwrap();
        assert_eq!(sample.family, Family::V6);
        assert!(p.contains_addr(sample.dst));
        assert!(sample.matches(&bdd, set));
    }

    #[test]
    fn concrete_packet_is_in_its_own_set() {
        let mut bdd = Bdd::new();
        let pkt = Packet {
            family: Family::V4,
            dst: ipv4(8, 8, 8, 8) as u128,
            src: ipv4(10, 0, 0, 1),
            proto: 6,
            sport: 12345,
            dport: 443,
        };
        let set = pkt.to_bdd(&mut bdd);
        assert!(pkt.matches(&bdd, set));
        let recovered = sample_packet(&bdd, set).unwrap();
        assert_eq!(recovered, pkt);
    }

    #[test]
    fn port_and_proto_predicates() {
        let mut bdd = Bdd::new();
        let telnet = {
            let tcp = proto_is(&mut bdd, 6);
            let p23 = dport_in(&mut bdd, 23, 23);
            bdd.and(tcp, p23)
        };
        let pkt = Packet {
            dport: 23,
            proto: 6,
            ..Packet::v4_to(1)
        };
        assert!(pkt.matches(&bdd, telnet));
        let pkt2 = Packet {
            dport: 24,
            proto: 6,
            ..Packet::v4_to(1)
        };
        assert!(!pkt2.matches(&bdd, telnet));
    }

    #[test]
    fn src_matching() {
        let mut bdd = Bdd::new();
        let set = src_in(&mut bdd, &"192.168.0.0/16".parse().unwrap());
        let inside = Packet {
            src: ipv4(192, 168, 9, 9),
            ..Packet::v4_to(1)
        };
        let outside = Packet {
            src: ipv4(192, 169, 9, 9),
            ..Packet::v4_to(1)
        };
        assert!(inside.matches(&bdd, set));
        assert!(!outside.matches(&bdd, set));
    }

    #[test]
    fn sport_range() {
        let mut bdd = Bdd::new();
        let eph = sport_in(&mut bdd, 32768, 65535);
        let inside = Packet {
            sport: 40000,
            ..Packet::v4_to(1)
        };
        let outside = Packet {
            sport: 80,
            ..Packet::v4_to(1)
        };
        assert!(inside.matches(&bdd, eph));
        assert!(!outside.matches(&bdd, eph));
    }

    #[test]
    fn field_ranges_tile_the_header() {
        let fields = [
            HeaderField::Family,
            HeaderField::Dst,
            HeaderField::Src,
            HeaderField::Proto,
            HeaderField::Sport,
            HeaderField::Dport,
        ];
        let mut end = 0;
        for f in fields {
            let (start, width) = f.var_range();
            assert_eq!(
                start, end,
                "{f:?} must start where the previous field ended"
            );
            end = start + width;
        }
        assert_eq!(end, NVARS);
    }
}
