//! # netmodel — the stateless dataplane model of §4.1
//!
//! The paper models a network as a 4-tuple `N = (V, I, E, S)`: devices,
//! interfaces, links, and forwarding state. Forwarding state is a set of
//! match-action rules per device; rules operate over *located packets* —
//! a header plus the location (device, interface) the packet currently
//! occupies.
//!
//! This crate provides:
//!
//! * [`addr`] — IPv4/IPv6 prefixes with parsing and containment.
//! * [`header`] — the packet header layout mapped onto BDD variables, and
//!   constructors for header predicates (destination prefixes, port
//!   ranges, concrete packets).
//! * [`topology`] — devices, interfaces, links, and roles.
//! * [`rule`] — match-action rules: match fields, forwarding actions
//!   (including ECMP fan-out and header rewrites), and route provenance.
//! * [`network`] — the assembled `N = (V, I, E, S)` with global rule ids.
//! * [`disjoint`] — preprocessing ordered tables into the disjoint match
//!   sets the paper's framework assumes (§5.2, step 1).
//! * [`located`] — located packet sets: per-location BDDs.
//! * [`provenance`] — config-construct identity and per-rule attribution
//!   (the vocabulary of NetCov-style config-level coverage).
//!
//! The model is deliberately *semantics-based* (§3.2): nothing in this
//! crate depends on how a device implements its lookups, only on what the
//! rules mean.

#![deny(missing_docs)]

pub mod addr;
pub mod disjoint;
pub mod header;
pub mod located;
pub mod network;
pub mod provenance;
pub mod region;
pub mod rule;
pub mod topology;

pub use addr::{Family, Prefix};
pub use disjoint::{MatchSetCache, MatchSets};
pub use header::{HeaderField, Packet};
pub use located::{LocatedPacketSet, Location};
pub use network::{Network, RuleId};
pub use provenance::{ConfigDb, Construct};
pub use region::{describe_set, FieldConstraint, Region};
pub use rule::{Action, MatchFields, Rewrite, RouteClass, Rule, Table, TableMode};
pub use topology::{Device, DeviceId, Iface, IfaceId, IfaceKind, Role, Topology};
