//! Match-action rules and forwarding tables: the `S` in `N = (V, I, E, S)`.
//!
//! A rule matches a set of packets and applies an action (§4.1): forward
//! out one or more interfaces (ECMP forwards out *all* of them for
//! analysis purposes), drop, or rewrite a header field and forward. Rules
//! carry their provenance ([`RouteClass`]) because the case study (§7.2)
//! groups untested rules by route class — internal, connected, wide-area —
//! and tests like DefaultRouteCheck inspect specific classes.

use netbdd::{Bdd, Ref};

use crate::addr::Prefix;
use crate::header::{self, HeaderField};
use crate::topology::IfaceId;

/// The match fields of a rule, compiled to a header-space BDD on demand.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct MatchFields {
    /// Destination prefix (LPM key). `None` matches both families fully.
    pub dst: Option<Prefix>,
    /// IPv4 source prefix filter.
    pub src: Option<Prefix>,
    /// Exact IP protocol.
    pub proto: Option<u8>,
    /// Inclusive destination-port range.
    pub dport: Option<(u16, u16)>,
    /// Inclusive source-port range.
    pub sport: Option<(u16, u16)>,
    /// Restrict to packets that arrived on this interface (ACL-in style).
    pub in_iface: Option<IfaceId>,
}

impl MatchFields {
    /// Match on a destination prefix only — the common FIB case.
    pub fn dst_prefix(p: Prefix) -> MatchFields {
        MatchFields {
            dst: Some(p),
            ..MatchFields::default()
        }
    }

    /// Compile the *header* part of the match (everything except
    /// `in_iface`, which is positional, not header bits) to a BDD.
    pub fn to_bdd(&self, bdd: &mut Bdd) -> Ref {
        let mut acc = bdd.full();
        if let Some(p) = &self.dst {
            let f = header::dst_in(bdd, p);
            acc = bdd.and(acc, f);
        }
        if let Some(p) = &self.src {
            let f = header::src_in(bdd, p);
            acc = bdd.and(acc, f);
        }
        if let Some(proto) = self.proto {
            let f = header::proto_is(bdd, proto);
            acc = bdd.and(acc, f);
        }
        if let Some((lo, hi)) = self.dport {
            let f = header::dport_in(bdd, lo, hi);
            acc = bdd.and(acc, f);
        }
        if let Some((lo, hi)) = self.sport {
            let f = header::sport_in(bdd, lo, hi);
            acc = bdd.and(acc, f);
        }
        acc
    }
}

/// A header rewrite applied by a transforming rule: set fields to
/// constants (NAT-style). Destination rewrites take a full field value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Rewrite {
    /// `(field, value)` pairs; each field is overwritten with the value.
    pub set: Vec<(HeaderField, u128)>,
}

impl Rewrite {
    /// Apply the rewrite to a packet set: existentially quantify the
    /// field's variables, then constrain them to the constant.
    pub fn apply(&self, bdd: &mut Bdd, set: Ref) -> Ref {
        let mut acc = set;
        for &(field, value) in &self.set {
            let (start, width) = field.var_range();
            let vars: Vec<u32> = (start..start + width).collect();
            acc = bdd.exists(acc, &vars);
            let eq = bdd.bits_eq(start, width, value);
            acc = bdd.and(acc, eq);
        }
        acc
    }

    /// Pre-image: the packets that the rewrite maps *into* `out`.
    ///
    /// For set-to-constant rewrites this is the cofactor of `out` at the
    /// constant, with the rewritten field left free.
    pub fn preimage(&self, bdd: &mut Bdd, out: Ref) -> Ref {
        let mut acc = out;
        // Apply in reverse order so chained rewrites invert correctly.
        for &(field, value) in self.set.iter().rev() {
            let (start, width) = field.var_range();
            for i in 0..width {
                let bit = (value >> (width - 1 - i)) & 1 == 1;
                acc = bdd.restrict(acc, start + i, bit);
            }
        }
        acc
    }
}

/// What a rule does to the packets it matches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Forward out the given interfaces. More than one interface means
    /// ECMP/multicast fan-out: for analysis, the packet set continues out
    /// all of them.
    Forward(Vec<IfaceId>),
    /// Drop matched packets (null route, ACL deny).
    Drop,
    /// Rewrite header fields, then forward out the given interfaces.
    Rewrite(Rewrite, Vec<IfaceId>),
}

impl Action {
    /// Interfaces this action sends packets out of (empty for drops).
    pub fn out_ifaces(&self) -> &[IfaceId] {
        match self {
            Action::Forward(out) | Action::Rewrite(_, out) => out,
            Action::Drop => &[],
        }
    }

    /// Whether this action drops the packet.
    pub fn is_drop(&self) -> bool {
        matches!(self, Action::Drop)
    }
}

/// Provenance of a forwarding rule. The case study's gap analysis (§7.2)
/// is phrased entirely in terms of these classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RouteClass {
    /// Statically configured default route (the fail-safe of §7.1).
    StaticDefault,
    /// BGP-learned default route.
    BgpDefault,
    /// Route to a ToR's host subnet.
    HostSubnet,
    /// Route to a router loopback.
    Loopback,
    /// Connected route for a point-to-point link (/31 or /126).
    Connected,
    /// Route learned from the wide-area network.
    Wan,
    /// Anything else (ACL entries, test fixtures, ...).
    Other,
}

/// One match-action rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Header fields the rule matches on.
    pub matches: MatchFields,
    /// What happens to matching packets.
    pub action: Action,
    /// Where the rule came from (route class, §7.2).
    pub class: RouteClass,
}

impl Rule {
    /// A destination-prefix forwarding rule.
    pub fn forward(p: Prefix, out: Vec<IfaceId>, class: RouteClass) -> Rule {
        Rule {
            matches: MatchFields::dst_prefix(p),
            action: Action::Forward(out),
            class,
        }
    }

    /// A destination-prefix null route.
    pub fn null_route(p: Prefix, class: RouteClass) -> Rule {
        Rule {
            matches: MatchFields::dst_prefix(p),
            action: Action::Drop,
            class,
        }
    }
}

/// How the rules of a table are ordered for first-match semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableMode {
    /// Longest-prefix match on the destination: rules are conceptually
    /// sorted by descending prefix length (ties broken by insertion
    /// order). The table sorts itself lazily.
    Lpm,
    /// Explicit priority order: first inserted wins.
    Priority,
}

/// An ordered rule table. First match wins; [`crate::disjoint`] turns the
/// ordered view into the disjoint match sets of the paper's model.
#[derive(Clone, Debug)]
pub struct Table {
    mode: TableMode,
    rules: Vec<Rule>,
    sorted: bool,
}

impl Table {
    /// An empty table with the given ordering mode.
    pub fn new(mode: TableMode) -> Table {
        Table {
            mode,
            rules: Vec::new(),
            sorted: true,
        }
    }

    /// The table's ordering mode.
    pub fn mode(&self) -> TableMode {
        self.mode
    }

    /// Append a rule; ordering is re-derived lazily at finalization.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
        self.sorted = false;
    }

    /// Number of rules in the table.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Finalize ordering (sorts LPM tables by descending prefix length,
    /// stably). Called automatically by [`Table::rules`].
    pub fn finalize(&mut self) {
        if self.sorted {
            return;
        }
        if self.mode == TableMode::Lpm {
            // `None` dst (match-everything) sorts last, like a /0.
            self.rules
                .sort_by_key(|r| std::cmp::Reverse(r.matches.dst.map(|p| p.len()).unwrap_or(0)));
        }
        self.sorted = true;
    }

    /// The rules in first-match order.
    pub fn rules(&mut self) -> &[Rule] {
        self.finalize();
        &self.rules
    }

    /// The rules in first-match order, for tables already finalized.
    ///
    /// # Panics
    ///
    /// Panics if rules were pushed since the last [`Table::finalize`].
    pub fn rules_unchecked(&self) -> &[Rule] {
        assert!(self.sorted, "table not finalized");
        &self.rules
    }

    /// Insert a rule into a *finalized* table at its first-match
    /// position and return the index it landed on — the delta
    /// counterpart of push-then-[`Table::finalize`], with the same
    /// resulting order (new LPM rules go after existing rules of equal
    /// prefix length, exactly like the stable sort). Indices of later
    /// rules shift up by one.
    ///
    /// # Panics
    ///
    /// Panics if the table is not finalized.
    pub fn insert_sorted(&mut self, rule: Rule) -> usize {
        assert!(self.sorted, "table not finalized");
        let index = match self.mode {
            TableMode::Lpm => {
                let len = rule.matches.dst.map(|p| p.len()).unwrap_or(0);
                self.rules
                    .partition_point(|r| r.matches.dst.map(|p| p.len()).unwrap_or(0) >= len)
            }
            TableMode::Priority => self.rules.len(),
        };
        self.rules.insert(index, rule);
        index
    }

    /// Insert a rule into a *finalized* LPM table at its *canonical*
    /// position — ordered by `(descending prefix length, prefix)` — and
    /// return the index it landed on. This is the order a from-scratch
    /// RIB compile produces (rules are pushed in ascending prefix order,
    /// then stably sorted by descending length), so a
    /// withdraw-then-reinsert through this method restores the exact
    /// batch table layout, which [`Table::insert_sorted`] — equal
    /// lengths go last — cannot. Priority tables append, like
    /// [`Table::insert_sorted`].
    ///
    /// # Panics
    ///
    /// Panics if the table is not finalized.
    pub fn insert_canonical(&mut self, rule: Rule) -> usize {
        assert!(self.sorted, "table not finalized");
        let key = |r: &Rule| {
            (
                std::cmp::Reverse(r.matches.dst.map(|p| p.len()).unwrap_or(0)),
                r.matches.dst,
            )
        };
        let index = match self.mode {
            TableMode::Lpm => {
                let k = key(&rule);
                self.rules.partition_point(|r| key(r) <= k)
            }
            TableMode::Priority => self.rules.len(),
        };
        self.rules.insert(index, rule);
        index
    }

    /// Remove the rule at `index` from a finalized table, returning it.
    /// Removal preserves first-match order (no re-sort needed); indices
    /// of later rules shift down by one.
    ///
    /// # Panics
    ///
    /// Panics if the table is not finalized or `index` is out of range.
    pub fn remove(&mut self, index: usize) -> Rule {
        assert!(self.sorted, "table not finalized");
        self.rules.remove(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ipv4;
    use crate::header::Packet;

    #[test]
    fn match_fields_compile_conjunctively() {
        let mut bdd = Bdd::new();
        let m = MatchFields {
            dst: Some("10.0.0.0/8".parse().unwrap()),
            proto: Some(6),
            dport: Some((80, 80)),
            ..MatchFields::default()
        };
        let set = m.to_bdd(&mut bdd);
        let hit = Packet {
            proto: 6,
            dport: 80,
            ..Packet::v4_to(ipv4(10, 1, 1, 1))
        };
        let miss_port = Packet {
            proto: 6,
            dport: 81,
            ..Packet::v4_to(ipv4(10, 1, 1, 1))
        };
        let miss_dst = Packet {
            proto: 6,
            dport: 80,
            ..Packet::v4_to(ipv4(11, 1, 1, 1))
        };
        assert!(hit.matches(&bdd, set));
        assert!(!miss_port.matches(&bdd, set));
        assert!(!miss_dst.matches(&bdd, set));
    }

    #[test]
    fn empty_match_is_universal() {
        let mut bdd = Bdd::new();
        let set = MatchFields::default().to_bdd(&mut bdd);
        assert!(set.is_true());
    }

    #[test]
    fn lpm_table_sorts_longest_first() {
        let mut t = Table::new(TableMode::Lpm);
        t.push(Rule::forward(
            Prefix::v4_default(),
            vec![IfaceId(0)],
            RouteClass::StaticDefault,
        ));
        t.push(Rule::forward(
            "10.0.0.0/8".parse().unwrap(),
            vec![IfaceId(1)],
            RouteClass::Wan,
        ));
        t.push(Rule::forward(
            "10.1.0.0/16".parse().unwrap(),
            vec![IfaceId(2)],
            RouteClass::HostSubnet,
        ));
        let lens: Vec<u8> = t
            .rules()
            .iter()
            .map(|r| r.matches.dst.unwrap().len())
            .collect();
        assert_eq!(lens, vec![16, 8, 0]);
    }

    #[test]
    fn priority_table_preserves_insertion_order() {
        let mut t = Table::new(TableMode::Priority);
        t.push(Rule::null_route(
            "10.0.0.0/8".parse().unwrap(),
            RouteClass::Other,
        ));
        t.push(Rule::forward(
            Prefix::v4_default(),
            vec![IfaceId(0)],
            RouteClass::StaticDefault,
        ));
        assert!(t.rules()[0].action.is_drop());
    }

    #[test]
    fn lpm_sort_is_stable_for_equal_lengths() {
        let mut t = Table::new(TableMode::Lpm);
        t.push(Rule::forward(
            "10.0.0.0/24".parse().unwrap(),
            vec![IfaceId(0)],
            RouteClass::Other,
        ));
        t.push(Rule::forward(
            "10.0.1.0/24".parse().unwrap(),
            vec![IfaceId(1)],
            RouteClass::Other,
        ));
        let outs: Vec<IfaceId> = t.rules().iter().map(|r| r.action.out_ifaces()[0]).collect();
        assert_eq!(outs, vec![IfaceId(0), IfaceId(1)]);
    }

    #[test]
    fn rewrite_sets_field_to_constant() {
        let mut bdd = Bdd::new();
        let rw = Rewrite {
            set: vec![(HeaderField::Dport, 8080)],
        };
        let input = header::dport_in(&mut bdd, 80, 80);
        let out = rw.apply(&mut bdd, input);
        let expect = header::dport_in(&mut bdd, 8080, 8080);
        assert!(bdd.equal(out, expect));
    }

    #[test]
    fn rewrite_preimage_inverts_apply() {
        let mut bdd = Bdd::new();
        let rw = Rewrite {
            set: vec![(HeaderField::Dport, 8080)],
        };
        // Image of the full space is dport=8080; its preimage is everything.
        let full = bdd.full();
        let image = rw.apply(&mut bdd, full);
        assert_eq!(rw.preimage(&mut bdd, image), bdd.full());
        // Preimage of a set that excludes the constant is empty.
        let not8080 = {
            let x = header::dport_in(&mut bdd, 8080, 8080);
            bdd.not(x)
        };
        assert!(rw.preimage(&mut bdd, not8080).is_false());
    }

    #[test]
    fn drop_has_no_out_ifaces() {
        assert!(Action::Drop.out_ifaces().is_empty());
        assert!(Action::Drop.is_drop());
        assert!(!Action::Forward(vec![IfaceId(3)]).is_drop());
    }
}
