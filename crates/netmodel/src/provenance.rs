//! Config-construct identity: the vocabulary of config-level coverage.
//!
//! The paper's metrics stop at the dataplane — they grade FIB/ACL rules.
//! The NetCov follow-up attributes each covered rule back through the
//! control plane to the *configuration constructs* that produced it: the
//! origination that injected the prefix into BGP, every eBGP session on
//! the winning/ECMP announcement paths, and the statically configured
//! routes that won the admin-distance merge. This module defines the
//! construct identities ([`Construct`]) and the attribution database
//! ([`ConfigDb`]) the routing layer emits; `yardstick` maps Algorithm-1
//! covered sets through it to report per-construct coverage.
//!
//! Identity is deliberately coarse — a construct names a line of config
//! (one origination statement, one session, one static route), not a
//! control-plane message — so attribution is a pure function of the
//! converged routing state and survives incremental re-convergence
//! unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::addr::Prefix;
use crate::topology::DeviceId;

/// One configuration construct that can contribute forwarding state.
///
/// Sessions are canonicalised with the lower device id first, so the two
/// directions of one eBGP adjacency are a single construct (config-level
/// coverage asks "was this session exercised?", not "in which
/// direction?").
///
/// # Examples
///
/// ```
/// use netmodel::provenance::Construct;
/// use netmodel::topology::DeviceId;
///
/// let s = Construct::session(DeviceId(4), DeviceId(0));
/// assert_eq!(s.wire_id(), "session:d0-d4"); // canonical order
/// assert_eq!(Construct::parse_wire_id("session:d0-d4"), Some(s));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Construct {
    /// A prefix originated into BGP at a device (one `network`/
    /// redistribution statement).
    Origination {
        /// The originating device.
        device: DeviceId,
        /// The originated prefix.
        prefix: Prefix,
    },
    /// One eBGP session (point-to-point adjacency) between two devices,
    /// canonicalised so `a < b`.
    Session {
        /// The lower-id endpoint.
        a: DeviceId,
        /// The higher-id endpoint.
        b: DeviceId,
    },
    /// A statically configured route (including null routes and
    /// connected /31s) on one device.
    Static {
        /// The configured device.
        device: DeviceId,
        /// The configured destination prefix.
        prefix: Prefix,
    },
}

impl Construct {
    /// A session construct with its endpoints canonicalised (`a < b`).
    pub fn session(x: DeviceId, y: DeviceId) -> Construct {
        let (a, b) = if x.0 <= y.0 { (x, y) } else { (y, x) };
        Construct::Session { a, b }
    }

    /// Short kind tag: `orig`, `session`, or `static`.
    pub fn kind(&self) -> &'static str {
        match self {
            Construct::Origination { .. } => "orig",
            Construct::Session { .. } => "session",
            Construct::Static { .. } => "static",
        }
    }

    /// Stable wire identity, e.g. `orig:d3:10.0.1.0/24`,
    /// `session:d0-d4`, `static:d2:0.0.0.0/0`. Round-trips through
    /// [`Construct::parse_wire_id`].
    pub fn wire_id(&self) -> String {
        match self {
            Construct::Origination { device, prefix } => {
                format!("orig:d{}:{prefix}", device.0)
            }
            Construct::Session { a, b } => format!("session:d{}-d{}", a.0, b.0),
            Construct::Static { device, prefix } => {
                format!("static:d{}:{prefix}", device.0)
            }
        }
    }

    /// Parse a [`Construct::wire_id`] back into a construct. Returns
    /// `None` for malformed input (the HTTP layer turns that into a 400,
    /// never a panic).
    pub fn parse_wire_id(s: &str) -> Option<Construct> {
        let (kind, rest) = s.split_once(':')?;
        let parse_dev = |t: &str| -> Option<DeviceId> {
            t.strip_prefix('d')?.parse::<u32>().ok().map(DeviceId)
        };
        match kind {
            "orig" | "static" => {
                let (dev, prefix) = rest.split_once(':')?;
                let device = parse_dev(dev)?;
                let prefix: Prefix = prefix.parse().ok()?;
                Some(match kind {
                    "orig" => Construct::Origination { device, prefix },
                    _ => Construct::Static { device, prefix },
                })
            }
            "session" => {
                let (a, b) = rest.split_once('-')?;
                let (a, b) = (parse_dev(a)?, parse_dev(b)?);
                if a.0 >= b.0 {
                    return None; // wire form is canonical
                }
                Some(Construct::Session { a, b })
            }
            _ => None,
        }
    }
}

impl fmt::Display for Construct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.wire_id())
    }
}

/// The attribution database one converged control plane emits: the live
/// construct universe plus, per installed `(device, prefix)` FIB entry,
/// the set of constructs that contributed to it.
///
/// The universe contains every construct that *could* contribute under
/// the present failure state (live sessions, originations and statics of
/// up devices); the map attributes each entry the control plane actually
/// installed. Liveness overrides (which links/devices are down) are not
/// constructs — they are environment, not configuration — so a database
/// derived incrementally after failures is comparable, entry for entry,
/// with one derived from a from-scratch build of the degraded topology.
///
/// # Examples
///
/// ```
/// use netmodel::provenance::{ConfigDb, Construct};
/// use netmodel::topology::DeviceId;
///
/// let mut db = ConfigDb::default();
/// let prefix = "10.0.1.0/24".parse().unwrap();
/// let orig = Construct::Origination { device: DeviceId(0), prefix };
/// db.constructs.insert(orig);
/// db.map.insert(
///     (DeviceId(1), prefix),
///     [orig, Construct::session(DeviceId(0), DeviceId(1))].into(),
/// );
/// // d1's route to the prefix crossed the d0-d1 session.
/// let via = db.attribution(DeviceId(1), prefix).unwrap();
/// assert!(via.contains(&Construct::session(DeviceId(1), DeviceId(0))));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfigDb {
    /// Every construct live under the present failure state.
    pub constructs: BTreeSet<Construct>,
    /// Per installed `(device, prefix)` entry: the contributing
    /// constructs (never empty for an attributed entry).
    pub map: BTreeMap<(DeviceId, Prefix), BTreeSet<Construct>>,
}

impl ConfigDb {
    /// The constructs attributed to the FIB entry for `prefix` on
    /// `device`, or `None` if the control plane installed no such entry.
    pub fn attribution(&self, device: DeviceId, prefix: Prefix) -> Option<&BTreeSet<Construct>> {
        self.map.get(&(device, prefix))
    }

    /// Number of constructs in the live universe.
    pub fn len(&self) -> usize {
        self.constructs.len()
    }

    /// Whether the universe is empty (an unconfigured network).
    pub fn is_empty(&self) -> bool {
        self.constructs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_canonicalises_endpoint_order() {
        let a = Construct::session(DeviceId(7), DeviceId(2));
        let b = Construct::session(DeviceId(2), DeviceId(7));
        assert_eq!(a, b);
        assert_eq!(a.wire_id(), "session:d2-d7");
    }

    #[test]
    fn wire_ids_round_trip() {
        let p: Prefix = "10.0.1.0/24".parse().unwrap();
        let cases = [
            Construct::Origination {
                device: DeviceId(3),
                prefix: p,
            },
            Construct::session(DeviceId(0), DeviceId(4)),
            Construct::Static {
                device: DeviceId(2),
                prefix: "0.0.0.0/0".parse().unwrap(),
            },
        ];
        for c in cases {
            assert_eq!(Construct::parse_wire_id(&c.wire_id()), Some(c), "{c}");
        }
    }

    #[test]
    fn malformed_wire_ids_are_rejected() {
        for bad in [
            "",
            "orig",
            "orig:d3",
            "orig:3:10.0.0.0/24",
            "session:d4-d0", // non-canonical order
            "session:d1-d1",
            "session:d1",
            "static:d2:not-a-prefix",
            "mystery:d0:10.0.0.0/8",
        ] {
            assert_eq!(Construct::parse_wire_id(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn attribution_lookup() {
        let p: Prefix = "10.0.1.0/24".parse().unwrap();
        let mut db = ConfigDb::default();
        assert!(db.is_empty());
        let orig = Construct::Origination {
            device: DeviceId(0),
            prefix: p,
        };
        db.constructs.insert(orig);
        db.map.insert((DeviceId(1), p), BTreeSet::from([orig]));
        assert_eq!(db.len(), 1);
        assert!(db.attribution(DeviceId(1), p).unwrap().contains(&orig));
        assert!(db.attribution(DeviceId(9), p).is_none());
    }
}
