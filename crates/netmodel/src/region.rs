//! Human-readable descriptions of header-space regions.
//!
//! Coverage analysis ends with a human: an engineer deciding which test
//! to write next. A raw BDD is useless to them; a list like
//! `v4 dst 10.1.2.0/24 proto=6 dport=23` is actionable. [`Region`]
//! renders one disjoint cube of a packet set that way, and
//! [`describe_set`] summarises a whole set as a bounded list of regions.

use std::fmt;

use netbdd::{Bdd, Cube, Ref};

use crate::addr::Family;
use crate::header::{DPORT_START, DST_START, FAMILY_VAR, PROTO_START, SPORT_START, SRC_START};

/// One field's constraint inside a region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldConstraint {
    /// The field is unconstrained.
    Any,
    /// The top `len` bits equal those of `value` (a prefix/CIDR shape).
    Prefix {
        /// Constrained bit values, MSB-aligned within the field.
        value: u128,
        /// Number of leading constrained bits.
        len: u8,
    },
    /// A non-prefix bit pattern: `(mask, value)` over the field's bits,
    /// MSB-aligned — rendered as value/mask.
    Masked {
        /// Which bits are constrained (1 = constrained).
        mask: u128,
        /// Required values of the constrained bits.
        value: u128,
    },
}

impl FieldConstraint {
    fn from_cube(cube: &Cube, start: u32, width: u32) -> FieldConstraint {
        let mut mask: u128 = 0;
        let mut value: u128 = 0;
        for i in 0..width {
            mask <<= 1;
            value <<= 1;
            if let Some(bit) = cube.get(start + i) {
                mask |= 1;
                if bit {
                    value |= 1;
                }
            }
        }
        if mask == 0 {
            return FieldConstraint::Any;
        }
        // Prefix shape: constrained bits are exactly the top `len`.
        let len = mask.leading_zeros() as i32 - (128 - width as i32);
        let top_run = {
            let mut l = 0u32;
            for i in 0..width {
                if (mask >> (width - 1 - i)) & 1 == 1 {
                    l += 1;
                } else {
                    break;
                }
            }
            l
        };
        let _ = len;
        if mask.count_ones() == top_run && top_run > 0 {
            // `value` is MSB-aligned within the field already.
            FieldConstraint::Prefix {
                value,
                len: top_run as u8,
            }
        } else {
            FieldConstraint::Masked { mask, value }
        }
    }

    /// Whether the field is constrained at all.
    pub fn is_any(&self) -> bool {
        matches!(self, FieldConstraint::Any)
    }
}

/// One disjoint region of header space, decoded from a cube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// `None` = both families possible.
    pub family: Option<Family>,
    /// Destination-address constraint.
    pub dst: FieldConstraint,
    /// Source-address constraint.
    pub src: FieldConstraint,
    /// IP-protocol constraint.
    pub proto: FieldConstraint,
    /// Source-port constraint.
    pub sport: FieldConstraint,
    /// Destination-port constraint.
    pub dport: FieldConstraint,
}

impl Region {
    /// Decode a cube (over the standard header layout) into a region.
    pub fn from_cube(cube: &Cube) -> Region {
        let family = cube
            .get(FAMILY_VAR)
            .map(|b| if b { Family::V6 } else { Family::V4 });
        let dst_width = match family {
            Some(Family::V4) => 32,
            _ => 128,
        };
        Region {
            family,
            dst: FieldConstraint::from_cube(cube, DST_START, dst_width),
            src: FieldConstraint::from_cube(cube, SRC_START, 32),
            proto: FieldConstraint::from_cube(cube, PROTO_START, 8),
            sport: FieldConstraint::from_cube(cube, SPORT_START, 16),
            dport: FieldConstraint::from_cube(cube, DPORT_START, 16),
        }
    }
}

fn fmt_addr_prefix(
    f: &mut fmt::Formatter<'_>,
    family: Option<Family>,
    c: &FieldConstraint,
    width: u32,
) -> fmt::Result {
    match c {
        FieldConstraint::Any => write!(f, "*"),
        FieldConstraint::Prefix { value, len } => {
            // `value` is already MSB-aligned within the field.
            let addr = *value;
            let _ = len;
            match family {
                Some(Family::V4) | None if width == 32 => {
                    write!(f, "{}/{}", std::net::Ipv4Addr::from(addr as u32), len)
                }
                _ => write!(f, "{}/{}", std::net::Ipv6Addr::from(addr), len),
            }
        }
        FieldConstraint::Masked { mask, value } => {
            write!(f, "pat({value:x}&{mask:x})")
        }
    }
}

fn fmt_int(f: &mut fmt::Formatter<'_>, c: &FieldConstraint, width: u32) -> fmt::Result {
    match c {
        FieldConstraint::Any => Ok(()),
        FieldConstraint::Prefix { value, len } => {
            if *len as u32 == width {
                write!(f, "={value}")
            } else {
                // A prefix over an integer field is a contiguous range;
                // `value` is already MSB-aligned.
                let lo = *value;
                let hi = lo + ((1u128 << (width - *len as u32)) - 1);
                write!(f, "={lo}..={hi}")
            }
        }
        FieldConstraint::Masked { mask, value } => write!(f, "=pat({value:x}&{mask:x})"),
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family {
            Some(Family::V4) => write!(f, "v4 ")?,
            Some(Family::V6) => write!(f, "v6 ")?,
            None => write!(f, "any ")?,
        }
        write!(f, "dst ")?;
        let width = match self.family {
            Some(Family::V4) => 32,
            _ => 128,
        };
        fmt_addr_prefix(f, self.family, &self.dst, width)?;
        if !self.src.is_any() {
            write!(f, " src ")?;
            fmt_addr_prefix(f, Some(Family::V4), &self.src, 32)?;
        }
        if !self.proto.is_any() {
            write!(f, " proto")?;
            fmt_int(f, &self.proto, 8)?;
        }
        if !self.sport.is_any() {
            write!(f, " sport")?;
            fmt_int(f, &self.sport, 16)?;
        }
        if !self.dport.is_any() {
            write!(f, " dport")?;
            fmt_int(f, &self.dport, 16)?;
        }
        Ok(())
    }
}

/// Decompose a packet set into at most `limit` disjoint regions (plus a
/// flag saying whether the list is complete).
pub fn describe_set(bdd: &Bdd, set: Ref, limit: usize) -> (Vec<Region>, bool) {
    let cubes = bdd.cubes(set, limit + 1);
    let complete = cubes.len() <= limit;
    let regions = cubes
        .into_iter()
        .take(limit)
        .map(|c| Region::from_cube(&c))
        .collect();
    (regions, complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header;
    use crate::Prefix;

    #[test]
    fn prefix_regions_render_as_cidr() {
        let mut bdd = Bdd::new();
        let set = header::dst_in(&mut bdd, &"10.1.2.0/24".parse::<Prefix>().unwrap());
        let (regions, complete) = describe_set(&bdd, set, 10);
        assert!(complete);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].to_string(), "v4 dst 10.1.2.0/24");
    }

    #[test]
    fn port_constraints_render() {
        let mut bdd = Bdd::new();
        let d = header::dst_in(&mut bdd, &"10.0.0.0/8".parse::<Prefix>().unwrap());
        let p = header::proto_is(&mut bdd, 6);
        let t = header::dport_in(&mut bdd, 23, 23);
        let set = bdd.and_all([d, p, t]);
        let (regions, _) = describe_set(&bdd, set, 10);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].to_string(), "v4 dst 10.0.0.0/8 proto=6 dport=23");
    }

    #[test]
    fn v6_regions_render() {
        let mut bdd = Bdd::new();
        let set = header::dst_in(&mut bdd, &"fd00:cafe::/64".parse::<Prefix>().unwrap());
        let (regions, _) = describe_set(&bdd, set, 10);
        assert_eq!(regions[0].to_string(), "v6 dst fd00:cafe::/64");
    }

    #[test]
    fn unions_decompose_into_disjoint_regions() {
        let mut bdd = Bdd::new();
        let a = header::dst_in(&mut bdd, &"10.0.0.0/24".parse::<Prefix>().unwrap());
        let b = header::dst_in(&mut bdd, &"192.168.0.0/16".parse::<Prefix>().unwrap());
        let set = bdd.or(a, b);
        let (regions, complete) = describe_set(&bdd, set, 10);
        assert!(complete);
        let strings: Vec<String> = regions.iter().map(|r| r.to_string()).collect();
        // The exact split depends on BDD structure, but every region is a
        // v4 destination region and their semantics must union back.
        assert!(strings.iter().all(|s| s.starts_with("v4 dst ")));
    }

    #[test]
    fn limit_reports_incompleteness() {
        let mut bdd = Bdd::new();
        // A union of many scattered /32s has many cubes.
        let mut set = bdd.empty();
        for i in 0..20u32 {
            let p = Prefix::v4(crate::addr::ipv4(10, 0, i as u8, 1), 32);
            let s = header::dst_in(&mut bdd, &p);
            set = bdd.or(set, s);
        }
        let (all, complete_all) = describe_set(&bdd, set, 1000);
        assert!(complete_all);
        assert!(
            all.len() >= 2,
            "BDD cube merging left {} regions",
            all.len()
        );
        let (truncated, complete) = describe_set(&bdd, set, 1);
        assert_eq!(truncated.len(), 1);
        assert!(!complete);
    }

    #[test]
    fn port_range_renders_as_range() {
        let mut bdd = Bdd::new();
        // dport in 0..=1023 == a /6 prefix over the 16-bit field.
        let set = header::dport_in(&mut bdd, 0, 1023);
        let (regions, _) = describe_set(&bdd, set, 4);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].to_string(), "any dst * dport=0..=1023");
    }
}
