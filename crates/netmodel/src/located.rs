//! Located packet sets.
//!
//! The paper's rules operate over *located* packets — header bits plus the
//! network location the packet occupies (§4.1). Rather than encoding
//! locations into BDD variables, a [`LocatedPacketSet`] keeps one header
//! BDD per [`Location`]: coverage tracking unions these maps (cheap), and
//! Algorithm 1 intersects per-device slices with rule match sets.

use std::collections::BTreeMap;
use std::fmt;

use netbdd::{Bdd, Ref};

use crate::topology::{DeviceId, IfaceId};

/// A network location: a device, optionally refined with the interface the
/// packet arrived on.
///
/// Tests that inject packets "at a device" (local symbolic checks) use
/// `iface = None`; end-to-end traversals record the ingress interface at
/// every hop, which is what incoming-interface coverage consumes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Location {
    /// The device the packets are at.
    pub device: DeviceId,
    /// Ingress interface, if known.
    pub iface: Option<IfaceId>,
}

impl Location {
    /// A location at a device, ingress unspecified.
    pub fn device(device: DeviceId) -> Location {
        Location {
            device,
            iface: None,
        }
    }

    /// A location at a device on a specific ingress interface.
    pub fn at(device: DeviceId, iface: IfaceId) -> Location {
        Location {
            device,
            iface: Some(iface),
        }
    }
}

impl fmt::Debug for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.iface {
            Some(i) => write!(f, "{:?}@{:?}", self.device, i),
            None => write!(f, "{:?}", self.device),
        }
    }
}

/// A set of located packets: one header-space BDD per location.
///
/// Locations with empty sets are pruned eagerly so that iteration cost
/// tracks the number of *meaningfully* covered locations.
#[derive(Clone, Debug, Default)]
pub struct LocatedPacketSet {
    map: BTreeMap<Location, Ref>,
}

impl LocatedPacketSet {
    /// An empty located set.
    pub fn new() -> LocatedPacketSet {
        LocatedPacketSet::default()
    }

    /// A set holding `packets` at a single location.
    pub fn singleton(loc: Location, packets: Ref) -> LocatedPacketSet {
        let mut s = LocatedPacketSet::new();
        if !packets.is_false() {
            s.map.insert(loc, packets);
        }
        s
    }

    /// Whether no location holds any packets.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of locations with a non-empty packet set.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Union `packets` into the set at `loc`.
    pub fn add(&mut self, bdd: &mut Bdd, loc: Location, packets: Ref) {
        if packets.is_false() {
            return;
        }
        let entry = self.map.entry(loc).or_insert(Ref::FALSE);
        *entry = bdd.or(*entry, packets);
    }

    /// Union another located set into this one.
    pub fn union(&mut self, bdd: &mut Bdd, other: &LocatedPacketSet) {
        for (&loc, &set) in &other.map {
            self.add(bdd, loc, set);
        }
    }

    /// The packets recorded exactly at `loc` (not aggregated across
    /// ingress refinements).
    pub fn at(&self, loc: Location) -> Ref {
        self.map.get(&loc).copied().unwrap_or(Ref::FALSE)
    }

    /// All packets present at a device, regardless of ingress interface.
    pub fn at_device(&self, bdd: &mut Bdd, device: DeviceId) -> Ref {
        let lo = Location {
            device,
            iface: None,
        };
        let hi = Location {
            device,
            iface: Some(IfaceId(u32::MAX)),
        };
        let refs: Vec<Ref> = self.map.range(lo..=hi).map(|(_, &r)| r).collect();
        bdd.or_all(refs)
    }

    /// All packets present at a device that arrived on `iface`
    /// (device-level entries with unknown ingress are *not* included).
    pub fn at_device_iface(&self, device: DeviceId, iface: IfaceId) -> Ref {
        self.at(Location::at(device, iface))
    }

    /// Iterate `(location, packets)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Location, Ref)> + '_ {
        self.map.iter().map(|(&l, &r)| (l, r))
    }

    /// The distinct devices with any recorded packets.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut out: Vec<DeviceId> = self.map.keys().map(|l| l.device).collect();
        out.dedup();
        out
    }

    /// Append every packet-set ref held here to `roots` (GC root
    /// registration).
    pub fn collect_refs(&self, roots: &mut Vec<Ref>) {
        roots.extend(self.map.values().copied());
    }

    /// Rewrite every held ref through `f` (a GC relocation map).
    pub fn remap_refs(&mut self, f: impl Fn(Ref) -> Ref) {
        for r in self.map.values_mut() {
            *r = f(*r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(d: u32) -> Location {
        Location::device(DeviceId(d))
    }

    #[test]
    fn empty_sets_are_pruned() {
        let mut bdd = Bdd::new();
        let mut s = LocatedPacketSet::new();
        s.add(&mut bdd, loc(0), Ref::FALSE);
        assert!(s.is_empty());
        assert_eq!(LocatedPacketSet::singleton(loc(0), Ref::FALSE).len(), 0);
    }

    #[test]
    fn add_unions_at_same_location() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let mut s = LocatedPacketSet::new();
        s.add(&mut bdd, loc(0), a);
        s.add(&mut bdd, loc(0), b);
        let expect = bdd.or(a, b);
        assert_eq!(s.at(loc(0)), expect);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_merges_maps() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let mut s1 = LocatedPacketSet::singleton(loc(0), a);
        let s2 = {
            let mut s = LocatedPacketSet::singleton(loc(0), b);
            s.add(&mut bdd, loc(1), a);
            s
        };
        s1.union(&mut bdd, &s2);
        let expect = bdd.or(a, b);
        assert_eq!(s1.at(loc(0)), expect);
        assert_eq!(s1.at(loc(1)), a);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn at_device_aggregates_ingress_refinements() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let d = DeviceId(5);
        let mut s = LocatedPacketSet::new();
        s.add(&mut bdd, Location::at(d, IfaceId(1)), a);
        s.add(&mut bdd, Location::at(d, IfaceId(2)), b);
        let full = bdd.full();
        s.add(&mut bdd, Location::device(DeviceId(6)), full);
        let got = s.at_device(&mut bdd, d);
        let expect = bdd.or(a, b);
        assert_eq!(got, expect);
    }

    #[test]
    fn at_device_iface_is_exact() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let d = DeviceId(5);
        let mut s = LocatedPacketSet::new();
        s.add(&mut bdd, Location::at(d, IfaceId(1)), a);
        let full = bdd.full();
        s.add(&mut bdd, Location::device(d), full);
        assert_eq!(s.at_device_iface(d, IfaceId(1)), a);
        assert!(s.at_device_iface(d, IfaceId(2)).is_false());
    }

    #[test]
    fn devices_lists_covered_devices() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let mut s = LocatedPacketSet::new();
        s.add(&mut bdd, Location::at(DeviceId(1), IfaceId(0)), a);
        s.add(&mut bdd, Location::device(DeviceId(1)), a);
        s.add(&mut bdd, Location::device(DeviceId(3)), a);
        assert_eq!(s.devices(), vec![DeviceId(1), DeviceId(3)]);
    }
}
