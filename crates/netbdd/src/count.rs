//! Model counting: probabilities and exact satisfying counts.
//!
//! The paper's `count(P)` operation (Figure 5) returns the number of
//! packets in a set. Our located-packet header space is ~200 bits wide, so
//! absolute counts do not fit in machine integers; all of the paper's
//! metrics are ratios of counts, so the primary primitive here is
//! [`Bdd::probability`], the *fraction* of the variable space covered.
//! Probabilities compose exactly under the Shannon expansion regardless of
//! how many variables exist, because skipped variables contribute a factor
//! of 1.

use std::collections::HashMap;

use crate::manager::Bdd;
use crate::node::{Ref, Var};

impl Bdd {
    /// Fraction of all assignments that satisfy `f`, in `[0, 1]`.
    ///
    /// Under the uniform distribution over variable assignments,
    /// `P(node) = (P(lo) + P(hi)) / 2`; this is independent of the total
    /// number of variables, so no domain needs to be declared.
    pub fn probability(&mut self, f: Ref) -> f64 {
        // Work iteratively on an explicit stack to survive deep diagrams
        // (a 200-bit prefix chain is 200 nodes deep; real networks can
        // produce much deeper structures after unions).
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        self.maybe_flush_prob_cache();
        if let Some(&p) = self.prob_cache().get(&f) {
            return p;
        }
        // The memo is keyed on the *tagged* reference and children are
        // expanded with the parent's parity ([`Bdd::expand`]): both
        // polarities of a shared node get their own entry. Computing on
        // regular nodes and finishing with `1 - p` would be cheaper but
        // numerically wrong — a 2⁻¹²⁸ sliver complemented through f64
        // rounds `1 - p` to exactly 1.0, and the sliver vanishes on the
        // way back. Parity expansion reproduces the sum the
        // materialized-complement engine computed, bit for bit.
        let mut stack = vec![f];
        while let Some(&r) = stack.last() {
            if r.is_terminal() || self.prob_cache().contains_key(&r) {
                stack.pop();
                continue;
            }
            let (lo, hi) = self.expand(r);
            let lo_p = self.lookup_prob(lo);
            let hi_p = self.lookup_prob(hi);
            match (lo_p, hi_p) {
                (Some(lp), Some(hp)) => {
                    let p = 0.5 * (lp + hp);
                    self.prob_cache().insert(r, p);
                    stack.pop();
                }
                _ => {
                    if lo_p.is_none() {
                        stack.push(lo);
                    }
                    if hi_p.is_none() {
                        stack.push(hi);
                    }
                }
            }
        }
        self.prob_cache()[&f]
    }

    fn lookup_prob(&mut self, r: Ref) -> Option<f64> {
        if r.is_false() {
            Some(0.0)
        } else if r.is_true() {
            Some(1.0)
        } else {
            self.prob_cache().get(&r).copied()
        }
    }

    /// Exact number of satisfying assignments of `f` over a domain of
    /// `nvars` variables (indices `0..nvars`).
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 127` (the count could overflow `u128`) or if `f`
    /// tests a variable outside the declared domain.
    pub fn sat_count(&self, f: Ref, nvars: u32) -> u128 {
        assert!(nvars <= 127, "sat_count domain too wide; use probability()");
        if f.is_false() {
            return 0;
        }
        if f.is_true() {
            return 1u128 << nvars;
        }
        // Iterative post-order with an explicit stack, like `probability`:
        // deep diagrams (long prefix chains, unions of many rules) would
        // overflow the call stack under naive recursion. memo[r] holds the
        // count over variables `[var(r)..nvars)` for the *tagged* reference
        // (children expanded with parity, as in `probability`); skipped
        // levels between a node and its children scale the child counts,
        // and levels skipped above the root are applied at the end.
        let mut memo: HashMap<Ref, u128> = HashMap::new();
        // Number of variable levels skipped between parent var `v` and
        // child `r` (exclusive of both tested levels).
        let skipped = |r: Ref, v: Var| self.root_var(r).unwrap_or(nvars) - v - 1;
        let lookup = |memo: &HashMap<Ref, u128>, r: Ref| {
            if r.is_false() {
                Some(0)
            } else if r.is_true() {
                Some(1)
            } else {
                memo.get(&r).copied()
            }
        };
        let mut stack = vec![f];
        while let Some(&r) = stack.last() {
            if memo.contains_key(&r) {
                stack.pop();
                continue;
            }
            let var = self.node(r).var;
            assert!(
                var < nvars,
                "sat_count: variable {var} outside domain {nvars}"
            );
            let (nlo, nhi) = self.expand(r);
            let lo = lookup(&memo, nlo);
            let hi = lookup(&memo, nhi);
            match (lo, hi) {
                (Some(lc), Some(hc)) => {
                    let c = (lc << skipped(nlo, var)) + (hc << skipped(nhi, var));
                    memo.insert(r, c);
                    stack.pop();
                }
                _ => {
                    if lo.is_none() {
                        stack.push(nlo);
                    }
                    if hi.is_none() {
                        stack.push(nhi);
                    }
                }
            }
        }
        memo[&f] << self.root_var(f).unwrap_or(nvars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_terminals() {
        let mut bdd = Bdd::new();
        assert_eq!(bdd.probability(Ref::FALSE), 0.0);
        assert_eq!(bdd.probability(Ref::TRUE), 1.0);
    }

    #[test]
    fn probability_single_var_is_half() {
        let mut bdd = Bdd::new();
        let a = bdd.var(17);
        assert_eq!(bdd.probability(a), 0.5);
    }

    #[test]
    fn probability_of_conjunction() {
        let mut bdd = Bdd::new();
        let lits: Vec<_> = (0..8).map(|v| bdd.var(v)).collect();
        let f = bdd.and_all(lits);
        assert!((bdd.probability(f) - 1.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn probability_handles_skipped_levels() {
        let mut bdd = Bdd::new();
        // f = var0 ∧ var100: the diagram skips 99 levels, but probability
        // must still be 1/4.
        let a = bdd.var(0);
        let b = bdd.var(100);
        let f = bdd.and(a, b);
        assert_eq!(bdd.probability(f), 0.25);
    }

    #[test]
    fn sat_count_basic() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.or(a, b);
        assert_eq!(bdd.sat_count(f, 2), 3);
        assert_eq!(bdd.sat_count(f, 3), 6); // one free variable doubles it
        assert_eq!(bdd.sat_count(Ref::TRUE, 10), 1024);
        assert_eq!(bdd.sat_count(Ref::FALSE, 10), 0);
    }

    #[test]
    fn sat_count_with_leading_skips() {
        let mut bdd = Bdd::new();
        let f = bdd.var(3); // vars 0..3 are free
        assert_eq!(bdd.sat_count(f, 4), 8);
    }

    #[test]
    fn sat_count_matches_probability() {
        let mut bdd = Bdd::new();
        let a = bdd.var(1);
        let b = bdd.var(4);
        let c = bdd.var(6);
        let ab = bdd.xor(a, b);
        let f = bdd.or(ab, c);
        let n = 7u32;
        let count = bdd.sat_count(f, n) as f64;
        let p = bdd.probability(f);
        assert!((count / 2f64.powi(n as i32) - p).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn sat_count_rejects_wide_domains() {
        let bdd = Bdd::new();
        let _ = bdd.sat_count(Ref::TRUE, 128);
    }

    #[test]
    #[should_panic]
    fn sat_count_rejects_out_of_domain_vars() {
        let mut bdd = Bdd::new();
        let f = bdd.var(9);
        let _ = bdd.sat_count(f, 5);
    }
}
