//! A minimal Fx-style hasher for the manager's internal tables.
//!
//! BDD operations are dominated by unique-table and computed-cache
//! lookups whose keys are two or three word-sized ids. SipHash (the
//! standard-library default) is overkill for that shape; this is the
//! word-at-a-time multiply-rotate hash used by the Rust compiler's
//! `FxHashMap`, reimplemented here (public-domain algorithm) to keep the
//! crate dependency-free. HashDoS resistance is irrelevant for these
//! internal tables: keys are arena indices, not attacker-controlled
//! data.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over machine words.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path: fold word-sized chunks, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` build-hasher alias used throughout the manager.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by small fixed-size ids.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(1u32, 2u32, 3u32)));
    }

    #[test]
    fn different_keys_usually_differ() {
        let a = hash_of(&(1u32, 2u32, 3u32));
        let b = hash_of(&(3u32, 2u32, 1u32));
        let c = hash_of(&(1u32, 2u32, 4u32));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn byte_path_matches_itself_and_spreads() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            seen.insert(hash_of(&i.to_le_bytes().to_vec()));
        }
        assert!(seen.len() > 990, "hash must spread distinct inputs");
    }

    #[test]
    fn fxhashmap_works_as_a_map() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert((i, i * 2), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7, 14)), Some(&7));
    }
}
