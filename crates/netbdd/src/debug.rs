//! Introspection: Graphviz export and manager statistics.
//!
//! These exist for the humans maintaining the system: `dot` renders a
//! function's diagram for debugging match-set construction, and
//! [`Stats`] quantifies arena/cache growth, which is what you watch when
//! a network analysis starts thrashing.

use std::fmt::Write as _;

use crate::manager::Bdd;
use crate::node::Ref;

/// Per-class counts of the public set operations a manager has served
/// (the operation classes of the paper's Figure 5 workload breakdown).
///
/// These are *call* counts, not exclusive classes: derived operations
/// tick their constituents too (`diff` also ticks `not` and `and`,
/// `forall` ticks `not` twice and `quantify` once).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Unions (`or`, including each pairwise step of `or_all`).
    pub or: u64,
    /// Intersections (`and`, including each pairwise step of `and_all`).
    pub and: u64,
    /// Complements (O(1) tag flips; counted for workload breakdowns).
    pub not: u64,
    /// Set differences.
    pub diff: u64,
    /// Symmetric differences.
    pub xor: u64,
    /// Cofactor restrictions.
    pub restrict: u64,
    /// Variable quantifications (`exists`; `forall` desugars to it).
    pub quantify: u64,
}

impl OpCounts {
    /// Total operations served across all classes.
    pub fn total(&self) -> u64 {
        self.or + self.and + self.not + self.diff + self.xor + self.restrict + self.quantify
    }
}

/// Size and cache-behaviour snapshot of a manager.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Nodes in the arena (including the single shared terminal).
    pub nodes: usize,
    /// Occupied slots in the ITE computed cache.
    pub ite_cache_entries: usize,
    /// Total slots in the ITE computed cache (fixed at manager creation;
    /// occupancy can never exceed it).
    pub ite_cache_capacity: usize,
    /// ITE cache entries overwritten by a colliding insert. A high
    /// eviction-to-lookup ratio means the cache is undersized for the
    /// workload and work is being recomputed.
    pub ite_evictions: u64,
    /// Entries in the probability memo.
    pub prob_cache_entries: usize,
    /// Times the probability memo hit capacity and was flushed.
    pub prob_evictions: u64,
    /// Cumulative unique-table lookups (one per non-trivial `mk`).
    pub unique_lookups: u64,
    /// Lookups that found an existing node (hash-consing dedup).
    pub unique_hits: u64,
    /// Cumulative ITE computed-cache lookups (terminal cases excluded).
    pub ite_lookups: u64,
    /// ITE lookups answered from the cache.
    pub ite_hits: u64,
    /// Public set operations served, by class.
    pub ops: OpCounts,
}

impl Stats {
    /// Fraction of `mk` calls answered by the unique table (0 when no
    /// lookups have happened).
    pub fn unique_hit_rate(&self) -> f64 {
        rate(self.unique_hits, self.unique_lookups)
    }

    /// Fraction of ITE lookups answered from the computed cache.
    pub fn ite_hit_rate(&self) -> f64 {
        rate(self.ite_hits, self.ite_lookups)
    }

    /// Fraction of the ITE cache's slots currently holding an entry.
    pub fn ite_cache_occupancy(&self) -> f64 {
        if self.ite_cache_capacity == 0 {
            0.0
        } else {
            self.ite_cache_entries as f64 / self.ite_cache_capacity as f64
        }
    }
}

fn rate(hits: u64, lookups: u64) -> f64 {
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

impl Bdd {
    /// Current size statistics.
    pub fn stats(&self) -> Stats {
        let (unique_lookups, unique_hits) = self.unique_counters();
        let (ite_entries, ite_capacity, ite_lookups, ite_hits, ite_evictions) =
            self.ite_cache_stats();
        Stats {
            nodes: self.node_count(),
            ite_cache_entries: ite_entries,
            ite_cache_capacity: ite_capacity,
            ite_evictions,
            prob_cache_entries: self.prob_cache_len(),
            prob_evictions: self.prob_evictions(),
            unique_lookups,
            unique_hits,
            ite_lookups,
            ite_hits,
            ops: self.op_counts(),
        }
    }

    /// Graphviz (`dot`) rendering of one function's diagram.
    ///
    /// Complement-edge conventions: there is a single terminal box `1`
    /// (FALSE is a complemented arc into it); dashed edges are low (0)
    /// branches — by the canonical-form invariant these are never
    /// complemented; solid edges are regular high (1) branches; **dotted**
    /// edges are complemented arcs (a complemented high branch, or the
    /// entry arc when the root reference itself is complemented). Reading
    /// rule: crossing a dotted arc negates everything below it.
    pub fn dot(&self, f: Ref, var_name: impl Fn(u32) -> String) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  t [label=\"1\", shape=box];\n");
        // Entry arc so the root's own polarity is visible.
        out.push_str("  e [shape=point];\n");
        let target = |r: Ref| {
            if r.is_terminal() {
                "t".to_string()
            } else {
                format!("n{}", r.index())
            }
        };
        let arc_style = |r: Ref, base: &str| {
            if r.is_complemented() {
                "dotted".to_string()
            } else {
                base.to_string()
            }
        };
        let _ = writeln!(
            out,
            "  e -> {} [style={}];",
            target(f),
            arc_style(f, "solid")
        );
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.regular()];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\", shape=circle];",
                r.index(),
                var_name(n.var)
            );
            for (child, base) in [(n.lo, "dashed"), (n.hi, "solid")] {
                let _ = writeln!(
                    out,
                    "  n{} -> {} [style={}];",
                    r.index(),
                    target(child),
                    arc_style(child, base)
                );
                stack.push(child.regular());
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_growth() {
        let mut bdd = Bdd::new();
        let s0 = bdd.stats();
        assert_eq!(s0.nodes, 1); // the single shared terminal
        let a = bdd.var(0);
        let b = bdd.var(1);
        let _ = bdd.and(a, b);
        let s1 = bdd.stats();
        assert!(s1.nodes > s0.nodes);
        assert!(s1.ite_cache_entries >= 1);
        assert!(s1.ite_cache_entries <= s1.ite_cache_capacity);
        assert!(s1.ite_cache_occupancy() > 0.0);
        bdd.clear_caches();
        let s2 = bdd.stats();
        assert_eq!(s2.ite_cache_entries, 0);
        assert_eq!(s2.nodes, s1.nodes); // arena survives cache clears
        assert_eq!(s2.ite_lookups, s1.ite_lookups); // counters survive too
    }

    #[test]
    fn op_counts_track_operation_classes() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let _ = bdd.and(a, b);
        let _ = bdd.or(a, b);
        let _ = bdd.diff(a, b); // ticks diff + not + and
        let _ = bdd.xor(a, b); // ticks xor + not
        let _ = bdd.restrict(a, 0, true);
        let _ = bdd.exists(a, &[0]); // ticks quantify + the or it desugars to
        let ops = bdd.stats().ops;
        assert_eq!(ops.or, 2);
        assert_eq!(ops.and, 2);
        assert_eq!(ops.not, 2);
        assert_eq!(ops.diff, 1);
        assert_eq!(ops.xor, 1);
        assert_eq!(ops.restrict, 1);
        assert_eq!(ops.quantify, 1);
        assert_eq!(ops.total(), 10);
        // Counters survive cache clears like the lookup counters do.
        bdd.clear_caches();
        assert_eq!(bdd.stats().ops, ops);
    }

    #[test]
    fn dot_renders_reachable_nodes_and_terminal() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let dot = bdd.dot(f, |v| format!("x{v}"));
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("label=\"x0\""));
        assert!(dot.contains("label=\"x1\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=solid"));
        // A conjunction's diagram necessarily carries complement arcs in
        // this representation (FALSE is a complemented terminal arc).
        assert!(dot.contains("style=dotted"));
        assert!(dot.contains("t [label=\"1\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_complement_shares_the_diagram() {
        // ¬f renders the same nodes as f; only the entry arc differs.
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let nf = bdd.not(f);
        let d1 = bdd.dot(f, |v| format!("x{v}"));
        let d2 = bdd.dot(nf, |v| format!("x{v}"));
        let body = |d: &str| {
            d.lines()
                .filter(|l| !l.contains("e ->"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body(&d1), body(&d2));
        assert_ne!(d1, d2, "entry arcs must differ in polarity");
    }

    #[test]
    fn dot_of_terminal_is_minimal() {
        let bdd = Bdd::new();
        let dot = bdd.dot(Ref::TRUE, |v| v.to_string());
        // Header, terminal, entry point, entry arc, closing brace.
        assert_eq!(dot.lines().count(), 6);
        assert!(dot.contains("e -> t [style=solid]"));
        let dot_false = bdd.dot(Ref::FALSE, |v| v.to_string());
        assert!(dot_false.contains("e -> t [style=dotted]"));
    }
}
