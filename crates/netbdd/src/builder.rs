//! Constructors for the structured predicates network analysis needs:
//! fixed bit patterns (addresses), bit prefixes (LPM routes), and integer
//! ranges (port ranges in ACLs).
//!
//! All of these build the diagram bottom-up in a single pass, so a 128-bit
//! prefix constraint is a 128-node chain — no intermediate garbage.

use crate::manager::Bdd;
use crate::node::{Ref, Var};

impl Bdd {
    /// Conjunction of literals: variables `start..start+width` equal the
    /// MSB-first bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits or `width > 128`.
    pub fn bits_eq(&mut self, start: Var, width: u32, value: u128) -> Ref {
        assert!(width <= 128);
        if width < 128 {
            assert!(value < (1u128 << width), "value does not fit in width");
        }
        // Build from the least significant (deepest variable) upward.
        let mut acc = Ref::TRUE;
        for i in (0..width).rev() {
            let var = start + i;
            let bit = (value >> (width - 1 - i)) & 1 == 1;
            acc = if bit {
                self.mk(var, Ref::FALSE, acc)
            } else {
                self.mk(var, acc, Ref::FALSE)
            };
        }
        acc
    }

    /// Prefix constraint: the top `plen` of `width` bits starting at
    /// `start` equal the top `plen` bits of `value` (MSB-first). With
    /// `plen == 0` this is the full set — exactly a default route's match
    /// field.
    pub fn bits_prefix(&mut self, start: Var, width: u32, value: u128, plen: u32) -> Ref {
        assert!(plen <= width && width <= 128);
        if plen == 0 {
            return Ref::TRUE;
        }
        let top = value >> (width - plen);
        self.bits_eq(start, plen, top)
    }

    /// Integer range constraint: variables `start..start+width` read as an
    /// MSB-first integer `x` with `lo <= x <= hi`.
    ///
    /// Built as `x >= lo ∧ x <= hi`, each side a linear-size threshold
    /// diagram.
    pub fn int_range(&mut self, start: Var, width: u32, lo: u128, hi: u128) -> Ref {
        assert!(width <= 128);
        if lo > hi {
            return Ref::FALSE;
        }
        let max = if width == 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        assert!(hi <= max, "hi does not fit in width");
        let ge = self.int_ge(start, width, lo);
        let le = self.int_le(start, width, hi);
        self.and(ge, le)
    }

    /// Threshold constraint `x >= bound` over MSB-first bits.
    pub fn int_ge(&mut self, start: Var, width: u32, bound: u128) -> Ref {
        if bound == 0 {
            return Ref::TRUE;
        }
        // From the LSB upward: if the current bound bit is 1, the value's
        // bit must be 1 and the suffix must still satisfy >=; if it is 0, a
        // 1-bit makes the rest free, a 0-bit defers to the suffix.
        let mut acc = Ref::TRUE; // x >= 0 on the empty suffix
        for i in (0..width).rev() {
            let var = start + i;
            let bit = (bound >> (width - 1 - i)) & 1 == 1;
            acc = if bit {
                self.mk(var, Ref::FALSE, acc)
            } else {
                self.mk(var, acc, Ref::TRUE)
            };
        }
        acc
    }

    /// Threshold constraint `x <= bound` over MSB-first bits.
    pub fn int_le(&mut self, start: Var, width: u32, bound: u128) -> Ref {
        let max = if width == 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        if bound >= max {
            return Ref::TRUE;
        }
        let mut acc = Ref::TRUE; // x <= bound on the empty suffix
        for i in (0..width).rev() {
            let var = start + i;
            let bit = (bound >> (width - 1 - i)) & 1 == 1;
            acc = if bit {
                self.mk(var, Ref::TRUE, acc)
            } else {
                self.mk(var, acc, Ref::FALSE)
            };
        }
        acc
    }

    /// Conjunction of a list of literals (a cube), e.g. one concrete packet.
    pub fn cube_of(&mut self, literals: &[(Var, bool)]) -> Ref {
        debug_assert!(literals.windows(2).all(|w| w[0].0 < w[1].0));
        let mut acc = Ref::TRUE;
        for &(var, positive) in literals.iter().rev() {
            acc = if positive {
                self.mk(var, Ref::FALSE, acc)
            } else {
                self.mk(var, acc, Ref::FALSE)
            };
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_eq_counts_one() {
        let mut bdd = Bdd::new();
        let f = bdd.bits_eq(0, 8, 0xAB);
        assert_eq!(bdd.sat_count(f, 8), 1);
        assert!(bdd.eval(f, |v| (0xABu32 >> (7 - v)) & 1 == 1));
    }

    #[test]
    fn bits_eq_zero_width_is_full() {
        let mut bdd = Bdd::new();
        assert!(bdd.bits_eq(5, 0, 0).is_true());
    }

    #[test]
    fn prefix_counts_suffix_space() {
        let mut bdd = Bdd::new();
        // /3 prefix over an 8-bit field leaves 5 free bits.
        let f = bdd.bits_prefix(0, 8, 0b101_00000, 3);
        assert_eq!(bdd.sat_count(f, 8), 32);
    }

    #[test]
    fn zero_length_prefix_is_default_route() {
        let mut bdd = Bdd::new();
        assert!(bdd.bits_prefix(0, 32, 0, 0).is_true());
    }

    #[test]
    fn longer_prefix_is_subset_of_shorter() {
        let mut bdd = Bdd::new();
        let p8 = bdd.bits_prefix(0, 32, 0x0A000000, 8); // 10.0.0.0/8
        let p24 = bdd.bits_prefix(0, 32, 0x0A010200, 24); // 10.1.2.0/24
        assert!(bdd.subset(p24, p8));
        assert!(!bdd.subset(p8, p24));
    }

    #[test]
    fn disjoint_prefixes_dont_intersect() {
        let mut bdd = Bdd::new();
        let a = bdd.bits_prefix(0, 32, 0x0A000000, 8);
        let b = bdd.bits_prefix(0, 32, 0x0B000000, 8);
        assert!(!bdd.intersects(a, b));
    }

    #[test]
    fn range_counts_exactly() {
        let mut bdd = Bdd::new();
        let f = bdd.int_range(0, 16, 100, 250);
        assert_eq!(bdd.sat_count(f, 16), 151);
    }

    #[test]
    fn range_full_and_empty() {
        let mut bdd = Bdd::new();
        assert!(bdd.int_range(0, 8, 0, 255).is_true());
        assert!(bdd.int_range(0, 8, 9, 3).is_false());
        let single = bdd.int_range(0, 8, 77, 77);
        let eq = bdd.bits_eq(0, 8, 77);
        assert_eq!(single, eq);
    }

    #[test]
    fn ge_le_partition_the_space() {
        let mut bdd = Bdd::new();
        let ge = bdd.int_ge(0, 8, 100);
        let le = bdd.int_le(0, 8, 99);
        let both = bdd.or(ge, le);
        assert!(both.is_true());
        assert!(!bdd.intersects(ge, le));
        assert_eq!(bdd.sat_count(ge, 8), 156);
        assert_eq!(bdd.sat_count(le, 8), 100);
    }

    #[test]
    fn range_brute_force_small() {
        let mut bdd = Bdd::new();
        for lo in 0..8u128 {
            for hi in 0..8u128 {
                let f = bdd.int_range(0, 3, lo, hi);
                for x in 0..8u128 {
                    let expected = lo <= x && x <= hi;
                    let got = bdd.eval(f, |v| (x >> (2 - v)) & 1 == 1);
                    assert_eq!(got, expected, "lo={lo} hi={hi} x={x}");
                }
            }
        }
    }

    #[test]
    fn cube_of_matches_bits_eq() {
        let mut bdd = Bdd::new();
        let lits = vec![(0, true), (1, false), (2, true), (3, true)];
        let a = bdd.cube_of(&lits);
        let b = bdd.bits_eq(0, 4, 0b1011);
        assert_eq!(a, b);
    }

    #[test]
    fn full_width_128_bits() {
        let mut bdd = Bdd::new();
        let f = bdd.bits_eq(0, 128, u128::MAX);
        assert!(!f.is_false());
        let p = bdd.probability(f);
        assert!(p > 0.0 && p < 1e-30);
        let g = bdd.bits_prefix(0, 128, u128::MAX, 64);
        assert!((bdd.probability(g) - 2f64.powi(-64)).abs() < 1e-30);
    }
}
