//! The fixed-capacity ITE computed cache.
//!
//! The previous engine memoised ITE results in an unbounded `FxHashMap`,
//! so a long analysis traded ever more memory for hits and the map's
//! growth rehashes sat in the hottest loop of the whole system. This is
//! the classic alternative (CUDD, BuDDy, Sylvan all do a variant):
//! a fixed-size, open-addressed array of `(f, g, h) → r` entries probed
//! at two slots per key. Collisions *overwrite* — an eviction costs at
//! worst one recomputation later, while bounding memory exactly and
//! keeping every probe O(1) with no rehash cliffs.
//!
//! Keys store the raw `Ref` bits of the **normalized** standard triple
//! (first and second arguments regular, see `Bdd::ite`), so the sentinel
//! for an empty slot can be `f == 0` (`Ref::TRUE`'s raw value): terminal
//! first arguments never reach the cache — the trivial cases all resolve
//! before the probe. A zeroed allocation is therefore an empty cache.

use crate::node::Ref;

#[derive(Clone, Copy, Default)]
struct Slot {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

/// Raw `f` value marking an empty slot (`Ref::TRUE`, never a cached key).
const EMPTY: u32 = 0;

/// Default cache size: 2^18 two-way buckets ≈ 262k entries, 4 MiB per
/// manager. Large enough that the fig6–fig9 workloads stay under ~15%
/// eviction traffic; small enough that a per-worker manager costs a few
/// MiB regardless of how long the analysis runs.
pub(crate) const DEFAULT_ITE_CACHE_LOG2: u32 = 18;

pub(crate) struct IteCache {
    /// Power-of-two slot array, allocated lazily on the first insert so
    /// trivial managers (tests build thousands) never pay the memset.
    slots: Box<[Slot]>,
    mask: u32,
    log2: u32,
    occupied: usize,
    lookups: u64,
    hits: u64,
    evictions: u64,
}

#[inline]
fn mix(f: u32, g: u32, h: u32) -> u64 {
    // Each word gets its own odd multiplier before combining, and callers
    // index with the *high* bits of the final product: the low bits of a
    // multiply depend only on equally-low input bits, so a single
    // shift-xor-multiply starves whichever operand lands in the high
    // lanes and triples differing mostly in `h` pile onto the same slots.
    let x = (f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (g as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (h as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl IteCache {
    pub fn new(log2: u32) -> IteCache {
        assert!((4..=30).contains(&log2), "ite cache size out of range");
        IteCache {
            slots: Box::new([]),
            mask: (1u32 << log2) - 1,
            log2,
            occupied: 0,
            lookups: 0,
            hits: 0,
            evictions: 0,
        }
    }

    /// Total slots the cache holds once allocated.
    #[inline]
    pub fn capacity(&self) -> usize {
        1usize << self.log2
    }

    /// Slots currently holding an entry.
    #[inline]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    #[inline]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.lookups, self.hits, self.evictions)
    }

    /// The two probe positions for a key: a bucket pair sharing one cache
    /// line (slots are 16 bytes; a pair spans 32). Indexed by the high
    /// bits of the mixed key — see [`mix`].
    #[inline]
    fn probes(&self, f: Ref, g: Ref, h: Ref) -> (usize, usize) {
        let i = ((mix(f.0, g.0, h.0) >> (64 - self.log2)) & self.mask as u64) as usize;
        (i, i ^ 1)
    }

    #[inline]
    pub fn lookup(&mut self, f: Ref, g: Ref, h: Ref) -> Option<Ref> {
        self.lookups += 1;
        if self.slots.is_empty() {
            return None;
        }
        let (i, j) = self.probes(f, g, h);
        for k in [i, j] {
            let s = self.slots[k];
            if s.f == f.0 && s.g == g.0 && s.h == h.0 {
                self.hits += 1;
                return Some(Ref(s.r));
            }
        }
        None
    }

    pub fn insert(&mut self, f: Ref, g: Ref, h: Ref, r: Ref) {
        debug_assert!(f.0 != EMPTY, "terminal f must resolve before caching");
        if self.slots.is_empty() {
            self.slots = vec![Slot::default(); self.capacity()].into_boxed_slice();
        }
        let (i, j) = self.probes(f, g, h);
        // Prefer refreshing an existing entry for the same key, then an
        // empty slot; otherwise overwrite the first probe (direct-mapped
        // eviction).
        let target = if self.slots[i].f == f.0 && self.slots[i].g == g.0 && self.slots[i].h == h.0 {
            i
        } else if self.slots[j].f == f.0 && self.slots[j].g == g.0 && self.slots[j].h == h.0 {
            j
        } else if self.slots[i].f == EMPTY {
            self.occupied += 1;
            i
        } else if self.slots[j].f == EMPTY {
            self.occupied += 1;
            j
        } else {
            self.evictions += 1;
            i
        };
        self.slots[target] = Slot {
            f: f.0,
            g: g.0,
            h: h.0,
            r: r.0,
        };
    }

    /// Drop every entry, keeping the allocation and the cumulative
    /// counters.
    pub fn clear(&mut self) {
        self.slots.fill(Slot::default());
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: u32) -> Ref {
        Ref(x)
    }

    #[test]
    fn empty_cache_misses_without_allocating() {
        let mut c = IteCache::new(8);
        assert_eq!(c.lookup(r(2), r(4), r(6)), None);
        assert_eq!(c.occupied(), 0);
        assert_eq!(c.counters(), (1, 0, 0));
        assert!(c.slots.is_empty(), "lookup must not allocate");
    }

    #[test]
    fn insert_then_hit() {
        let mut c = IteCache::new(8);
        c.insert(r(2), r(4), r(6), r(8));
        assert_eq!(c.lookup(r(2), r(4), r(6)), Some(r(8)));
        assert_eq!(c.occupied(), 1);
        let (lookups, hits, evictions) = c.counters();
        assert_eq!((lookups, hits, evictions), (1, 1, 0));
    }

    #[test]
    fn same_key_refreshes_in_place() {
        let mut c = IteCache::new(8);
        c.insert(r(2), r(4), r(6), r(8));
        c.insert(r(2), r(4), r(6), r(10));
        assert_eq!(c.occupied(), 1);
        assert_eq!(c.counters().2, 0, "refresh is not an eviction");
        assert_eq!(c.lookup(r(2), r(4), r(6)), Some(r(10)));
    }

    #[test]
    fn capacity_is_bounded_and_evictions_counted() {
        let mut c = IteCache::new(4); // 16 slots
        for i in 0..400u32 {
            c.insert(r(2 + 2 * i), r(4), r(6), r(8));
        }
        assert!(c.occupied() <= c.capacity());
        let (_, _, evictions) = c.counters();
        assert!(evictions > 0, "overfill must evict");
        // The cache still answers *something* correctly: reinsert and hit.
        c.insert(r(2), r(4), r(6), r(12));
        assert_eq!(c.lookup(r(2), r(4), r(6)), Some(r(12)));
    }

    #[test]
    fn clear_keeps_counters_drops_entries() {
        let mut c = IteCache::new(6);
        c.insert(r(2), r(4), r(6), r(8));
        let _ = c.lookup(r(2), r(4), r(6));
        c.clear();
        assert_eq!(c.occupied(), 0);
        assert_eq!(c.lookup(r(2), r(4), r(6)), None);
        let (lookups, hits, _) = c.counters();
        assert_eq!((lookups, hits), (2, 1));
    }
}
